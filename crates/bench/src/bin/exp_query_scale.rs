//! Experiment E-query-scale (DESIGN.md "Standing-query scale"): the
//! shared standing-query path at 100k+ concurrent CQs.
//!
//! Part A probes the boundary-indexed [`GroupedFilter`] directly: n
//! single-column factors (a CACQ-style mix of equality, inequality, and
//! range shapes) are registered, then evaluated against a stream of
//! constants. The range side answers each probe with one binary search
//! plus one precomputed prefix/suffix-bitmap union instead of walking
//! every matching factor, so probe cost grows with the *answer block*,
//! not the factor count. A naive per-factor pass over the same probe
//! values (same constants, same selectivity) provides the baseline the
//! smoke tripwire holds the index against. A churn pass measures
//! remove+insert pairs per second through the tombstone + pending-run
//! epoch machinery.
//!
//! Part B sweeps the full [`QueryStem`] tier stack end to end: n
//! anchored queries (`sensor = k AND val` band — the PSoup regime where
//! most standing queries pin an equality) plus a fixed population of 256
//! scan-tier monitor bands, probed via `matching_into` with a reused
//! [`MatchScratch`]. Because probe work is bounded by the anchor
//! bucket's candidates plus the fixed scan population — and scratch
//! clearing is O(|previous matches|), not O(n) — per-tuple cost must
//! stay within 3x while the query population grows 100x.
//!
//! Claims demonstrated:
//!
//! * at 100k factors the indexed probe beats the naive per-factor bound
//!   by >= 20x at matched selectivity;
//! * register/cancel churn sustains a floor of ops/sec at 100k standing
//!   factors (epoch rebuilds stay amortized);
//! * the steady-state probe path performs zero heap allocations (scratch
//!   reuse end to end), enforced with a counting global allocator;
//! * growing 1k -> 100k standing queries raises per-tuple match cost by
//!   <= 3x (the tiered stem keeps probe work off the query count);
//! * the run emits machine-readable `BENCH_query_scale.json` with
//!   resident-size accounting per population.
//!
//! ```text
//! cargo run --release -p tcq-bench --bin exp_query_scale [-- --smoke]
//! ```
//!
//! `--smoke` runs reduced probe counts and exits non-zero if any
//! tripwire fails — the scale gate `scripts/ci.sh` relies on.

use std::time::Instant;

use tcq_bench::Table;
use tcq_common::{
    BitSet, CmpOp, DataType, Expr, Field, Schema, SchemaRef, Timestamp, Tuple, TupleBuilder, Value,
};
use tcq_stems::{GroupedFilter, MatchScratch, QueryStem};

/// Counting allocator for the zero-allocs-per-probe gate.
#[global_allocator]
static ALLOC: tcq_bench::CountingAlloc = tcq_bench::CountingAlloc::new();

/// Standing-population sweep: the headline claim is the 1k -> 100k span.
const SIZES: &[usize] = &[1_000, 10_000, 100_000];

/// Constants (and probe values) live in this domain.
const DOMAIN: i64 = 100_000;

/// Scan-tier monitor bands standing alongside Part B's anchored
/// population (windowless `val` range watchers with no equality anchor).
const MONITORS: usize = 256;

/// Minimum indexed-over-naive probe speedup at 100k factors.
const NAIVE_SPEEDUP_FLOOR: f64 = 20.0;

/// Minimum sustained remove+insert ops/sec at 100k standing factors. The
/// measured rate is ~90k/s at 100k (millions/s at smaller populations,
/// where epoch rebuilds touch less bitmap state); 3x headroom keeps
/// scheduler noise from flaking CI while still catching an accidental
/// return to O(n)-per-op compaction, which lands around 1k/s.
const CHURN_FLOOR: f64 = 30_000.0;

/// Maximum per-tuple match-cost growth across the 100x population span.
const SCALE_RATIO_CEIL: f64 = 3.0;

fn factor_shape(i: usize) -> CmpOp {
    match i % 8 {
        0 => CmpOp::Eq,
        1 => CmpOp::Ne,
        2 | 3 => CmpOp::Gt,
        4 | 5 => CmpOp::Lt,
        6 => CmpOp::Ge,
        _ => CmpOp::Le,
    }
}

struct FilterOutcome {
    n: usize,
    probe_ns: f64,
    naive_ns: f64,
    speedup: f64,
    churn_ops_per_sec: f64,
    allocs_per_probe: f64,
    approx_bytes: usize,
}

/// Part A: direct grouped-filter probe/churn sweep at `n` factors.
fn run_filter_scale(
    n: usize,
    probes: usize,
    naive_probes: usize,
    churn_pairs: usize,
) -> FilterOutcome {
    let mut rng = tcq_common::rng::seeded(0x5CA1E ^ n as u64);
    let mut filter = GroupedFilter::new();
    let mut model: Vec<(usize, CmpOp, Value)> = Vec::with_capacity(n);
    for i in 0..n {
        let op = factor_shape(i);
        let c = Value::Int(rng.gen_range(0..DOMAIN));
        filter.insert(i, op, c.clone()).unwrap();
        model.push((i, op, c));
    }

    let probe_values: Vec<Value> = (0..probes.max(naive_probes))
        .map(|_| Value::Int(rng.gen_range(0..DOMAIN)))
        .collect();

    // Warmup sizes the scratch bitset to its steady-state capacity, then
    // the measured window must not touch the allocator at all.
    let mut out = BitSet::new();
    for v in probe_values.iter().take(256.min(probe_values.len())) {
        out.clear();
        filter.eval(v, &mut out);
    }
    let mut probe_ns = f64::INFINITY;
    let mut allocs_per_probe = 0.0;
    for _ in 0..3 {
        let allocs_before = ALLOC.allocs();
        let start = Instant::now();
        let mut hits = 0usize;
        for v in probe_values.iter().take(probes) {
            out.clear();
            filter.eval(v, &mut out);
            hits += out.len();
        }
        let elapsed = start.elapsed().as_nanos() as f64;
        let allocs = (ALLOC.allocs() - allocs_before) as f64;
        std::hint::black_box(hits);
        let per_probe = elapsed / probes as f64;
        if per_probe < probe_ns {
            probe_ns = per_probe;
            allocs_per_probe = allocs / probes as f64;
        }
    }

    // The naive bound: every factor compared on every probe — what each
    // of n standing queries would pay without sharing. Fewer probes, the
    // same value stream, so selectivity is matched by construction.
    let mut naive_ns = f64::INFINITY;
    for _ in 0..3 {
        let start = Instant::now();
        let mut hits = 0usize;
        for v in probe_values.iter().take(naive_probes) {
            out.clear();
            for (id, op, c) in &model {
                if let Ok(Some(ord)) = v.sql_cmp(c) {
                    if op.matches(ord) {
                        out.insert(*id);
                    }
                }
            }
            hits += out.len();
        }
        let elapsed = start.elapsed().as_nanos() as f64;
        std::hint::black_box(hits);
        naive_ns = naive_ns.min(elapsed / naive_probes as f64);
    }

    // Churn: cancel + re-register pairs through tombstones, the pending
    // run, and periodic epoch rebuilds/compactions.
    let start = Instant::now();
    for _ in 0..churn_pairs {
        let slot = rng.gen_range(0..n);
        filter.remove(slot);
        let op = factor_shape(rng.gen_range(0..8usize));
        let c = Value::Int(rng.gen_range(0..DOMAIN));
        filter.insert(slot, op, c.clone()).unwrap();
        model[slot] = (slot, op, c);
    }
    let churn_ops_per_sec = (churn_pairs * 2) as f64 / start.elapsed().as_secs_f64().max(1e-9);

    // Post-churn differential sanity: the rebuilt epochs must still
    // agree with the naive model exactly.
    for v in probe_values.iter().take(5) {
        out.clear();
        filter.eval(v, &mut out);
        let mut naive = BitSet::new();
        for (id, op, c) in &model {
            if let Ok(Some(ord)) = v.sql_cmp(c) {
                if op.matches(ord) {
                    naive.insert(*id);
                }
            }
        }
        assert_eq!(out, naive, "post-churn probe diverged from naive at n={n}");
    }

    FilterOutcome {
        n,
        probe_ns,
        naive_ns,
        speedup: naive_ns / probe_ns,
        churn_ops_per_sec,
        allocs_per_probe,
        approx_bytes: filter.approx_bytes(),
    }
}

fn stem_schema() -> SchemaRef {
    Schema::qualified(
        "s",
        vec![
            Field::new("sensor", DataType::Int),
            Field::new("val", DataType::Float),
        ],
    )
    .into_ref()
}

struct StemOutcome {
    n: usize,
    probe_ns: f64,
    allocs_per_probe: f64,
    approx_bytes: usize,
}

/// Part B: the full tier stack end to end — n anchored queries plus a
/// fixed scan-tier monitor population, probed through `matching_into`.
fn run_stem_scale(n: usize, probes: usize) -> StemOutcome {
    let mut rng = tcq_common::rng::seeded(0x57E6 ^ n as u64);
    let schema = stem_schema();
    let mut qs = QueryStem::new(schema.clone());

    // One anchored query per sensor bucket: `sensor = k AND val` band.
    // The sensor domain scales with n so bucket width (~16 queries) is
    // constant — the realistic regime where new queries watch new keys.
    let sensors = (n / 16).max(1) as i64;
    for i in 0..n {
        let lo = rng.gen_range(0.0..80.0);
        let hi = lo + rng.gen_range(5.0..40.0);
        let pred = Expr::col("sensor")
            .cmp(CmpOp::Eq, Expr::lit(i as i64 % sensors))
            .and(
                Expr::col("val")
                    .cmp(CmpOp::Ge, Expr::lit(lo))
                    .and(Expr::col("val").cmp(CmpOp::Le, Expr::lit(hi))),
            );
        qs.insert_query(i, Some(&pred)).unwrap();
    }
    // Plus the standing monitors with no equality anchor (scan tier).
    for m in 0..MONITORS {
        let lo = rng.gen_range(0.0..90.0);
        let hi = lo + rng.gen_range(1.0..10.0);
        let pred = Expr::col("val")
            .cmp(CmpOp::Ge, Expr::lit(lo))
            .and(Expr::col("val").cmp(CmpOp::Le, Expr::lit(hi)));
        qs.insert_query(n + m, Some(&pred)).unwrap();
    }

    // Probe tuples are prebuilt and recycled: the timed loop measures
    // matching, not tuple construction.
    let pool: Vec<Tuple> = (0..4096)
        .map(|i| {
            TupleBuilder::new(schema.clone())
                .push(rng.gen_range(0..sensors))
                .push(rng.gen_range(-5.0..105.0))
                .at(Timestamp::logical(i))
                .build()
                .unwrap()
        })
        .collect();

    let mut scratch = MatchScratch::new();
    for t in &pool {
        qs.matching_into(t, &mut scratch).unwrap();
    }
    let mut probe_ns = f64::INFINITY;
    let mut allocs_per_probe = 0.0;
    for _ in 0..3 {
        let allocs_before = ALLOC.allocs();
        let start = Instant::now();
        let mut hits = 0usize;
        for i in 0..probes {
            qs.matching_into(&pool[i % pool.len()], &mut scratch)
                .unwrap();
            hits += scratch.matches().len();
        }
        let elapsed = start.elapsed().as_nanos() as f64;
        let allocs = (ALLOC.allocs() - allocs_before) as f64;
        std::hint::black_box(hits);
        let per_probe = elapsed / probes as f64;
        if per_probe < probe_ns {
            probe_ns = per_probe;
            allocs_per_probe = allocs / probes as f64;
        }
    }

    StemOutcome {
        n,
        probe_ns,
        allocs_per_probe,
        approx_bytes: qs.approx_bytes() + scratch.approx_bytes(),
    }
}

fn write_json(filters: &[FilterOutcome], stems: &[StemOutcome], speedup_100k: f64, ratio: f64) {
    let filter_entries: Vec<String> = filters
        .iter()
        .map(|o| {
            format!(
                "    {{\"n\": {}, \"probe_ns\": {:.1}, \"probes_per_sec\": {:.0}, \
                 \"naive_ns\": {:.1}, \"speedup_vs_naive\": {:.1}, \
                 \"churn_ops_per_sec\": {:.0}, \"allocs_per_probe\": {:.4}, \
                 \"approx_bytes\": {}}}",
                o.n,
                o.probe_ns,
                1e9 / o.probe_ns,
                o.naive_ns,
                o.speedup,
                o.churn_ops_per_sec,
                o.allocs_per_probe,
                o.approx_bytes
            )
        })
        .collect();
    let stem_entries: Vec<String> = stems
        .iter()
        .map(|o| {
            format!(
                "    {{\"n\": {}, \"probe_ns\": {:.1}, \"tuples_per_sec\": {:.0}, \
                 \"allocs_per_probe\": {:.4}, \"approx_bytes\": {}}}",
                o.n,
                o.probe_ns,
                1e9 / o.probe_ns,
                o.allocs_per_probe,
                o.approx_bytes
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"query_scale\",\n  \"pipeline\": \
         \"boundary-indexed grouped filter + tiered query stem, 1k..100k standing CQs\",\n  \
         \"grouped_filter\": [\n{}\n  ],\n  \"query_stem\": [\n{}\n  ],\n  \
         \"speedup_100k_vs_naive\": {:.1},\n  \
         \"per_tuple_ratio_100k_vs_1k\": {:.2}\n}}\n",
        filter_entries.join(",\n"),
        stem_entries.join(",\n"),
        speedup_100k,
        ratio
    );
    std::fs::write("BENCH_query_scale.json", json).unwrap();
    println!("  wrote BENCH_query_scale.json");
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (probes, naive_probes, churn_pairs, stem_probes) = if smoke {
        (30_000, 500, 4_000, 20_000)
    } else {
        (200_000, 2_000, 20_000, 100_000)
    };
    println!(
        "E-query-scale — shared standing-query path at 1k..100k concurrent CQs\n\
         ({probes} filter probes, {stem_probes} stem probes, {churn_pairs} churn pairs per size)\n"
    );

    let mut filter_table = Table::new(&[
        "factors",
        "probe ns",
        "naive ns",
        "speedup",
        "churn ops/s",
        "allocs/probe",
        "bytes",
    ]);
    let mut filters = Vec::new();
    for &n in SIZES {
        let o = run_filter_scale(n, probes, naive_probes, churn_pairs);
        filter_table.row(vec![
            o.n.to_string(),
            format!("{:.0}", o.probe_ns),
            format!("{:.0}", o.naive_ns),
            format!("{:.1}x", o.speedup),
            format!("{:.0}", o.churn_ops_per_sec),
            format!("{:.4}", o.allocs_per_probe),
            o.approx_bytes.to_string(),
        ]);
        filters.push(o);
    }
    filter_table.print();

    let mut stem_table =
        Table::new(&["queries", "probe ns", "tuples/sec", "allocs/probe", "bytes"]);
    let mut stems = Vec::new();
    for &n in SIZES {
        let o = run_stem_scale(n, stem_probes);
        stem_table.row(vec![
            o.n.to_string(),
            format!("{:.0}", o.probe_ns),
            format!("{:.0}", 1e9 / o.probe_ns),
            format!("{:.4}", o.allocs_per_probe),
            o.approx_bytes.to_string(),
        ]);
        stems.push(o);
    }
    println!();
    stem_table.print();

    let top = filters.last().unwrap();
    let ratio = stems.last().unwrap().probe_ns / stems.first().unwrap().probe_ns;
    println!("\n  indexed vs naive at 100k factors: {:.1}x", top.speedup);
    println!(
        "  per-tuple cost ratio 100k vs 1k queries: {ratio:.2}x (ceiling {SCALE_RATIO_CEIL}x)"
    );
    if !smoke {
        write_json(&filters, &stems, top.speedup, ratio);
    }

    if top.speedup < NAIVE_SPEEDUP_FLOOR {
        eprintln!(
            "FAIL: indexed probe at 100k factors only {:.1}x the naive per-factor bound \
             (floor {NAIVE_SPEEDUP_FLOOR}x)",
            top.speedup
        );
        std::process::exit(1);
    }
    if top.churn_ops_per_sec < CHURN_FLOOR {
        eprintln!(
            "FAIL: churn at 100k factors sustained only {:.0} ops/s (floor {CHURN_FLOOR})",
            top.churn_ops_per_sec
        );
        std::process::exit(1);
    }
    for o in &filters {
        if o.allocs_per_probe > 0.0 {
            eprintln!(
                "FAIL: grouped-filter probe path allocated ({:.4}/probe at n={})",
                o.allocs_per_probe, o.n
            );
            std::process::exit(1);
        }
    }
    for o in &stems {
        if o.allocs_per_probe > 0.0 {
            eprintln!(
                "FAIL: query-stem probe path allocated ({:.4}/probe at n={})",
                o.allocs_per_probe, o.n
            );
            std::process::exit(1);
        }
    }
    if ratio > SCALE_RATIO_CEIL {
        eprintln!(
            "FAIL: per-tuple cost grew {ratio:.2}x from 1k to 100k queries \
             (ceiling {SCALE_RATIO_CEIL}x)"
        );
        std::process::exit(1);
    }
    println!(
        "\n  shape check: probe work rides the answer block and the anchor bucket,\n\
         \x20 not the standing population — 100x more queries, bounded per-tuple cost,\n\
         \x20 zero probe-path allocations.\n"
    );
}
