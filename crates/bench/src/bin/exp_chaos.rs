//! Experiment E-chaos (DESIGN.md "Fault model"): end-to-end chaos run —
//! a supervised, fault-injected source feeding a Flux cluster while the
//! same seeded [`FaultPlan`] kills nodes, restarts one, slows another, and
//! overflows the ingest path.
//!
//! Claims demonstrated:
//!
//! * with process-pair replication the answer loses **zero** tuples;
//! * without replication the shortfall equals `lost_inflight +
//!   overflow_dropped` **exactly** — loss is accounted, never silent;
//! * after every kill the cluster re-replicates back to full replication;
//! * two runs from the same seed produce identical answers *and* an
//!   identical fired-fault log (determinism: any chaos failure replays);
//! * the whole server (ingress → dispatcher → archive → egress) quiesces
//!   under one schedule mixing a source panic, an enqueue overflow, a soft
//!   archive failure, a torn page write, and a dead client — with every
//!   produced tuple delivered or accounted.
//!
//! ```text
//! cargo run --release -p tcq-bench --bin exp_chaos [-- --smoke]
//! ```
//!
//! `--smoke` runs the reduced-scale CI variant (smaller server workload,
//! single server pass).

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::time::Duration;

use tcq_bench::{kv, kv_schema, Table};
use tcq_common::chaos::FiredFault;
use tcq_common::{
    DataType, FaultAction, FaultPlan, FaultPoint, Field, Result, Schema, SchemaRef, Timestamp,
    Tuple, TupleBuilder, Value,
};
use tcq_egress::{EgressPolicy, EgressStats};
use tcq_fjords::{fjord, DequeueResult, FjordMessage, QueueKind};
use tcq_flux::{FluxCluster, FluxConfig, FluxStats};
use tcq_ingress::{
    ChaosSource, DegradePolicy, Source, SourceFactory, SourceStatus, Supervisor, SupervisorConfig,
    SupervisorStats,
};
use tcq_server::{ServerConfig, TelegraphCQ};

const TUPLES: i64 = 12_000;
const KEYS: i64 = 211;
const SEED: u64 = 0xBAD5EED;

fn workload() -> Vec<Tuple> {
    let schema = kv_schema("S");
    (0..TUPLES)
        .map(|i| kv(&schema, (i * 37 + 11) % KEYS, 1, i + 1))
        .collect()
}

/// Replays a fixed tuple set in fixed-size reads; resumable from an offset
/// so the supervisor's factory can skip already-delivered tuples.
struct ReplaySource {
    schema: SchemaRef,
    tuples: Vec<Tuple>,
    pos: usize,
}

impl Source for ReplaySource {
    fn schema(&self) -> &SchemaRef {
        &self.schema
    }
    fn next_batch(&mut self, max: usize, out: &mut Vec<Tuple>) -> Result<SourceStatus> {
        if self.pos >= self.tuples.len() {
            return Ok(SourceStatus::Exhausted);
        }
        let n = max.min(self.tuples.len() - self.pos);
        out.extend_from_slice(&self.tuples[self.pos..self.pos + n]);
        self.pos += n;
        Ok(SourceStatus::Ready)
    }
}

/// The seeded schedule: a malformed read, a source panic, a source error,
/// two node kills, one rejoin, one straggler, two injected ingest
/// overflows. All from one seed.
fn plan(seed: u64) -> FaultPlan {
    FaultPlan::new(seed)
        .at(FaultPoint::SourceRead, 10, FaultAction::MalformedTuple)
        .at(
            FaultPoint::SourceRead,
            40,
            FaultAction::Panic("wrapper segfault".into()),
        )
        .at(
            FaultPoint::SourceRead,
            90,
            FaultAction::Error("carrier lost".into()),
        )
        .at(
            FaultPoint::ClusterTick,
            50,
            FaultAction::Straggler { node: 3, ticks: 40 },
        )
        .at(FaultPoint::ClusterTick, 100, FaultAction::KillNode(1))
        .at(FaultPoint::ClusterTick, 300, FaultAction::KillNode(2))
        .at(FaultPoint::ClusterTick, 500, FaultAction::RestartNode(1))
        .at(FaultPoint::Ingest, 2_000, FaultAction::Overflow)
        .at(FaultPoint::Ingest, 7_000, FaultAction::Overflow)
}

struct Outcome {
    answer: BTreeMap<i64, (u64, f64)>,
    flux: FluxStats,
    sup: SupervisorStats,
    log: Vec<FiredFault>,
    replicated_after_kills: bool,
}

fn run_scenario(seed: u64, replication: bool) -> Outcome {
    let injector = plan(seed).build_shared();
    let cfg = if replication {
        FluxConfig::uniform(4).with_replication()
    } else {
        FluxConfig::uniform(4)
    };
    let mut cluster = FluxCluster::new(cfg, 0, 1).unwrap();
    cluster.attach_injector(injector.clone());

    let master = workload();
    let factory: SourceFactory = {
        let master = master.clone();
        let schema = kv_schema("S");
        let injector = injector.clone();
        Box::new(move |_attempt, delivered| {
            let inner = ReplaySource {
                schema: schema.clone(),
                tuples: master[delivered as usize..].to_vec(),
                pos: 0,
            };
            Ok(Box::new(ChaosSource::new(
                Box::new(inner),
                injector.clone(),
            )))
        })
    };
    let (producer, consumer) = fjord(4096, QueueKind::Push);
    let supervisor = Supervisor::spawn(
        "chaos-feed",
        factory,
        producer,
        SupervisorConfig {
            policy: DegradePolicy::Backpressure,
            ..Default::default()
        },
    );

    let mut fed: u64 = 0;
    let mut replicated_after_kills = true;
    let mut kills_seen: u64 = 0;
    loop {
        match consumer.dequeue() {
            DequeueResult::Msg(FjordMessage::Tuple(t)) => {
                cluster.ingest(&t).unwrap();
                fed += 1;
                // Tuple-count-driven ticks keep the schedule deterministic.
                if fed.is_multiple_of(16) {
                    cluster.tick();
                    let failovers = cluster.stats().failovers + cluster.stats().restarts;
                    if replication && failovers > kills_seen {
                        kills_seen = failovers;
                        // Re-replication invariant: every failover or
                        // rejoin leaves the cluster fully paired again.
                        replicated_after_kills &= cluster.fully_replicated();
                    }
                }
            }
            DequeueResult::Msg(FjordMessage::Eof) => break,
            DequeueResult::Msg(FjordMessage::Punct(_)) => {}
            DequeueResult::Empty => std::thread::yield_now(),
            DequeueResult::Disconnected => break,
        }
    }
    cluster.run_until_drained(10_000_000);
    let sup = supervisor.join();
    assert_eq!(fed, sup.delivered, "consumer saw every delivered tuple");

    let mut answer = BTreeMap::new();
    for (k, (count, sum)) in cluster.results() {
        let key = match k {
            Value::Int(i) => i,
            other => panic!("non-int group key {other:?}"),
        };
        answer.insert(key, (count, sum));
    }
    Outcome {
        answer,
        flux: cluster.stats(),
        sup,
        log: injector.log(),
        replicated_after_kills,
    }
}

fn accounting(outcome: &Outcome) -> (u64, u64) {
    let got: u64 = outcome.answer.values().map(|(c, _)| c).sum();
    let accounted = got + outcome.flux.lost_inflight + outcome.flux.overflow_dropped;
    (got, accounted)
}

fn experiment_loss_accounting() {
    println!(
        "E-chaos-a — one seeded schedule ({TUPLES} tuples, 4 nodes): 2 kills, 1 rejoin,\n\
         1 straggler, 2 injected overflows, a panicking + erroring + garbage source\n"
    );
    let mut table = Table::new(&[
        "configuration",
        "delivered",
        "answered",
        "lost in-flight",
        "overflow drops",
        "groups shipped",
        "exactly accounted",
        "re-replicated",
    ]);
    for (label, replication) in [("process pairs", true), ("no replicas", false)] {
        let outcome = run_scenario(SEED, replication);
        let (got, accounted) = accounting(&outcome);
        assert_eq!(
            accounted, outcome.sup.delivered,
            "{label}: every tuple must be answered or accounted as lost"
        );
        assert_eq!(
            outcome.sup.delivered, TUPLES as u64,
            "supervisor replays through faults"
        );
        assert_eq!(outcome.sup.panics, 1);
        assert_eq!(outcome.sup.source_errors, 1);
        assert_eq!(outcome.sup.malformed, 1);
        assert_eq!(outcome.flux.restarts, 1, "node 1 rejoined");
        if replication {
            assert_eq!(outcome.flux.lost_inflight, 0, "process pairs lose nothing");
            assert!(
                outcome.replicated_after_kills,
                "replication factor restored after kills"
            );
        } else {
            assert!(
                outcome.flux.lost_inflight > 0,
                "unreplicated kills must cost tuples"
            );
        }
        table.row(vec![
            label.to_string(),
            outcome.sup.delivered.to_string(),
            got.to_string(),
            outcome.flux.lost_inflight.to_string(),
            outcome.flux.overflow_dropped.to_string(),
            outcome.flux.groups_shipped.to_string(),
            "true".to_string(),
            if replication {
                outcome.replicated_after_kills.to_string()
            } else {
                "n/a".into()
            },
        ]);
    }
    table.print();
    println!(
        "\n  shape check: with process pairs the kills are invisible in the answer\n\
         \x20 (zero in-flight loss, replication factor restored); without them the\n\
         \x20 shortfall equals lost_inflight + overflow_dropped exactly — loss is\n\
         \x20 accounted, never silent. \"groups shipped\" is the real recovery\n\
         \x20 traffic: state groups moved to re-establish replicas after kills\n\
         \x20 and to catch the rejoining node up (delta-only when a Flux\n\
         \x20 checkpoint preceded the crash).\n"
    );
}

/// The determinism contract is per fault point: each point's poll counter
/// advances on one thread's schedule, so its fired sequence replays
/// exactly, while the *interleaving* between the ingress thread's
/// SourceRead polls and the main thread's ClusterTick/Ingest polls is
/// thread scheduling. Normalise to (point, poll#) order before comparing.
fn normalised(mut log: Vec<FiredFault>) -> Vec<FiredFault> {
    log.sort_by_key(|&(point, count, _)| (point, count));
    log
}

fn experiment_determinism() {
    println!("E-chaos-b — determinism: the same seed replays the same catastrophe\n");
    let mut table = Table::new(&["configuration", "faults fired", "same answer", "same log"]);
    for (label, replication) in [("process pairs", true), ("no replicas", false)] {
        let a = run_scenario(SEED, replication);
        let b = run_scenario(SEED, replication);
        assert_eq!(
            a.answer, b.answer,
            "{label}: answers diverged across same-seed runs"
        );
        let (la, lb) = (normalised(a.log), normalised(b.log));
        assert_eq!(la, lb, "{label}: fault logs diverged across same-seed runs");
        table.row(vec![
            label.to_string(),
            la.len().to_string(),
            (a.answer == b.answer).to_string(),
            (la == lb).to_string(),
        ]);
    }
    table.print();
    println!(
        "\n  shape check: chaos runs replay exactly from their seed — a failing\n\
         \x20 schedule is a regression test, not a flake.\n"
    );
}

fn server_schema() -> SchemaRef {
    Schema::new(vec![Field::new("v", DataType::Int)]).into_ref()
}

fn server_workload(n: i64) -> Vec<Tuple> {
    let schema = server_schema();
    (1..=n)
        .map(|i| {
            TupleBuilder::new(schema.clone())
                .push(i)
                .at(Timestamp::logical(i))
                .build()
                .unwrap()
        })
        .collect()
}

/// One schedule across four server layers: a wrapper panic (ingress), a
/// dropped fan-out (dispatcher), a failed append plus a torn page seal
/// (storage), and two failed delivery offers (egress). The dead client is
/// not injected — it really disconnects.
fn server_plan(seed: u64, n: u64) -> FaultPlan {
    FaultPlan::new(seed)
        .at(
            FaultPoint::SourceRead,
            20,
            FaultAction::Panic("wrapper segfault".into()),
        )
        .at(FaultPoint::FjordEnqueue, n / 6, FaultAction::Overflow)
        .at(
            FaultPoint::ArchiveAppend,
            50,
            FaultAction::Error("disk hiccup".into()),
        )
        .at(FaultPoint::ArchiveAppend, 100, FaultAction::Overflow)
        .at(
            FaultPoint::EgressDeliver,
            n / 3,
            FaultAction::Error("socket reset".into()),
        )
        .at(
            FaultPoint::EgressDeliver,
            2 * n / 3,
            FaultAction::Error("socket reset".into()),
        )
}

struct ServerOutcome {
    results: Vec<i64>,
    egress: EgressStats,
    dispatcher_shed: i64,
    archive: tcq_storage::ArchiveStats,
    sup: SupervisorStats,
    log: Vec<FiredFault>,
}

fn run_server_scenario(n: i64, dir: &Path) -> ServerOutcome {
    let server = TelegraphCQ::start(ServerConfig {
        archive_dir: Some(dir.to_path_buf()),
        fault_plan: Some(server_plan(SEED, n as u64)),
        egress_policy: EgressPolicy {
            max_retries: 1,
            disconnect_after: 4,
        },
        ..ServerConfig::default()
    })
    .unwrap();
    server.register_stream("s", server_schema()).unwrap();

    // A healthy push client and a dead one (receiver dropped before any
    // delivery): the router must disconnect the dead one after its first
    // offer and keep the healthy one flowing.
    let (healthy, rx) = server.connect_push_client(n as usize + 16).unwrap();
    let (dead, dead_rx) = server.connect_push_client(4).unwrap();
    drop(dead_rx);
    server.submit("SELECT v FROM s", healthy).unwrap();
    server.submit("SELECT v FROM s", dead).unwrap();

    let master = server_workload(n);
    let factory: SourceFactory = {
        let schema = server_schema();
        Box::new(move |_attempt, delivered| {
            Ok(Box::new(ReplaySource {
                schema: schema.clone(),
                tuples: master[delivered as usize..].to_vec(),
                pos: 0,
            }) as Box<dyn Source>)
        })
    };
    server
        .attach_supervised_source("s", factory, SupervisorConfig::default())
        .unwrap();

    assert!(
        server.quiesce(Duration::from_secs(60)),
        "server must quiesce despite the chaos schedule"
    );

    let sup = server.supervisor_stats().remove(0).1;
    let outcome = ServerOutcome {
        results: rx
            .try_iter()
            .map(|(_, t)| t.value(0).as_int().unwrap())
            .collect(),
        egress: server.egress_stats_full(),
        dispatcher_shed: server.shed_count("s").unwrap(),
        archive: server.archive_stats("s").unwrap().unwrap(),
        sup,
        log: server.fired_faults(),
    };
    server.shutdown().unwrap();
    outcome
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tcq-exp-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn experiment_server_chaos(n: i64, determinism: bool) {
    println!(
        "E-chaos-c — whole-server chaos ({n} tuples): source panic, enqueue\n\
         overflow, soft archive failure, torn page write, dead client\n"
    );
    let mut table = Table::new(&[
        "run",
        "delivered",
        "egress shed",
        "dispatch shed",
        "disconnects",
        "archived",
        "torn pages",
        "lost records",
        "accounted",
    ]);
    let runs = if determinism { 2 } else { 1 };
    let mut first: Option<ServerOutcome> = None;
    for run in 0..runs {
        let dir = temp_dir(&format!("server-{run}"));
        let o = run_server_scenario(n, &dir);
        let _ = std::fs::remove_dir_all(&dir);

        // Ingress survived the panic and replayed every tuple once; the
        // dispatcher dropped exactly one fan-out; the archive counted one
        // soft failure and one torn page; egress accounted every offer.
        assert_eq!(o.sup.delivered, n as u64);
        assert_eq!((o.sup.panics, o.sup.restarts), (1, 1));
        assert_eq!(o.dispatcher_shed, 1);
        assert_eq!(o.archive.appended, n as u64 - 1);
        assert_eq!(o.archive.torn_pages, 1);
        assert!(o.archive.lost_records > 0);
        let e = &o.egress;
        assert_eq!(e.offered, n as u64);
        assert_eq!((e.shed, e.disconnected, e.disconnected_loss), (2, 1, 1));
        assert!(e.accounted(), "offered == delivered+shed+displaced+loss");
        assert_eq!(o.results.len() as u64, e.delivered);
        assert_eq!(o.log.len(), 6, "all six scheduled faults fired");

        table.row(vec![
            ((b'A' + run as u8) as char).to_string(),
            e.delivered.to_string(),
            e.shed.to_string(),
            o.dispatcher_shed.to_string(),
            e.disconnected.to_string(),
            o.archive.appended.to_string(),
            o.archive.torn_pages.to_string(),
            o.archive.lost_records.to_string(),
            "true".to_string(),
        ]);
        if let Some(a) = &first {
            assert_eq!(a.results, o.results, "answers diverged across runs");
            assert_eq!(a.egress, o.egress, "egress accounting diverged");
            assert_eq!(
                normalised(a.log.clone()),
                normalised(o.log.clone()),
                "fired-fault logs diverged across same-seed runs"
            );
        } else {
            first = Some(o);
        }
    }
    table.print();
    println!(
        "\n  shape check: the full stack quiesces under the schedule; every offer\n\
         \x20 is delivered, shed, or charged to the disconnected client{}.\n",
        if determinism {
            ", and the\n\x20 same seed replays the identical catastrophe"
        } else {
            ""
        }
    );
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    experiment_loss_accounting();
    experiment_determinism();
    if smoke {
        experiment_server_chaos(1_200, false);
    } else {
        experiment_server_chaos(3_000, true);
    }
}
