//! Experiments E3 + E4 (DESIGN.md): CACQ shared processing, reproducing
//! the shape of Madden et al. \[MSHR02\] — shared grouped-filter execution
//! "match\[es\] or significantly exceed\[s\] the performance of existing static
//! continuous query systems" as the number of standing queries grows.
//!
//! * E3 — N selection queries over one stream: one shared QueryStem pass
//!   per tuple vs evaluating every query's predicate separately.
//! * E4 — the grouped filter itself: probe cost vs naive per-factor
//!   evaluation as the number of registered predicates grows.
//!
//! ```text
//! cargo run --release -p tcq-bench --bin exp_cacq_sharing
//! ```

use tcq_bench::{kv, kv_schema, timed, Table};
use tcq_common::rng::seeded;
use tcq_common::{BitSet, BoundExpr, CmpOp, Expr, Value};
use tcq_stems::{GroupedFilter, QueryStem};

const TUPLES: usize = 20_000;

fn experiment_e3() {
    println!("E3 — N standing selection queries over one stream ({TUPLES} tuples)\n");
    let schema = kv_schema("S");
    let mut rng = seeded(31);
    let tuples: Vec<_> = (0..TUPLES)
        .map(|i| {
            kv(
                &schema,
                rng.gen_range(0..100),
                rng.gen_range(0..1000),
                i as i64,
            )
        })
        .collect();

    let mut table = Table::new(&["queries", "shared us", "per-query us", "speedup", "matches"]);
    for n in [1usize, 4, 16, 64, 256, 1024] {
        // Each query: v in [lo, lo+50) — selective ranges.
        let preds: Vec<Expr> = (0..n)
            .map(|q| {
                let lo = (q * 13 % 950) as i64;
                Expr::col("v")
                    .cmp(CmpOp::Ge, Expr::lit(lo))
                    .and(Expr::col("v").cmp(CmpOp::Lt, Expr::lit(lo + 50)))
            })
            .collect();

        // Shared: one QueryStem.
        let mut qstem = QueryStem::new(schema.clone());
        for (q, p) in preds.iter().enumerate() {
            qstem.insert_query(q, Some(p)).unwrap();
        }
        let (shared_matches, shared_us) = timed(|| {
            let mut total = 0usize;
            for t in &tuples {
                total += qstem.matching(t).unwrap().len();
            }
            total
        });

        // Baseline: evaluate every query's bound predicate per tuple.
        let bound: Vec<BoundExpr> = preds.iter().map(|p| p.bind(&schema).unwrap()).collect();
        let (naive_matches, naive_us) = timed(|| {
            let mut total = 0usize;
            for t in &tuples {
                for b in &bound {
                    if b.eval_pred(t).unwrap() {
                        total += 1;
                    }
                }
            }
            total
        });
        assert_eq!(
            shared_matches, naive_matches,
            "sharing must not change answers"
        );
        table.row(vec![
            n.to_string(),
            shared_us.to_string(),
            naive_us.to_string(),
            format!("{:.1}x", naive_us as f64 / shared_us.max(1) as f64),
            shared_matches.to_string(),
        ]);
    }
    table.print();
    println!(
        "\n  shape check ([MSHR02] Fig. 7 analogue): shared cost grows sub-linearly\n\
         \x20 in #queries (index probe + output size) while per-query evaluation\n\
         \x20 grows linearly — the gap widens with query count.\n"
    );
}

fn experiment_e4() {
    println!("E4 — one grouped filter vs per-factor evaluation (probe cost)\n");
    let mut rng = seeded(37);
    let probes: Vec<Value> = (0..TUPLES)
        .map(|_| Value::Int(rng.gen_range(0..1000)))
        .collect();

    let mut table = Table::new(&["factors", "grouped us", "naive us", "speedup"]);
    for n in [16usize, 64, 256, 1024, 4096] {
        let ops = [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ];
        let factors: Vec<(usize, CmpOp, Value)> = (0..n)
            .map(|i| (i, ops[i % 6], Value::Int((i as i64 * 7) % 1000)))
            .collect();
        let mut gf = GroupedFilter::new();
        for (id, op, c) in &factors {
            gf.insert(*id, *op, c.clone()).unwrap();
        }
        let (g_total, g_us) = timed(|| {
            let mut total = 0usize;
            let mut out = BitSet::new();
            for p in &probes {
                out.clear();
                gf.eval(p, &mut out);
                total += out.len();
            }
            total
        });
        let (n_total, n_us) = timed(|| {
            let mut total = 0usize;
            for p in &probes {
                for (_, op, c) in &factors {
                    if p.sql_cmp(c).unwrap().is_some_and(|o| op.matches(o)) {
                        total += 1;
                    }
                }
            }
            total
        });
        assert_eq!(g_total, n_total);
        table.row(vec![
            n.to_string(),
            g_us.to_string(),
            n_us.to_string(),
            format!("{:.1}x", n_us as f64 / g_us.max(1) as f64),
        ]);
    }
    table.print();
    println!(
        "\n  shape check: the naive path is linear in #factors; the grouped filter\n\
         \x20 pays a logarithmic probe plus output size, so speedup grows with\n\
         \x20 the number of standing predicates.\n"
    );
}

fn main() {
    experiment_e3();
    experiment_e3b();
    experiment_e4();
}

/// E3b — shared JOIN processing: N join queries over one SharedEddy (one
/// SteM pair, lineage-based delivery) vs N dedicated eddies (one SteM pair
/// EACH). This is CACQ's central claim applied to stateful operators.
fn experiment_e3b() {
    use tcq_eddy::{Eddy, EddyConfig, FixedPolicy, ModuleSpec, SharedEddy};
    use tcq_operators::symmetric_hash_join;

    println!("E3b — shared join: one SteM pair for all queries vs one pair each\n");
    let l = kv_schema("L");
    let r = kv_schema("R");
    let mut rng = seeded(47);
    let n_rows = 5_000usize;
    let rows: Vec<(bool, i64, i64)> = (0..n_rows)
        .map(|_| {
            (
                rng.gen_bool(0.5),
                rng.gen_range(0..200i64),
                rng.gen_range(0..100i64),
            )
        })
        .collect();

    let mut table = Table::new(&[
        "queries",
        "shared us",
        "dedicated us",
        "speedup",
        "shared builds",
        "dedicated builds",
    ]);
    for n in [1usize, 8, 32, 128] {
        // Shared: one SharedEddy, N queries with different left filters.
        let mut shared = SharedEddy::joined(l.clone(), "k", r.clone(), "k", None).unwrap();
        for q in 0..n {
            let pred = Expr::col("v").cmp(CmpOp::Ge, Expr::lit((q % 100) as i64));
            shared.add_join_query(q, Some(&pred), None).unwrap();
        }
        let (shared_outs, shared_us) = timed(|| {
            let mut outs = 0usize;
            for (i, (left, k, v)) in rows.iter().enumerate() {
                let out = if *left {
                    shared.push_left(kv(&l, *k, *v, i as i64 + 1)).unwrap()
                } else {
                    shared.push_right(kv(&r, *k, *v, i as i64 + 1)).unwrap()
                };
                outs += out.iter().map(|(_, qs)| qs.len()).sum::<usize>();
            }
            outs
        });
        let shared_builds = shared.stats().builds;

        // Dedicated: N separate eddies, each with its own SteM pair.
        let mut eddies: Vec<Eddy> = (0..n)
            .map(|q| {
                let mut e = Eddy::new(
                    &["L", "R"],
                    Box::new(FixedPolicy::new(vec![0, 1, 2])),
                    EddyConfig::default(),
                )
                .unwrap();
                let (lb, rb) = (e.source_bit("L").unwrap(), e.source_bit("R").unwrap());
                let (sl, sr) = symmetric_hash_join(&l, "L", "k", &r, "R", "k").unwrap();
                e.add_module(ModuleSpec::stem(Box::new(sl), lb, rb))
                    .unwrap();
                e.add_module(ModuleSpec::stem(Box::new(sr), rb, lb))
                    .unwrap();
                let pred = Expr::qcol("L", "v").cmp(CmpOp::Ge, Expr::lit((q % 100) as i64));
                let f = tcq_operators::SelectOp::new("f", &pred, &l).unwrap();
                e.add_module(ModuleSpec::filter(Box::new(f), lb)).unwrap();
                e
            })
            .collect();
        let (dedicated_outs, dedicated_us) = timed(|| {
            let mut outs = 0usize;
            for (i, (left, k, v)) in rows.iter().enumerate() {
                let row = if *left {
                    kv(&l, *k, *v, i as i64 + 1)
                } else {
                    kv(&r, *k, *v, i as i64 + 1)
                };
                for e in &mut eddies {
                    outs += e.process(row.clone()).unwrap().len();
                }
            }
            outs
        });
        assert_eq!(
            shared_outs, dedicated_outs,
            "sharing must not change answers"
        );
        table.row(vec![
            n.to_string(),
            shared_us.to_string(),
            dedicated_us.to_string(),
            format!("{:.1}x", dedicated_us as f64 / shared_us.max(1) as f64),
            shared_builds.to_string(),
            (n as u64 * shared_builds).to_string(),
        ]);
    }
    table.print();
    println!(
        "\n  shape check: dedicated processing replicates every build and probe N\n\
         \x20 times; the shared eddy does the join work ONCE and fans out by\n\
         \x20 lineage — the speedup approaches N for state-heavy plans.\n"
    );
}
