//! Experiment E-clients (DESIGN.md "Network transport & client fleet"):
//! real TCP ingress/egress under a load-generating client fleet.
//!
//! One engine behind the [`tcq_net`] TCP transport serves a fleet of
//! concurrent remote subscribers — each a real socket with its own
//! bounded per-connection egress queue — while ingest connections ship
//! tuple batches over the same wire protocol. The fleet is deliberately
//! mixed:
//!
//! * **healthy** subscribers drain continuously;
//! * **slow** subscribers sleep between reads (their queue backs up and
//!   sheds, nobody else's does);
//! * **stalled** subscribers never read after subscribing (a full socket
//!   plus a full queue must stall only that one connection);
//! * **disconnectors** vanish mid-run without a `Bye` (a crashed client:
//!   the server reclassifies their undrained queue rows as
//!   `disconnected_loss`).
//!
//! Delivery latency is measured end to end over the wire: producers stamp
//! the send instant (microseconds since a shared epoch) into the `v`
//! column, receivers subtract on arrival.
//!
//! Claims demonstrated:
//!
//! * the fleet sustains nonzero end-to-end throughput with p50/p99
//!   delivery latency measured at the remote clients;
//! * the egress ledger stays exact under socket-level churn:
//!   `delivered + shed + displaced + disconnected_loss == offered`;
//! * router delivery equals wire reality: `delivered == rows_written`
//!   summed over connections, and every healthy subscriber received
//!   exactly what its connection's writer put on the wire;
//! * every ingested row is decoded exactly once (`rows_read` equals the
//!   rows shipped), and every connection tears down (`closed ==
//!   accepted`);
//! * the run emits machine-readable `BENCH_clients.json`.
//!
//! ```text
//! cargo run --release -p tcq-bench --bin exp_clients [-- --smoke]
//! ```
//!
//! `--smoke` runs a reduced fleet (64 subscribers) and exits non-zero if
//! any tripwire fails — the gate `scripts/ci.sh` relies on. The full run
//! drives 1000 concurrent TCP subscribers.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use tcq_bench::{kv, kv_schema, Table};
use tcq_net::{NetServer, TcqClient};
use tcq_server::{ServerConfig, TcpTransportConfig, TransportConfig};

/// Standing-query key domain: client `i` watches `k = i % KEYS`.
const KEYS: i64 = 100;
/// Rows per ingest batch frame.
const BATCH: usize = 50;
/// Per-connection egress queue capacity (router side of each socket).
const CLIENT_QUEUE: usize = 256;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Role {
    Healthy,
    Slow,
    Stalled,
    Disconnector,
}

impl Role {
    fn name(self) -> &'static str {
        match self {
            Role::Healthy => "healthy",
            Role::Slow => "slow",
            Role::Stalled => "stalled",
            Role::Disconnector => "disconnector",
        }
    }
}

struct Fleet {
    subscribers: usize,
    slow: usize,
    stalled: usize,
    disconnectors: usize,
    ingest_conns: usize,
    rows: usize,
}

impl Fleet {
    fn healthy(&self) -> usize {
        self.subscribers - self.slow - self.stalled - self.disconnectors
    }
    fn role(&self, i: usize) -> Role {
        // Interleave the misbehaving clients through the fleet so they do
        // not cluster on adjacent keys.
        if i < self.disconnectors {
            Role::Disconnector
        } else if i < self.disconnectors + self.stalled {
            Role::Stalled
        } else if i < self.disconnectors + self.stalled + self.slow {
            Role::Slow
        } else {
            Role::Healthy
        }
    }
}

#[derive(Debug)]
struct ClientReport {
    role: Role,
    conn: u64,
    received: u64,
    latencies_us: Vec<u64>,
    aborted: bool,
}

fn connect_retry(addr: SocketAddr) -> TcqClient {
    let mut last = None;
    for _ in 0..100 {
        match TcqClient::connect(addr) {
            Ok(c) => return c,
            Err(e) => {
                last = Some(e);
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }
    panic!("fleet client could not connect: {last:?}");
}

/// Connect-ramp permits. A thousand simultaneous `connect()`s would dump
/// the whole fleet on the listener's backlog at once; the single accept
/// thread (two thread spawns per connection) then drains it slower than
/// the 5s handshake timeout abandons it, and every accepted socket is
/// already dead — a livelock where nobody past the first wave ever
/// subscribes. Bounding how many clients are inside
/// connect-handshake-submit at once turns the herd into a ramp; once
/// subscribed, all [`Fleet::subscribers`] stream concurrently.
const CONNECT_PERMITS: usize = 32;

fn acquire_permit(permits: &AtomicUsize) {
    loop {
        let n = permits.load(Ordering::SeqCst);
        if n > 0
            && permits
                .compare_exchange(n, n - 1, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
        {
            return;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[allow(clippy::too_many_arguments)]
fn subscriber(
    addr: SocketAddr,
    key: i64,
    role: Role,
    epoch: Instant,
    subscribed: &AtomicUsize,
    done: &AtomicBool,
    permits: &AtomicUsize,
) -> ClientReport {
    acquire_permit(permits);
    let mut c = connect_retry(addr);
    let conn = c.conn_id();
    c.submit(&format!("SELECT k, v FROM s WHERE k = {key}"))
        .expect("submit standing query");
    subscribed.fetch_add(1, Ordering::SeqCst);
    permits.fetch_add(1, Ordering::SeqCst);

    let mut report = ClientReport {
        role,
        conn,
        received: 0,
        latencies_us: Vec::new(),
        aborted: false,
    };
    match role {
        Role::Stalled => {
            // Subscribed, then silent: never reads its socket again. The
            // kernel buffers fill, then the per-connection queue, then the
            // router sheds — all without touching anyone else. Departs
            // without a Bye at the end.
            while !done.load(Ordering::SeqCst) {
                std::thread::sleep(Duration::from_millis(20));
            }
            c.abort();
            report.aborted = true;
        }
        Role::Disconnector => {
            // Reads a little to prove liveness, then vanishes mid-run.
            while !done.load(Ordering::SeqCst) && report.received < 5 {
                if let Ok(Some(b)) = c.next_results(Duration::from_millis(50)) {
                    report.received += b.tuples.len() as u64;
                }
            }
            c.abort();
            report.aborted = true;
        }
        Role::Healthy | Role::Slow => {
            loop {
                match c.next_results(Duration::from_millis(50)) {
                    Ok(Some(b)) => {
                        let now = epoch.elapsed().as_micros() as u64;
                        for t in &b.tuples {
                            let sent = t.value(1).as_int().unwrap_or(0) as u64;
                            report.latencies_us.push(now.saturating_sub(sent));
                        }
                        report.received += b.tuples.len() as u64;
                        if role == Role::Slow {
                            std::thread::sleep(Duration::from_millis(20));
                        }
                    }
                    Ok(None) => {
                        if done.load(Ordering::SeqCst) {
                            break;
                        }
                    }
                    Err(_) => break, // server went away (shutdown race)
                }
            }
            let _ = c.bye();
        }
    }
    report
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn gate(cond: bool, msg: &str) {
    if !cond {
        eprintln!("FAIL: {msg}");
        std::process::exit(1);
    }
}

#[allow(clippy::too_many_arguments)]
fn write_json(
    path: &str,
    fleet: &Fleet,
    total_received: u64,
    tuples_per_sec: f64,
    p50: u64,
    p99: u64,
    e: &tcq_egress::EgressStats,
    n: &tcq_net::NetStats,
    wall_ms: f64,
) {
    let json = format!(
        "{{\n  \"experiment\": \"clients\",\n  \"subscribers\": {},\n  \
         \"healthy\": {},\n  \"slow\": {},\n  \"stalled\": {},\n  \
         \"disconnectors\": {},\n  \"ingest_conns\": {},\n  \
         \"rows_ingested\": {},\n  \"rows_received\": {},\n  \
         \"tuples_per_sec\": {:.1},\n  \"p50_us\": {},\n  \"p99_us\": {},\n  \
         \"wall_ms\": {:.1},\n  \"egress\": {{\"offered\": {}, \"delivered\": {}, \
         \"shed\": {}, \"displaced\": {}, \"disconnected\": {}, \
         \"disconnected_loss\": {}}},\n  \"net\": {{\"accepted\": {}, \
         \"closed\": {}, \"rows_read\": {}, \"rows_written\": {}, \
         \"rows_lost_disconnect\": {}}}\n}}\n",
        fleet.subscribers,
        fleet.healthy(),
        fleet.slow,
        fleet.stalled,
        fleet.disconnectors,
        fleet.ingest_conns,
        fleet.rows,
        total_received,
        tuples_per_sec,
        p50,
        p99,
        wall_ms,
        e.offered,
        e.delivered,
        e.shed,
        e.displaced,
        e.disconnected,
        e.disconnected_loss,
        n.accepted,
        n.closed,
        n.rows_read,
        n.rows_written,
        n.rows_lost_disconnect,
    );
    std::fs::write(path, json).expect("write BENCH_clients.json");
    println!("  wrote {path}");
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let fleet = if smoke {
        Fleet {
            subscribers: 64,
            slow: 2,
            stalled: 1,
            disconnectors: 1,
            ingest_conns: 2,
            rows: 2_000,
        }
    } else {
        Fleet {
            subscribers: 1_000,
            slow: 20,
            stalled: 10,
            disconnectors: 10,
            ingest_conns: 4,
            rows: 10_000,
        }
    };
    println!(
        "E-clients: {} TCP subscribers ({} healthy / {} slow / {} stalled / {} disconnecting), \
         {} ingest connections, {} rows",
        fleet.subscribers,
        fleet.healthy(),
        fleet.slow,
        fleet.stalled,
        fleet.disconnectors,
        fleet.ingest_conns,
        fleet.rows
    );

    let server = NetServer::start(ServerConfig {
        transport: TransportConfig::Tcp(TcpTransportConfig {
            addr: "127.0.0.1:0".into(),
            client_queue: CLIENT_QUEUE,
            ..TcpTransportConfig::default()
        }),
        ..ServerConfig::default()
    })
    .expect("start server");
    server
        .engine()
        .register_stream("s", kv_schema("s"))
        .expect("register stream");
    let addr = server.local_addr().expect("tcp transport bound");
    let epoch = Instant::now();

    // --- Fleet spawn: every subscriber is one real TCP connection. ---
    let subscribed = Arc::new(AtomicUsize::new(0));
    let done = Arc::new(AtomicBool::new(false));
    let permits = Arc::new(AtomicUsize::new(CONNECT_PERMITS));
    let reports: Arc<Mutex<Vec<ClientReport>>> = Arc::new(Mutex::new(Vec::new()));
    let mut handles = Vec::with_capacity(fleet.subscribers);
    for i in 0..fleet.subscribers {
        // Spawn gating: never let more than a window of not-yet-subscribed
        // clients exist. A thousand threads contending for 32 permits is
        // its own context-switch storm on a small machine; keeping the
        // window tight means permit waiters are few and everyone already
        // subscribed is parked in a blocking socket read.
        while i.saturating_sub(subscribed.load(Ordering::SeqCst)) > 64 {
            std::thread::sleep(Duration::from_millis(10));
        }
        let key = i as i64 % KEYS;
        let role = fleet.role(i);
        let (subscribed, done, reports) = (subscribed.clone(), done.clone(), reports.clone());
        let permits = permits.clone();
        handles.push(
            std::thread::Builder::new()
                .name(format!("fleet-{i}"))
                .stack_size(256 * 1024)
                .spawn(move || {
                    let r = subscriber(addr, key, role, epoch, &subscribed, &done, &permits);
                    reports.lock().unwrap().push(r);
                })
                .expect("spawn fleet thread"),
        );
    }

    // Every standing query registered before the first row flows.
    let sub_deadline = Instant::now() + Duration::from_secs(300);
    let mut last_report = Instant::now();
    while subscribed.load(Ordering::SeqCst) < fleet.subscribers {
        gate(
            Instant::now() < sub_deadline,
            "fleet never finished subscribing",
        );
        if last_report.elapsed() > Duration::from_secs(5) {
            println!(
                "  ... {}/{} subscribed",
                subscribed.load(Ordering::SeqCst),
                fleet.subscribers
            );
            last_report = Instant::now();
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    println!(
        "  fleet subscribed ({} standing queries)",
        fleet.subscribers
    );

    // --- Ingest: remote producers ship stamped rows over the wire. ---
    let t0 = Instant::now();
    let per_conn = fleet.rows / fleet.ingest_conns;
    let mut producers = Vec::new();
    for p in 0..fleet.ingest_conns {
        producers.push(std::thread::spawn(move || {
            let schema = kv_schema("s");
            let mut c = connect_retry(addr);
            let base = p * per_conn;
            let mut sent = 0usize;
            while sent < per_conn {
                let n = BATCH.min(per_conn - sent);
                let batch: Vec<_> = (0..n)
                    .map(|j| {
                        let i = (base + sent + j) as i64;
                        kv(&schema, i % KEYS, epoch.elapsed().as_micros() as i64, i)
                    })
                    .collect();
                c.ingest("s", batch).expect("ingest batch");
                sent += n;
                // Pace the burst: delivery fan-out shares the core.
                std::thread::sleep(Duration::from_millis(1));
            }
            // Flush before departing: ingest frames carry no ack, but the
            // Pong round-trips through the same dispatch loop, so its
            // arrival proves every prior batch reached the engine. Without
            // it, joining this thread races the tail of the byte stream
            // against the main thread's finish_stream. Each ping waits 5s;
            // retry while the dispatch loop digests the ingest backlog.
            let flushed = (0..24u64).any(|t| c.ping(p as u64 * 100 + t).is_ok());
            assert!(flushed, "producer flush ping never answered");
            c.bye().expect("producer bye");
            sent
        }));
    }
    let mut shipped = 0usize;
    for p in producers {
        shipped += p.join().expect("producer thread");
    }
    server.engine().finish_stream("s").expect("eof");
    gate(
        server.engine().quiesce(Duration::from_secs(120)),
        "engine never quiesced after ingest",
    );

    // --- Drain and tear down the fleet. ---
    done.store(true, Ordering::SeqCst);
    for h in handles {
        h.join().expect("fleet thread");
    }
    let wall = t0.elapsed();
    let reports = Arc::try_unwrap(reports).unwrap().into_inner().unwrap();

    // Every connection (fleet + producers) must fully tear down, and the
    // dead disconnectors must be settled in the ledger.
    let settle_deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let n = server.net_stats();
        let e = server.engine().egress_stats_full();
        if n.closed == n.accepted && e.accounted() {
            break;
        }
        gate(
            Instant::now() < settle_deadline,
            "connections never settled after fleet teardown",
        );
        std::thread::sleep(Duration::from_millis(50));
    }

    let e = server.engine().egress_stats_full();
    let n = server.net_stats();
    let conns = server.conn_stats();

    // --- Aggregate. ---
    let total_received: u64 = reports.iter().map(|r| r.received).sum();
    let mut lat: Vec<u64> = reports
        .iter()
        .flat_map(|r| r.latencies_us.iter().copied())
        .collect();
    lat.sort_unstable();
    let (p50, p99) = (percentile(&lat, 0.50), percentile(&lat, 0.99));
    let tuples_per_sec = total_received as f64 / wall.as_secs_f64();

    let mut table = Table::new(&["role", "clients", "received", "p50 us", "p99 us", "aborted"]);
    for role in [Role::Healthy, Role::Slow, Role::Stalled, Role::Disconnector] {
        let rs: Vec<&ClientReport> = reports.iter().filter(|r| r.role == role).collect();
        let mut rl: Vec<u64> = rs
            .iter()
            .flat_map(|r| r.latencies_us.iter().copied())
            .collect();
        rl.sort_unstable();
        table.row(vec![
            role.name().into(),
            rs.len().to_string(),
            rs.iter().map(|r| r.received).sum::<u64>().to_string(),
            percentile(&rl, 0.50).to_string(),
            percentile(&rl, 0.99).to_string(),
            rs.iter().filter(|r| r.aborted).count().to_string(),
        ]);
    }
    table.print();
    println!(
        "\n  {:.0} tuples/sec end-to-end over {} connections ({:.1}s wall)\n  \
         ledger: offered {} = delivered {} + shed {} + displaced {} + lost {}\n  \
         wire: rows_read {} rows_written {} lost_at_disconnect {}",
        tuples_per_sec,
        n.accepted,
        wall.as_secs_f64(),
        e.offered,
        e.delivered,
        e.shed,
        e.displaced,
        e.disconnected_loss,
        n.rows_read,
        n.rows_written,
        n.rows_lost_disconnect,
    );

    // --- Tripwires: the claims this experiment is allowed to make. ---
    gate(shipped == fleet.rows, "producers shipped every row");
    gate(
        n.rows_read == fleet.rows as u64,
        "every ingested row decoded off the wire exactly once",
    );
    gate(total_received > 0, "fleet throughput must be nonzero");
    gate(tuples_per_sec > 0.0, "tuples/sec must be nonzero");
    gate(e.accounted(), "egress ledger must balance exactly");
    gate(
        e.delivered == n.rows_written,
        "router delivery must equal rows on the wire",
    );
    gate(
        n.rows_lost_disconnect == e.disconnected_loss,
        "transport and router must agree on disconnect loss",
    );
    // Exact per-connection truth: every healthy subscriber received
    // precisely what its connection's writer put on the wire.
    for r in reports.iter().filter(|r| r.role == Role::Healthy) {
        let snap = conns.iter().find(|c| c.conn == r.conn);
        gate(snap.is_some(), "healthy client's connection is accounted");
        gate(
            snap.unwrap().rows_written == r.received,
            "healthy client received exactly its connection's wire rows",
        );
    }
    gate(
        lat.len() as u64
            >= total_received
                - reports
                    .iter()
                    .filter(|r| r.aborted)
                    .map(|r| r.received)
                    .sum::<u64>(),
        "latency recorded for every drained row",
    );
    gate(p99 >= p50, "percentiles must be ordered");

    if !smoke {
        write_json(
            "BENCH_clients.json",
            &fleet,
            total_received,
            tuples_per_sec,
            p50,
            p99,
            &e,
            &n,
            wall.as_secs_f64() * 1000.0,
        );
    }

    server.shutdown().expect("server shutdown");
    println!(
        "\n  ok: the wire is load-bearing — {} sockets, exact ledger",
        1 + fleet.subscribers + fleet.ingest_conns
    );
}
