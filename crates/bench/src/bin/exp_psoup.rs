//! Experiments E5 + F3 (DESIGN.md): PSoup's materialized Results Structure
//! vs recompute-on-connect, reproducing the shape of Chandrasekaran &
//! Franklin \[CF02\] — materialization makes answer *retrieval* for
//! intermittently connected clients nearly free, at a modest per-tuple
//! maintenance cost.
//!
//! ```text
//! cargo run --release -p tcq-bench --bin exp_psoup
//! ```

use tcq_bench::{kv, kv_schema, timed, Table};
use tcq_common::rng::seeded;
use tcq_common::{CmpOp, Expr};
use tcq_psoup::PSoup;

const STREAM: i64 = 50_000;
const QUERIES: usize = 64;

fn build_psoup(history: i64, window: i64) -> PSoup {
    let schema = kv_schema("S");
    let mut ps = PSoup::new(schema, history);
    for q in 0..QUERIES {
        let lo = (q as i64 * 17) % 900;
        let pred = Expr::col("v")
            .cmp(CmpOp::Ge, Expr::lit(lo))
            .and(Expr::col("v").cmp(CmpOp::Lt, Expr::lit(lo + 100)));
        ps.register(q, Some(&pred), window).unwrap();
    }
    ps
}

fn main() {
    println!(
        "E5/F3 — PSoup: invoke (materialized) vs recompute, {QUERIES} standing queries,\n\
         {STREAM}-tuple stream, clients reconnect every `period` tuples\n"
    );
    let schema = kv_schema("S");
    let mut table = Table::new(&[
        "window",
        "period",
        "invokes",
        "invoke us",
        "recompute us",
        "retrieval speedup",
    ]);
    for window in [100i64, 1000, 5000] {
        for period in [500i64, 5000] {
            let mut rng = seeded(41);
            let mut ps = build_psoup(window.max(1000) * 2, window);
            let mut invoke_us = 0u64;
            let mut recompute_us = 0u64;
            let mut invokes = 0u64;
            for i in 1..=STREAM {
                ps.push(kv(&schema, 0, rng.gen_range(0..1000), i)).unwrap();
                if i % period == 0 {
                    // every client reconnects and reads its current answer
                    for q in 0..QUERIES {
                        let (a, us) = timed(|| ps.invoke(q).unwrap());
                        invoke_us += us;
                        let (b, us) = timed(|| ps.recompute(q).unwrap());
                        recompute_us += us;
                        assert_eq!(a, b, "materialized answers must be exact");
                        invokes += 1;
                    }
                }
            }
            table.row(vec![
                window.to_string(),
                period.to_string(),
                invokes.to_string(),
                invoke_us.to_string(),
                recompute_us.to_string(),
                format!("{:.1}x", recompute_us as f64 / invoke_us.max(1) as f64),
            ]);
        }
    }
    table.print();
    println!(
        "\n  shape check ([CF02] Fig. 9 analogue): retrieval from the Results\n\
         \x20 Structure costs O(answer), while recompute scans the whole retained\n\
         \x20 window per query — the speedup grows with window size, which is\n\
         \x20 exactly why PSoup can serve disconnected clients cheaply.\n"
    );
}
