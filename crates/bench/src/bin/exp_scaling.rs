//! Experiment E-scaling (DESIGN.md "§5c Partitioned parallelism"): the
//! exp_throughput pipeline — push client → ingress Fjord → dispatcher →
//! join → egress — swept over the partition-parallel degree
//! `P ∈ {1, 2, 4, 8}` at the best batching knob (K = 64). At `P = 1` the
//! join runs as one sequential `JoinCqDu`; at `P > 1` it runs as the
//! threaded exchange `PartitionDu → P cloned eddies → MergeDu`, each
//! worker pinned to its own EO via the footprint-class registry.
//!
//! Claims demonstrated:
//!
//! * hash-partitioning the eddy across P EO threads raises sustained
//!   tuples/sec over the sequential plan when cores are available, while
//!   the deterministic merge keeps delivery exactly-once at every P
//!   (the ledger balances, delivered == offered);
//! * per-EO busy fractions show the partitions actually spreading load
//!   rather than convoying on one thread;
//! * the run emits machine-readable `BENCH_scaling.json` extending the
//!   perf trajectory.
//!
//! ```text
//! cargo run --release -p tcq-bench --bin exp_scaling [-- --smoke]
//! ```
//!
//! `--smoke` runs a reduced workload at P ∈ {1, 4} only, as the CI
//! tripwire. On a multi-core box it exits non-zero unless P=4 beats P=1.
//! On a single-core box (where P threads only add coordination cost and
//! no speedup is physically possible) it instead enforces that the
//! exchange overhead stays bounded: P=4 must sustain at least 0.4x of
//! P=1. The core count is printed and recorded so the gate's meaning is
//! never ambiguous.

use std::sync::mpsc::Receiver;
use std::time::{Duration, Instant};

use tcq_bench::Table;
use tcq_common::{DataType, Field, Schema, SchemaRef, Timestamp, Tuple, TupleBuilder};
use tcq_egress::Delivery;
use tcq_server::{ServerConfig, TelegraphCQ};

/// Batching knob for every run: exp_throughput's best configuration.
const K: usize = 64;

/// Rows in the small build-side dimension stream; every hot tuple joins
/// exactly one of them, so delivered == offered by design.
const DIM_ROWS: i64 = 64;

fn dim_schema() -> SchemaRef {
    Schema::new(vec![
        Field::new("id", DataType::Int),
        Field::new("tag", DataType::Int),
    ])
    .into_ref()
}

fn hot_schema() -> SchemaRef {
    Schema::new(vec![
        Field::new("k", DataType::Int),
        Field::new("v", DataType::Int),
    ])
    .into_ref()
}

struct POutcome {
    partitions: usize,
    tuples_per_sec: f64,
    p50_us: u64,
    p99_us: u64,
    delivered: usize,
    offered: usize,
    /// Busiest and idlest EO busy fraction — the load-spread picture.
    util_max: f64,
    util_min: f64,
    /// The reaper hit its deadline with tuples still undelivered — the
    /// subrun wedged (or crawled) instead of draining.
    stalled: bool,
    /// Wall time from the last push to the last delivery: the drain
    /// tail a wedge hides in when throughput alone is reported.
    drain_tail_ms: f64,
}

/// Per-P aggregate over the repeat subruns. Throughput stays best-of-N
/// (the usual benchmark convention), but stalls are *surfaced*, never
/// masked: every subrun that hit the reaper deadline is counted, and the
/// worst drain tail across subruns is reported alongside the best rate.
struct PAgg {
    best: POutcome,
    stalled_subruns: usize,
    drain_tail_worst_ms: f64,
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// One full pipeline run at partition degree `p`: `n` hot tuples joined
/// against the pre-loaded dimension stream, timed from first push to last
/// delivery. Latency rides inside the tuple (`v` = send micros + 1, so
/// the `v > 0` factor always passes).
fn run_pipeline(p: usize, n: usize) -> POutcome {
    let server = TelegraphCQ::start(ServerConfig {
        io_batch: K,
        eddy_batch: K,
        partitions: p,
        // Enough EOs that each partition worker lands on its own thread,
        // with headroom for the partitioner, merge, and dispatchers.
        eos: p + 3,
        ..ServerConfig::default()
    })
    .unwrap();
    server.register_stream("s", hot_schema()).unwrap();
    server.register_stream("dim", dim_schema()).unwrap();

    let (client, rx): (_, Receiver<Delivery>) = server.connect_push_client(n + 1024).unwrap();
    // Unequal window widths keep this join out of the CACQ shared-SteM
    // plan, so P=1 runs the dedicated sequential eddy and P>1 the
    // partitioned exchange — the comparison E-scaling is about.
    server
        .submit(
            "SELECT s.v, d.tag FROM s s, dim d \
             WHERE s.k = d.id AND s.v > 0 \
             for (t = ST; t >= 0; t++) { WindowIs(s, t - 8000000, t); WindowIs(d, t - 9000000, t); }",
            client,
        )
        .unwrap();

    // Load the build side and let the dispatcher absorb it before the
    // clock starts, so the timed region is pure hot-stream flow.
    let dims = dim_schema();
    let dim_batch: Vec<Tuple> = (0..DIM_ROWS)
        .map(|id| {
            TupleBuilder::new(dims.clone())
                .push(id)
                .push(id * 10)
                .at(Timestamp::logical(id + 1))
                .build()
                .unwrap()
        })
        .collect();
    server.push_batch("dim", dim_batch).unwrap();
    while server.stream_time("dim").unwrap() < DIM_ROWS {
        std::thread::sleep(Duration::from_millis(1));
    }
    std::thread::sleep(Duration::from_millis(20));

    let epoch = Instant::now();
    let reaper = std::thread::spawn(move || {
        let mut latencies = Vec::with_capacity(n);
        // Tight deadline: a healthy subrun drains in single-digit seconds,
        // so 30 s flags a wedge instead of hiding one for two minutes.
        let deadline = Instant::now() + Duration::from_secs(30);
        while latencies.len() < n && Instant::now() < deadline {
            let before = latencies.len();
            for (_q, t) in rx.try_iter() {
                let sent_us = t.value(0).as_int().unwrap() - 1;
                let now_us = epoch.elapsed().as_micros() as i64;
                latencies.push((now_us - sent_us).max(0) as u64);
                if latencies.len() >= n {
                    break;
                }
            }
            if latencies.len() == before {
                std::thread::sleep(Duration::from_micros(200));
            }
        }
        (latencies, Instant::now())
    });

    let hot = hot_schema();
    let start = Instant::now();
    let mut pushed = 0usize;
    while pushed < n {
        let m = K.min(n - pushed);
        let mut chunk = Vec::with_capacity(m);
        for j in 0..m {
            let idx = (pushed + j) as i64;
            let sent_us = epoch.elapsed().as_micros() as i64 + 1;
            chunk.push(
                TupleBuilder::new(hot.clone())
                    .push(idx % DIM_ROWS)
                    .push(sent_us)
                    .at(Timestamp::logical(DIM_ROWS + idx + 1))
                    .build()
                    .unwrap(),
            );
        }
        server.push_batch("s", chunk).unwrap();
        pushed += m;
    }
    // End-of-stream on every input closes the exchange's final partition
    // run; without it the trailing tuples would wait in a worker for a
    // punctuation that never comes. (No-op for the sequential P=1 plan.)
    server.finish_stream("s").unwrap();
    server.finish_stream("dim").unwrap();
    let push_done = Instant::now();

    let (mut latencies, finished) = reaper.join().unwrap();
    let elapsed = finished.duration_since(start).as_secs_f64().max(1e-9);
    let delivered = latencies.len();
    latencies.sort_unstable();
    let util = server.executor_stats().utilization_per_eo();
    server.shutdown().unwrap();

    POutcome {
        partitions: p,
        tuples_per_sec: delivered as f64 / elapsed,
        p50_us: percentile(&latencies, 0.50),
        p99_us: percentile(&latencies, 0.99),
        delivered,
        offered: n,
        util_max: util.iter().copied().fold(0.0, f64::max),
        util_min: util.iter().copied().fold(1.0, f64::min),
        stalled: delivered < n,
        drain_tail_ms: finished.saturating_duration_since(push_done).as_secs_f64() * 1e3,
    }
}

fn write_json(path: &str, n: usize, cores: usize, outcomes: &[PAgg], speedup: f64) {
    let mut entries = Vec::new();
    for agg in outcomes {
        let o = &agg.best;
        entries.push(format!(
            "    {{\"partitions\": {}, \"tuples_per_sec\": {:.1}, \"p50_us\": {}, \
             \"p99_us\": {}, \"delivered\": {}, \"offered\": {}, \
             \"eo_util_max\": {:.3}, \"eo_util_min\": {:.3}, \
             \"stalled_subruns\": {}, \"drain_tail_worst_ms\": {:.1}}}",
            o.partitions,
            o.tuples_per_sec,
            o.p50_us,
            o.p99_us,
            o.delivered,
            o.offered,
            o.util_max,
            o.util_min,
            agg.stalled_subruns,
            agg.drain_tail_worst_ms
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"scaling\",\n  \"pipeline\": \
         \"exp_throughput join at K=64, swept over exchange partition degree P\",\n  \
         \"tuples\": {},\n  \"cores\": {},\n  \"results\": [\n{}\n  ],\n  \
         \"speedup_p4_vs_p1\": {:.2}\n}}\n",
        n,
        cores,
        entries.join(",\n"),
        speedup
    );
    std::fs::write(path, json).unwrap();
    println!("  wrote {path}");
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);
    let (n, runs, ps): (usize, usize, &[usize]) = if smoke {
        (8_000, 2, &[1, 4])
    } else {
        (150_000, 3, &[1, 2, 4, 8])
    };
    println!(
        "E-scaling — partitioned exchange, select-project-join at K={K}\n\
         ({n} tuples per run, P = ServerConfig::partitions, {cores} core(s))\n"
    );

    let mut table = Table::new(&[
        "P",
        "tuples/sec",
        "p50 latency (us)",
        "p99 latency (us)",
        "delivered",
        "offered",
        "EO util min..max",
        "stalled subruns",
        "worst drain tail (ms)",
    ]);
    let mut outcomes: Vec<PAgg> = Vec::new();
    for &p in ps {
        // Every subrun is kept: throughput is best-of-N, but a stalled
        // subrun is counted and the worst drain tail reported — a wedge
        // must never hide behind a lucky sibling run.
        let subruns: Vec<POutcome> = (0..runs).map(|_| run_pipeline(p, n)).collect();
        let stalled_subruns = subruns.iter().filter(|o| o.stalled).count();
        let drain_tail_worst_ms = subruns.iter().map(|o| o.drain_tail_ms).fold(0.0, f64::max);
        let best = subruns
            .into_iter()
            .reduce(|best, next| {
                let prefer_next = (best.stalled && !next.stalled)
                    || (best.stalled == next.stalled && next.tuples_per_sec > best.tuples_per_sec);
                if prefer_next {
                    next
                } else {
                    best
                }
            })
            .unwrap();
        table.row(vec![
            best.partitions.to_string(),
            format!("{:.0}", best.tuples_per_sec),
            best.p50_us.to_string(),
            best.p99_us.to_string(),
            best.delivered.to_string(),
            best.offered.to_string(),
            format!("{:.2}..{:.2}", best.util_min, best.util_max),
            stalled_subruns.to_string(),
            format!("{drain_tail_worst_ms:.1}"),
        ]);
        outcomes.push(PAgg {
            best,
            stalled_subruns,
            drain_tail_worst_ms,
        });
    }
    table.print();

    let base = outcomes
        .iter()
        .find(|o| o.best.partitions == 1)
        .unwrap()
        .best
        .tuples_per_sec;
    let par = outcomes
        .iter()
        .find(|o| o.best.partitions == 4)
        .unwrap()
        .best
        .tuples_per_sec;
    let speedup = par / base;
    println!("\n  speedup P=4 vs P=1: {speedup:.2}x on {cores} core(s)");
    if !smoke {
        write_json("BENCH_scaling.json", n, cores, &outcomes, speedup);
    }

    // Surfacing is not excusing: after the numbers are reported and
    // recorded, any stalled subrun still fails the experiment.
    let total_stalled: usize = outcomes.iter().map(|o| o.stalled_subruns).sum();
    if total_stalled > 0 {
        for agg in &outcomes {
            if agg.stalled_subruns > 0 {
                eprintln!(
                    "FAIL: P={}: {}/{} subruns hit the 30 s reaper deadline \
                     ({}/{} delivered in the reported run)",
                    agg.best.partitions,
                    agg.stalled_subruns,
                    runs,
                    agg.best.delivered,
                    agg.best.offered
                );
            }
        }
        std::process::exit(1);
    }

    if cores >= 2 {
        if speedup <= 1.0 {
            eprintln!(
                "FAIL: P=4 throughput ({par:.0}/s) not above P=1 ({base:.0}/s) on {cores} cores"
            );
            std::process::exit(1);
        }
    } else {
        // One core: parallel speedup is physically impossible, so the gate
        // degrades to an overhead bound — the exchange must not cost more
        // than half the sequential plan's throughput.
        println!(
            "  note: single core — strict P=4 > P=1 gate waived; \
             enforcing bounded exchange overhead instead"
        );
        if speedup < 0.4 {
            eprintln!(
                "FAIL: P=4 throughput ({par:.0}/s) below 0.4x of P=1 ({base:.0}/s) — \
                 exchange overhead out of bounds"
            );
            std::process::exit(1);
        }
    }
    println!(
        "\n  shape check: the partitioned exchange never loses a tuple, and the\n\
         \x20 deterministic merge keeps delivery identical to the sequential plan.\n"
    );
}
