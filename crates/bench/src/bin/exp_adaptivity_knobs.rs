//! Experiment E9 (DESIGN.md): "Adapting Adaptivity" (paper §4.3) —
//!
//! > "batching tuples, by dynamically adjusting the frequency of routing
//! > decisions in order to reduce per-tuple costs … when change is slow,
//! > or selectivity constant, many tuples should be routed to large, fixed
//! > sequences of operators; when change is fast … small groups of tuples
//! > should be routed to individually scheduled operators."
//!
//! We sweep the eddy's decision batch size under (a) a static workload and
//! (b) a drifting workload whose filter selectivities swap repeatedly,
//! reporting routing decisions made, total visits, and wall time.
//!
//! ```text
//! cargo run --release -p tcq-bench --bin exp_adaptivity_knobs
//! ```

use tcq_bench::{kv, kv_schema, timed, Table};
use tcq_common::rng::seeded;
use tcq_common::{CmpOp, Expr};
use tcq_eddy::{Eddy, EddyConfig, LotteryPolicy, ModuleSpec};
use tcq_operators::SelectOp;

const N: i64 = 100_000;

fn build(batch: usize) -> Eddy {
    let schema = kv_schema("S");
    let mut eddy = Eddy::new(
        &["S"],
        Box::new(LotteryPolicy::new().with_decay(0.5, 256)),
        EddyConfig {
            batch_size: batch,
            seed: 5,
        },
    )
    .unwrap();
    let s = eddy.source_bit("S").unwrap();
    for (name, col) in [("k<20", "k"), ("v<20", "v")] {
        let f = SelectOp::new(
            name,
            &Expr::col(col).cmp(CmpOp::Lt, Expr::lit(20i64)),
            &schema,
        )
        .unwrap();
        eddy.add_module(ModuleSpec::filter(Box::new(f), s)).unwrap();
    }
    eddy
}

/// `phases` = how many times the two filters swap selectivity.
fn run(mut eddy: Eddy, phases: i64) -> (u64, u64, u64) {
    let schema = kv_schema("S");
    let mut rng = seeded(43);
    let phase_len = (N / phases.max(1)).max(1);
    let ((), us) = timed(|| {
        for i in 0..N {
            let flipped = (i / phase_len) % 2 == 1;
            let (k, v) = if flipped {
                (rng.gen_range(0..25i64), rng.gen_range(0..100i64))
            } else {
                (rng.gen_range(0..100i64), rng.gen_range(0..25i64))
            };
            eddy.process(kv(&schema, k, v, i)).unwrap();
        }
    });
    let stats = eddy.stats();
    (stats.decisions, stats.visits, us)
}

fn sweep(label: &str, phases: i64) {
    println!("{label}\n");
    let mut table = Table::new(&["batch", "decisions", "visits", "visits/tuple", "wall us"]);
    for batch in [1usize, 8, 64, 256, 1024] {
        let (decisions, visits, us) = run(build(batch), phases);
        table.row(vec![
            batch.to_string(),
            decisions.to_string(),
            visits.to_string(),
            format!("{:.3}", visits as f64 / N as f64),
            us.to_string(),
        ]);
    }
    table.print();
    println!();
}

fn main() {
    println!("E9 — the §4.3 batching knob: routing decisions per {N} tuples\n");
    sweep("(a) static selectivities (change is slow → batch hard):", 1);
    sweep(
        "(b) selectivities swap 20 times (change is fast → batching lags the shift):",
        20,
    );
    println!(
        "  shape check: batching slashes decision count (and its overhead) with no\n\
         \x20 visit penalty when the workload is static; under fast drift, large\n\
         \x20 batches reuse stale orders and visits/tuple creeps toward the static\n\
         \x20 plan's — the flexibility/overhead tradeoff the paper describes.\n"
    );
}
