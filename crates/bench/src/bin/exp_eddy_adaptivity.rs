//! Experiments E1 + E2 (DESIGN.md): eddy adaptivity and routing-policy
//! quality, reproducing the shape of Avnur & Hellerstein's \[AH00\] results
//! that TelegraphCQ §2.2 builds on.
//!
//! * E1 — two commutative filters whose selectivities flip mid-stream.
//!   The metric is total module visits (≡ work): a static plan is right in
//!   only one phase; the eddy tracks the better plan in both.
//! * E2 — k filters with fixed but unknown selectivities. Compare the
//!   ticket lottery against the best static order (oracle), the worst
//!   static order, and random routing.
//!
//! ```text
//! cargo run --release -p tcq-bench --bin exp_eddy_adaptivity
//! ```

use tcq_bench::{kv, kv_schema, Table};
use tcq_common::rng::seeded;
use tcq_common::{CmpOp, Expr};
use tcq_eddy::{Eddy, EddyConfig, FixedPolicy, LotteryPolicy, RandomPolicy, RoutingPolicy};
use tcq_eddy::{EddyStats, GreedyPolicy, ModuleSpec};
use tcq_operators::SelectOp;

const N: i64 = 100_000;

fn two_filter_eddy(policy: Box<dyn RoutingPolicy>) -> Eddy {
    let schema = kv_schema("S");
    let mut eddy = Eddy::new(&["S"], policy, EddyConfig::default()).unwrap();
    let s = eddy.source_bit("S").unwrap();
    let fa = SelectOp::new(
        "k<20",
        &Expr::col("k").cmp(CmpOp::Lt, Expr::lit(20i64)),
        &schema,
    )
    .unwrap();
    let fb = SelectOp::new(
        "v<20",
        &Expr::col("v").cmp(CmpOp::Lt, Expr::lit(20i64)),
        &schema,
    )
    .unwrap();
    eddy.add_module(ModuleSpec::filter(Box::new(fa), s))
        .unwrap();
    eddy.add_module(ModuleSpec::filter(Box::new(fb), s))
        .unwrap();
    eddy
}

/// Phase 1: k uniform in [0,100) (f_a 20% pass), v in [0,25) (f_b 80%).
/// Phase 2: swapped.
fn run_flip(mut eddy: Eddy) -> EddyStats {
    let schema = kv_schema("S");
    let mut rng = seeded(11);
    for i in 0..N {
        let phase2 = i >= N / 2;
        let (k, v) = if phase2 {
            (rng.gen_range(0..25i64), rng.gen_range(0..100i64))
        } else {
            (rng.gen_range(0..100i64), rng.gen_range(0..25i64))
        };
        eddy.process(kv(&schema, k, v, i)).unwrap();
    }
    eddy.stats()
}

fn experiment_e1() {
    println!(
        "E1 — selectivity flip at tuple {}/{N} (visits = work; lower is better)\n",
        N / 2
    );
    let mut table = Table::new(&["plan", "visits", "visits/tuple", "emitted"]);
    for (label, policy) in [
        (
            "static f_a→f_b",
            Box::new(FixedPolicy::new(vec![0, 1])) as Box<dyn RoutingPolicy>,
        ),
        ("static f_b→f_a", Box::new(FixedPolicy::new(vec![1, 0]))),
        ("random", Box::new(RandomPolicy)),
        (
            "lottery eddy",
            Box::new(LotteryPolicy::new().with_decay(0.5, 512)),
        ),
        ("greedy eddy", Box::new(GreedyPolicy::new())),
    ] {
        let stats = run_flip(two_filter_eddy(policy));
        table.row(vec![
            label.to_string(),
            stats.visits.to_string(),
            format!("{:.3}", stats.visits as f64 / N as f64),
            stats.emitted.to_string(),
        ]);
    }
    table.print();
    println!(
        "\n  shape check: both static plans pay ~1.5 visits/tuple (right in one\n\
         \x20 phase each); the adaptive policies stay near the per-phase optimum\n\
         \x20 (~1.25) in BOTH phases without any optimizer statistics.\n"
    );
}

fn k_filter_eddy(policy: Box<dyn RoutingPolicy>, thresholds: &[i64]) -> Eddy {
    let schema = kv_schema("S");
    let mut eddy = Eddy::new(&["S"], policy, EddyConfig::default()).unwrap();
    let s = eddy.source_bit("S").unwrap();
    for (i, th) in thresholds.iter().enumerate() {
        let f = SelectOp::new(
            format!("v<{th}"),
            &Expr::col("v").cmp(CmpOp::Lt, Expr::lit(*th)),
            &schema,
        )
        .unwrap();
        eddy.add_module(ModuleSpec::filter(Box::new(f), s)).unwrap();
        let _ = i;
    }
    eddy
}

fn run_fixed_workload(mut eddy: Eddy) -> EddyStats {
    let schema = kv_schema("S");
    let mut rng = seeded(23);
    for i in 0..N {
        eddy.process(kv(&schema, 0, rng.gen_range(0..100i64), i))
            .unwrap();
    }
    eddy.stats()
}

fn experiment_e2() {
    // Selectivities: v < 10 (10%), v < 50 (50%), v < 90 (90%).
    // Optimal static order: most selective first = [10, 50, 90].
    let thresholds = [10i64, 50, 90];
    println!("E2 — 3 filters, pass rates 10%/50%/90% (ticket lottery vs static orders)\n");
    let mut table = Table::new(&["policy", "visits", "visits/tuple", "emitted"]);
    for (label, policy) in [
        (
            "oracle static (best)",
            Box::new(FixedPolicy::new(vec![0, 1, 2])) as Box<dyn RoutingPolicy>,
        ),
        ("worst static", Box::new(FixedPolicy::new(vec![2, 1, 0]))),
        ("random", Box::new(RandomPolicy)),
        ("lottery eddy", Box::new(LotteryPolicy::new())),
        ("greedy eddy", Box::new(GreedyPolicy::new())),
    ] {
        let stats = run_fixed_workload(k_filter_eddy(policy, &thresholds));
        table.row(vec![
            label.to_string(),
            stats.visits.to_string(),
            format!("{:.3}", stats.visits as f64 / N as f64),
            stats.emitted.to_string(),
        ]);
    }
    table.print();
    println!(
        "\n  shape check ([AH00] Fig. 6 analogue): lottery ≈ oracle static order,\n\
         \x20 well below random and far below the worst order — adaptivity finds\n\
         \x20 the selective-first ordering on its own.\n"
    );
}

/// E1b — ablation: the lottery's ticket decay (DESIGN.md calls this knob
/// out). Without decay, phase-1 tickets swamp phase-2 evidence and the
/// eddy re-adapts slowly (or never); with decay it forgets and re-learns.
fn experiment_e1b() {
    println!("E1b — ablation: lottery ticket decay under the selectivity flip\n");
    let mut table = Table::new(&["decay", "visits", "visits/tuple"]);
    for (label, decay, every) in [
        ("none (tickets accumulate forever)", 1.0, u64::MAX),
        ("x0.9 / 4096 decisions", 0.9, 4096),
        ("x0.5 / 1024 decisions", 0.5, 1024),
        ("x0.5 / 256 decisions", 0.5, 256),
    ] {
        let policy = LotteryPolicy::new()
            .with_decay(decay, every)
            .with_explore(0.02);
        let stats = run_flip(two_filter_eddy(Box::new(policy)));
        table.row(vec![
            label.to_string(),
            stats.visits.to_string(),
            format!("{:.3}", stats.visits as f64 / N as f64),
        ]);
    }
    table.print();
    println!(
        "\n  shape check: stale tickets are the adaptivity bottleneck — faster\n\
         \x20 decay tracks the flip more closely (diminishing returns once the\n\
         \x20 forgetting horizon is shorter than the phase length).\n"
    );
}

fn main() {
    experiment_e1();
    experiment_e1b();
    experiment_e2();
}
