//! Experiments F4/F5 + E11 (DESIGN.md): the TelegraphCQ process
//! architecture under churn — queries added and removed while streams flow
//! (Figure 5's QPQueue path), and footprint classes isolating disjoint
//! workloads across Execution Objects (§4.2.2).
//!
//! ```text
//! cargo run --release -p tcq-bench --bin exp_dynamic_queries
//! ```

use std::time::{Duration, Instant};

use tcq_bench::Table;
use tcq_common::{DataType, Field, Schema, SchemaRef, Timestamp, TupleBuilder};
use tcq_server::{ServerConfig, TelegraphCQ};

fn sensor_schema() -> SchemaRef {
    Schema::new(vec![
        Field::new("ts", DataType::Int),
        Field::new("sensorId", DataType::Int),
        Field::new("temperature", DataType::Float),
    ])
    .into_ref()
}

fn settle(server: &TelegraphCQ) {
    let mut last = server.egress_stats();
    loop {
        std::thread::sleep(Duration::from_millis(5));
        let now = server.egress_stats();
        if now == last {
            return;
        }
        last = now;
    }
}

/// Throughput of the shared filter DU as standing-query count grows.
fn experiment_throughput_vs_queries() {
    println!("F4 — ingest throughput as standing queries accumulate (one stream)\n");
    let mut table = Table::new(&["queries", "tuples", "ingest+process ms", "Ktuples/s"]);
    for n_queries in [1usize, 16, 64, 256] {
        let server = TelegraphCQ::start(ServerConfig::default()).unwrap();
        server.register_stream("sensors", sensor_schema()).unwrap();
        let client = server.connect_pull_client(16).unwrap(); // tiny: we shed, we measure engine cost
        for q in 0..n_queries {
            server
                .submit(
                    &format!(
                        "SELECT ts FROM sensors WHERE temperature > {}.0 AND temperature < {}.0",
                        q,
                        q + 2
                    ),
                    client,
                )
                .unwrap();
        }
        let schema = sensor_schema();
        let n_tuples = 40_000i64;
        let start = Instant::now();
        for ts in 1..=n_tuples {
            let t = TupleBuilder::new(schema.clone())
                .push(ts)
                .push(ts % 16)
                .push((ts % 300) as f64)
                .at(Timestamp::logical(ts))
                .build()
                .unwrap();
            server.push("sensors", t).unwrap();
        }
        settle(&server);
        let ms = start.elapsed().as_millis().max(1);
        table.row(vec![
            n_queries.to_string(),
            n_tuples.to_string(),
            ms.to_string(),
            format!("{:.0}", n_tuples as f64 / ms as f64),
        ]);
        server.shutdown().unwrap();
    }
    table.print();
    println!(
        "\n  shape check: with grouped-filter sharing, throughput degrades only\n\
         \x20 gently with query count — the engine does one shared pass per tuple,\n\
         \x20 not one pass per query.\n"
    );
}

/// Query churn: add/remove queries while the stream flows; the engine keeps
/// serving without restarts (Figure 5's dynamic fold-in).
fn experiment_churn() {
    println!("F5 — query churn under continuous load\n");
    let server = TelegraphCQ::start(ServerConfig::default()).unwrap();
    server.register_stream("sensors", sensor_schema()).unwrap();
    let schema = sensor_schema();
    let client = server.connect_pull_client(1_000_000).unwrap();

    let mut active: Vec<usize> = Vec::new();
    let mut submitted = 0u64;
    let mut removed = 0u64;
    let start = Instant::now();
    for round in 0..50i64 {
        // churn: add 4, remove 2
        for _ in 0..4 {
            let q = server
                .submit("SELECT ts FROM sensors WHERE temperature > 100.0", client)
                .unwrap();
            active.push(q);
            submitted += 1;
        }
        for _ in 0..2 {
            if let Some(q) = active.first().copied() {
                active.remove(0);
                server.stop_query(q).unwrap();
                removed += 1;
            }
        }
        for i in 0..400i64 {
            let ts = round * 400 + i + 1;
            let t = TupleBuilder::new(schema.clone())
                .push(ts)
                .push(0i64)
                .push(150.0)
                .at(Timestamp::logical(ts))
                .build()
                .unwrap();
            server.push("sensors", t).unwrap();
        }
    }
    settle(&server);
    let (delivered, shed) = server.egress_stats();
    println!(
        "  {} queries submitted, {} removed, {} standing at the end",
        submitted,
        removed,
        active.len()
    );
    println!(
        "  {} results delivered ({} shed) in {} ms — no restarts, no stalls",
        delivered,
        shed,
        start.elapsed().as_millis()
    );
    server.shutdown().unwrap();
}

/// Footprint classes: queries over disjoint streams land on different EOs.
fn experiment_classes() {
    println!("\nE11 — footprint classes spread disjoint workloads over EOs\n");
    let server = TelegraphCQ::start(ServerConfig {
        eos: 4,
        ..ServerConfig::default()
    })
    .unwrap();
    for i in 0..4 {
        server
            .register_stream(&format!("stream{i}"), sensor_schema())
            .unwrap();
    }
    let stats = server.executor_stats();
    println!(
        "  4 disjoint streams → DUs per EO: {:?} (each stream's dispatcher+filter\n\
         \x20 pair shares one EO; different streams spread across EOs)",
        stats.dus_per_eo
    );
    server.shutdown().unwrap();
}

fn main() {
    experiment_throughput_vs_queries();
    experiment_churn();
    experiment_classes();
}
