//! Experiment E-recovery (DESIGN.md §5e "Checkpoint & recovery"): durable
//! checkpoint/restore with incremental state shipping.
//!
//! Claims demonstrated:
//!
//! * **Kill → restore loses nothing.** A server running a dedicated join
//!   and a windowed aggregate is killed mid-stream (no shutdown, no
//!   flush) after a checkpoint whose *first* commit attempt fails with an
//!   injected write fault. Restoring from the retried checkpoint and
//!   replaying only the tail yields, per query, exactly the row sequence
//!   of an uninterrupted run — and the restored egress ledger lands on
//!   the same final accounting.
//! * **Checkpoint cost scales with churn, not total state.** After a full
//!   first epoch, each delta epoch writes fragments proportional to the
//!   state groups actually dirtied since the previous cut.
//! * **Flux rejoin ships the delta.** A restarted node restores its local
//!   snapshot and is caught up by shipping only groups dirtied since the
//!   snapshot epoch — `groups_shipped` tracks churn, not node state size.
//!
//! ```text
//! cargo run --release -p tcq-bench --bin exp_recovery [-- --smoke]
//! ```
//!
//! `--smoke` runs the reduced-scale CI variant; the full run also writes
//! machine-readable `BENCH_recovery.json`.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::mpsc::Receiver;
use std::time::Duration;

use tcq_bench::{kv, kv_schema, Table};
use tcq_common::{
    DataType, FaultAction, FaultPlan, FaultPoint, Field, Result, Schema, SchemaRef, Timestamp,
    Tuple, TupleBuilder,
};
use tcq_egress::Delivery;
use tcq_flux::{FluxCluster, FluxConfig};
use tcq_ingress::{Source, SourceFactory, SourceStatus, SupervisorConfig};
use tcq_server::{ServerConfig, TelegraphCQ};

const SEED: u64 = 0x0DD_C0DE;
const DIM_ROWS: i64 = 64;

const JOIN_Q: &str = "SELECT s.v, d.tag FROM s s, d d WHERE s.k = d.id \
     for (t = ST; t >= 0; t++) { WindowIs(s, t - 8000000, t); WindowIs(d, t - 9000000, t); }";
const AGG_Q: &str =
    "SELECT COUNT(*) FROM s for (t = ST; t >= 0; t += 10) { WindowIs(s, t - 9, t); }";

fn hot_schema() -> SchemaRef {
    Schema::new(vec![
        Field::new("k", DataType::Int),
        Field::new("v", DataType::Int),
    ])
    .into_ref()
}

fn dim_schema() -> SchemaRef {
    Schema::new(vec![
        Field::new("id", DataType::Int),
        Field::new("tag", DataType::Int),
    ])
    .into_ref()
}

fn hot_master(n: i64) -> Vec<Tuple> {
    let hot = hot_schema();
    (1..=n)
        .map(|i| {
            TupleBuilder::new(hot.clone())
                .push(i % DIM_ROWS)
                .push(i)
                .at(Timestamp::logical(i))
                .build()
                .unwrap()
        })
        .collect()
}

/// Replays a fixed tuple set; resumable from an offset so the factory can
/// skip already-delivered tuples.
struct ReplaySource {
    schema: SchemaRef,
    tuples: Vec<Tuple>,
    pos: usize,
}

impl Source for ReplaySource {
    fn schema(&self) -> &SchemaRef {
        &self.schema
    }
    fn next_batch(&mut self, max: usize, out: &mut Vec<Tuple>) -> Result<SourceStatus> {
        if self.pos >= self.tuples.len() {
            return Ok(SourceStatus::Exhausted);
        }
        let n = max.min(self.tuples.len() - self.pos);
        out.extend_from_slice(&self.tuples[self.pos..self.pos + n]);
        self.pos += n;
        Ok(SourceStatus::Ready)
    }
}

/// Delivers the first `limit` tuples then stalls (`Idle`, not EOF): a
/// stream that is still open when the server dies.
struct StallSource {
    schema: SchemaRef,
    tuples: Vec<Tuple>,
    pos: usize,
    limit: usize,
}

impl Source for StallSource {
    fn schema(&self) -> &SchemaRef {
        &self.schema
    }
    fn next_batch(&mut self, max: usize, out: &mut Vec<Tuple>) -> Result<SourceStatus> {
        if self.pos >= self.limit {
            return Ok(SourceStatus::Idle);
        }
        let n = max.min(self.limit - self.pos);
        out.extend_from_slice(&self.tuples[self.pos..self.pos + n]);
        self.pos += n;
        Ok(SourceStatus::Ready)
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tcq-exp-recovery-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Per-query result rows (all columns, as ints) in delivery order.
fn rows_by_query(rx: &Receiver<Delivery>) -> BTreeMap<usize, Vec<Vec<i64>>> {
    let mut map: BTreeMap<usize, Vec<Vec<i64>>> = BTreeMap::new();
    for (qid, t) in rx.try_iter() {
        map.entry(qid)
            .or_default()
            .push(t.values().iter().map(|v| v.as_int().unwrap()).collect());
    }
    map
}

/// Registers both streams, submits the join + aggregate pair, and
/// loads-then-closes the dimension stream. `feed_dim` is false on the
/// restore path: the d-side SteM content comes from the checkpoint.
fn boot_topology(server: &TelegraphCQ, feed_dim: bool) -> (usize, usize, Receiver<Delivery>) {
    server.register_stream("s", hot_schema()).unwrap();
    server.register_stream("d", dim_schema()).unwrap();
    let (client, rx): (_, Receiver<Delivery>) = server.connect_push_client(1 << 17).unwrap();
    let join_q = server.submit(JOIN_Q, client).unwrap();
    let agg_q = server.submit(AGG_Q, client).unwrap();
    if feed_dim {
        let dims = dim_schema();
        let batch: Vec<Tuple> = (0..DIM_ROWS)
            .map(|id| {
                TupleBuilder::new(dims.clone())
                    .push(id)
                    .push(id * 10)
                    .at(Timestamp::logical(id + 1))
                    .build()
                    .unwrap()
            })
            .collect();
        server.push_batch("d", batch).unwrap();
        while server.stream_time("d").unwrap() < DIM_ROWS {
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    server.finish_stream("d").unwrap();
    std::thread::sleep(Duration::from_millis(50));
    (join_q, agg_q, rx)
}

fn replay_factory(master: &[Tuple]) -> SourceFactory {
    let master = master.to_vec();
    let schema = hot_schema();
    Box::new(move |_attempt, delivered| {
        Ok(Box::new(ReplaySource {
            schema: schema.clone(),
            tuples: master[delivered as usize..].to_vec(),
            pos: 0,
        }) as Box<dyn Source>)
    })
}

struct CrashRestoreOutcome {
    n: i64,
    half: usize,
    rows_a_join: usize,
    rows_a_agg: usize,
    rows_b_join: usize,
    rows_b_agg: usize,
    ref_join: usize,
    ref_agg: usize,
    commit_faults: u64,
    recovered_epochs: u64,
    recovered_fragments: u64,
    restore_ms: f64,
    ckpt_fragments: u64,
    ckpt_bytes: u64,
    ledger_delivered: u64,
    zero_loss: bool,
}

fn experiment_crash_restore(n: i64) -> CrashRestoreOutcome {
    // Not a window multiple: the aggregate's open buffer spans the cut.
    let half = (n / 2 + 5) as usize;
    println!(
        "E-recovery-a — kill → restore ({n} tuples, killed at {half}): a dedicated\n\
         join + a windowed aggregate, checkpointed under an injected commit fault,\n\
         then the process dies with the stream still open\n"
    );
    let dir = temp_dir("crash");
    let ckpt = dir.join("server.tcqk");
    let master = hot_master(n);

    // Reference: same topology, uninterrupted, no checkpointing.
    let (ref_rows, ref_egress) = {
        let server = TelegraphCQ::start(ServerConfig::default()).unwrap();
        let (_, _, rx) = boot_topology(&server, true);
        server
            .attach_supervised_source("s", replay_factory(&master), SupervisorConfig::default())
            .unwrap();
        assert!(server.quiesce(Duration::from_secs(120)));
        let rows = rows_by_query(&rx);
        let egress = server.egress_stats_full();
        server.shutdown().unwrap();
        (rows, egress)
    };

    // Phase A: run to the stall point, checkpoint (first commit attempt
    // fails with the injected fault; the pending delta survives for the
    // retry), then die without shutdown.
    let fault_plan = FaultPlan::new(SEED).at(
        FaultPoint::CheckpointWrite,
        1,
        FaultAction::Error("disk full".into()),
    );
    let (rows_a, commit_faults, ckpt_report) = {
        let server = TelegraphCQ::start(ServerConfig {
            checkpoint_path: Some(ckpt.clone()),
            fault_plan: Some(fault_plan),
            ..ServerConfig::default()
        })
        .unwrap();
        let (_, _, rx) = boot_topology(&server, true);
        let factory: SourceFactory = {
            let master = master.clone();
            let schema = hot_schema();
            Box::new(move |_attempt, _delivered| {
                Ok(Box::new(StallSource {
                    schema: schema.clone(),
                    tuples: master.clone(),
                    pos: 0,
                    limit: half,
                }) as Box<dyn Source>)
            })
        };
        server
            .attach_supervised_source("s", factory, SupervisorConfig::default())
            .unwrap();
        while (server.supervisor_stats()[0].1.delivered as usize) < half
            || (server.stream_time("s").unwrap() as usize) < half
        {
            std::thread::sleep(Duration::from_millis(2));
        }
        std::thread::sleep(Duration::from_millis(300));
        assert!(
            server.checkpoint().is_err(),
            "the injected fault must fail the first commit"
        );
        let report = server.checkpoint().expect("the retry must succeed");
        let commit_faults = server.checkpoint_stats().unwrap().commit_faults;
        let rows = rows_by_query(&rx);
        // Crash: leak the whole server — threads never hear from us again.
        std::mem::forget(server);
        (rows, commit_faults, report)
    };

    // Phase B: restore and replay only the tail.
    let start = std::time::Instant::now();
    let server = TelegraphCQ::restore(ServerConfig {
        checkpoint_path: Some(ckpt.clone()),
        ..ServerConfig::default()
    })
    .unwrap();
    let (join_q, agg_q, rx) = boot_topology(&server, false);
    let restore_ms = start.elapsed().as_secs_f64() * 1e3;
    let recovery = server.checkpoint_recovery().unwrap();
    server
        .attach_supervised_source("s", replay_factory(&master), SupervisorConfig::default())
        .unwrap();
    assert!(server.quiesce(Duration::from_secs(120)));
    let sup = server.supervisor_stats().remove(0).1;
    let rows_b = rows_by_query(&rx);
    let egress = server.egress_stats_full();
    server.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&dir);

    assert_eq!(sup.delivered, n as u64, "cumulative watermark");
    assert_eq!(sup.restarts, 0);
    let mut zero_loss = true;
    for qid in [join_q, agg_q] {
        let mut combined = rows_a.get(&qid).cloned().unwrap_or_default();
        combined.extend(rows_b.get(&qid).cloned().unwrap_or_default());
        zero_loss &= combined == ref_rows[&qid];
        assert_eq!(
            combined, ref_rows[&qid],
            "q{qid}: A+B rows diverged from the uninterrupted run"
        );
    }
    assert_eq!(egress.delivered, ref_egress.delivered, "ledger drifted");
    assert!(egress.accounted());

    let empty: Vec<Vec<i64>> = Vec::new();
    let o = CrashRestoreOutcome {
        n,
        half,
        rows_a_join: rows_a.get(&join_q).unwrap_or(&empty).len(),
        rows_a_agg: rows_a.get(&agg_q).unwrap_or(&empty).len(),
        rows_b_join: rows_b.get(&join_q).unwrap_or(&empty).len(),
        rows_b_agg: rows_b.get(&agg_q).unwrap_or(&empty).len(),
        ref_join: ref_rows[&join_q].len(),
        ref_agg: ref_rows[&agg_q].len(),
        commit_faults,
        recovered_epochs: recovery.epochs_recovered,
        recovered_fragments: recovery.fragments_recovered,
        restore_ms,
        ckpt_fragments: ckpt_report.fragments,
        ckpt_bytes: ckpt_report.bytes,
        ledger_delivered: egress.delivered,
        zero_loss,
    };
    let mut table = Table::new(&["run", "join rows", "agg rows", "ledger delivered"]);
    table.row(vec![
        "uninterrupted".into(),
        o.ref_join.to_string(),
        o.ref_agg.to_string(),
        ref_egress.delivered.to_string(),
    ]);
    table.row(vec![
        "pre-crash (A)".into(),
        o.rows_a_join.to_string(),
        o.rows_a_agg.to_string(),
        "-".into(),
    ]);
    table.row(vec![
        "restored (B)".into(),
        o.rows_b_join.to_string(),
        o.rows_b_agg.to_string(),
        "-".into(),
    ]);
    table.row(vec![
        "A + B".into(),
        (o.rows_a_join + o.rows_b_join).to_string(),
        (o.rows_a_agg + o.rows_b_agg).to_string(),
        o.ledger_delivered.to_string(),
    ]);
    table.print();
    println!(
        "\n  shape check: per query, A+B is exactly the uninterrupted row sequence\n\
         \x20 (the aggregate window open across the cut closes with the right count),\n\
         \x20 the first commit's injected failure cost one retry ({} fault), and the\n\
         \x20 restored server recovered {} epochs / {} fragments in {:.1} ms.\n",
        o.commit_faults, o.recovered_epochs, o.recovered_fragments, o.restore_ms
    );
    o
}

struct DeltaRow {
    churn: usize,
    fragments: u64,
    bytes: u64,
    ms: f64,
}

fn experiment_delta_checkpoints(groups: usize, churns: &[usize]) -> (u64, u64, Vec<DeltaRow>) {
    println!(
        "E-recovery-b — incremental checkpoints ({groups} state groups): after the\n\
         full first epoch, each delta writes only the groups dirtied since the cut\n"
    );
    let server = TelegraphCQ::start(ServerConfig {
        checkpoint_path: Some(temp_dir("delta").join("server.tcqk")),
        ..ServerConfig::default()
    })
    .unwrap();
    server.register_stream("s", hot_schema()).unwrap();
    server.register_stream("d", dim_schema()).unwrap();
    let (client, _rx): (_, Receiver<Delivery>) = server.connect_push_client(1 << 17).unwrap();
    // Keys never match d's single row: the join builds an s-side SteM of
    // `groups` groups without producing egress traffic.
    server.submit(JOIN_Q, client).unwrap();
    let dims = dim_schema();
    server
        .push_batch(
            "d",
            vec![TupleBuilder::new(dims.clone())
                .push(-1i64)
                .push(0i64)
                .at(Timestamp::logical(1))
                .build()
                .unwrap()],
        )
        .unwrap();

    let hot = hot_schema();
    let mut ts = 0i64;
    let mut feed = |server: &TelegraphCQ, keys: std::ops::Range<usize>| {
        let batch: Vec<Tuple> = keys
            .map(|k| {
                ts += 1;
                TupleBuilder::new(hot.clone())
                    .push(k as i64 + 1)
                    .push(ts)
                    .at(Timestamp::logical(ts))
                    .build()
                    .unwrap()
            })
            .collect();
        let want = ts;
        server.push_batch("s", batch).unwrap();
        while server.stream_time("s").unwrap() < want {
            std::thread::sleep(Duration::from_millis(1));
        }
        std::thread::sleep(Duration::from_millis(20));
    };

    feed(&server, 0..groups);
    let start = std::time::Instant::now();
    let full = server.checkpoint().unwrap();
    let full_ms = start.elapsed().as_secs_f64() * 1e3;
    assert!(
        full.fragments as usize >= groups,
        "the first epoch snapshots every group"
    );

    let mut table = Table::new(&["epoch", "dirtied groups", "fragments", "bytes", "ms"]);
    table.row(vec![
        "full (first)".into(),
        groups.to_string(),
        full.fragments.to_string(),
        full.bytes.to_string(),
        format!("{full_ms:.1}"),
    ]);
    let mut rows = Vec::new();
    for &churn in churns {
        feed(&server, 0..churn);
        let start = std::time::Instant::now();
        let delta = server.checkpoint().unwrap();
        let ms = start.elapsed().as_secs_f64() * 1e3;
        // churn SteM groups + bookkeeping (egress ledger, stream clocks).
        assert!(
            delta.fragments as usize <= churn + 8,
            "delta epoch wrote {} fragments for {churn} dirtied groups",
            delta.fragments
        );
        table.row(vec![
            "delta".into(),
            churn.to_string(),
            delta.fragments.to_string(),
            delta.bytes.to_string(),
            format!("{ms:.1}"),
        ]);
        rows.push(DeltaRow {
            churn,
            fragments: delta.fragments,
            bytes: delta.bytes,
            ms,
        });
    }
    server.shutdown().unwrap();
    table.print();
    println!(
        "\n  shape check: delta fragments track the churn, not the {groups}-group\n\
         \x20 total — an idle-ish epoch costs bookkeeping only.\n"
    );
    (full.fragments, full.bytes, rows)
}

struct RejoinRow {
    churn: usize,
    groups_shipped: u64,
    bytes_shipped: u64,
    node_groups: u64,
}

fn experiment_flux_rejoin(keys: usize, churns: &[usize]) -> Vec<RejoinRow> {
    println!(
        "E-recovery-c — Flux rejoin ships the delta ({keys} group keys, 2 nodes,\n\
         process pairs): checkpoint, kill a node, churn, restart it. With no spare\n\
         node the partitions stay degraded until the rejoin, whose catch-up traffic\n\
         is the groups dirtied since the snapshot epoch — not the node's state\n"
    );
    let schema = kv_schema("S");
    let mut table = Table::new(&[
        "churned groups",
        "snapshot epoch",
        "groups shipped",
        "bytes shipped",
        "node groups",
        "fully replicated",
    ]);
    let mut rows = Vec::new();
    for &churn in churns {
        let mut cfg = FluxConfig::uniform(2).with_replication();
        cfg.partitions = 16;
        let mut cluster = FluxCluster::new(cfg, 0, 1).unwrap();
        let mut ts = 0i64;
        let mut ingest = |cluster: &mut FluxCluster, keys: usize| {
            for k in 0..keys {
                ts += 1;
                cluster.ingest(&kv(&schema, k as i64, 1, ts)).unwrap();
                if ts % 16 == 0 {
                    cluster.tick();
                }
            }
            cluster.run_until_drained(1_000_000);
        };
        ingest(&mut cluster, keys);
        let ckpt = cluster.checkpoint();
        assert!(
            ckpt.groups_copied as usize >= keys,
            "first epoch copies every group"
        );
        cluster.kill_node(0).unwrap();
        ingest(&mut cluster, churn);
        let report = cluster.restart_node(0).unwrap();
        cluster.run_until_drained(1_000_000);
        assert_eq!(report.snapshot_epoch, ckpt.epoch);
        // Every churned key already existed, so the rejoin ships exactly
        // the churned groups — the rest restores from the local snapshot.
        assert_eq!(report.groups_shipped as usize, churn);
        let total: u64 = cluster.results().values().map(|(c, _)| c).sum();
        assert_eq!(
            total,
            (keys + churn) as u64,
            "process pairs lose nothing across the kill"
        );
        assert!(cluster.fully_replicated());
        table.row(vec![
            churn.to_string(),
            report.snapshot_epoch.to_string(),
            report.groups_shipped.to_string(),
            report.bytes_shipped.to_string(),
            keys.to_string(),
            cluster.fully_replicated().to_string(),
        ]);
        rows.push(RejoinRow {
            churn,
            groups_shipped: report.groups_shipped,
            bytes_shipped: report.bytes_shipped,
            node_groups: keys as u64,
        });
    }
    assert!(
        rows.first().unwrap().groups_shipped < rows.last().unwrap().groups_shipped,
        "rejoin traffic must grow with churn"
    );
    table.print();
    println!(
        "\n  shape check: groups shipped equal the churn since the snapshot,\n\
         \x20 staying far under the node's total state for small deltas — bounded-\n\
         \x20 time recovery comes from shipping what moved, not what exists.\n"
    );
    rows
}

fn write_json(
    path: &str,
    crash: &CrashRestoreOutcome,
    full: (u64, u64),
    deltas: &[DeltaRow],
    rejoins: &[RejoinRow],
) {
    let delta_entries: Vec<String> = deltas
        .iter()
        .map(|d| {
            format!(
                "    {{\"churn\": {}, \"fragments\": {}, \"bytes\": {}, \"ms\": {:.2}}}",
                d.churn, d.fragments, d.bytes, d.ms
            )
        })
        .collect();
    let rejoin_entries: Vec<String> = rejoins
        .iter()
        .map(|r| {
            format!(
                "    {{\"churn\": {}, \"groups_shipped\": {}, \"bytes_shipped\": {}, \
                 \"node_groups\": {}}}",
                r.churn, r.groups_shipped, r.bytes_shipped, r.node_groups
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"recovery\",\n  \"crash_restore\": {{\n    \
         \"tuples\": {}, \"killed_at\": {}, \"zero_loss\": {}, \"commit_faults\": {},\n    \
         \"join_rows_a_b_ref\": [{}, {}, {}], \"agg_rows_a_b_ref\": [{}, {}, {}],\n    \
         \"recovered_epochs\": {}, \"recovered_fragments\": {}, \"restore_ms\": {:.2},\n    \
         \"last_delta_fragments\": {}, \"last_delta_bytes\": {}, \"ledger_delivered\": {}\n  }},\n  \
         \"delta_checkpoints\": {{\n    \"full_fragments\": {}, \"full_bytes\": {},\n    \
         \"deltas\": [\n{}\n    ]\n  }},\n  \
         \"flux_rejoin\": [\n{}\n  ]\n}}\n",
        crash.n,
        crash.half,
        crash.zero_loss,
        crash.commit_faults,
        crash.rows_a_join,
        crash.rows_b_join,
        crash.ref_join,
        crash.rows_a_agg,
        crash.rows_b_agg,
        crash.ref_agg,
        crash.recovered_epochs,
        crash.recovered_fragments,
        crash.restore_ms,
        crash.ckpt_fragments,
        crash.ckpt_bytes,
        crash.ledger_delivered,
        full.0,
        full.1,
        delta_entries.join(",\n"),
        rejoin_entries.join(",\n"),
    );
    std::fs::write(path, json).unwrap();
    println!("  wrote {path}");
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let crash = if smoke {
        experiment_crash_restore(2_000)
    } else {
        experiment_crash_restore(12_000)
    };
    let (full, deltas) = {
        let (f, b, rows) = if smoke {
            experiment_delta_checkpoints(2_048, &[16, 256, 2_048])
        } else {
            experiment_delta_checkpoints(16_384, &[64, 1_024, 16_384])
        };
        ((f, b), rows)
    };
    let rejoins = if smoke {
        experiment_flux_rejoin(1_024, &[16, 128, 1_024])
    } else {
        experiment_flux_rejoin(8_192, &[64, 1_024, 8_192])
    };
    if !smoke {
        write_json("BENCH_recovery.json", &crash, full, &deltas, &rejoins);
    }
}
