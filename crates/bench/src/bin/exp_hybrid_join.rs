//! Experiment E6 (DESIGN.md): join hybridization with eddies and SteMs,
//! reproducing the shape of Raman et al. \[RDH02\] (paper §2.2):
//!
//! > "the Eddy can essentially run both query plans at the same time …
//! > the Eddy and SteMs dynamically design a hybrid join algorithm."
//!
//! A stream S joins table T, which is available BOTH as a local SteM build
//! (hash join: cheap per probe after paying to build) and as a remote
//! index (index join: no build, but each lookup pays the remote latency).
//! We sweep the remote latency and compare three fixed strategies against
//! the competitive eddy that chooses per tuple.
//!
//! ```text
//! cargo run --release -p tcq-bench --bin exp_hybrid_join
//! ```

use std::time::Duration;

use tcq_bench::{kv, kv_schema, timed, Table};
use tcq_common::rng::seeded;
use tcq_common::Tuple;
use tcq_eddy::{Eddy, EddyConfig, FixedPolicy, GreedyPolicy, ModuleSpec, RoutingPolicy};
use tcq_operators::{RemoteIndex, RemoteIndexOp, StemOp};
use tcq_stems::IndexKind;

const N_S: usize = 3_000;
const N_T: i64 = 1_000;

fn t_rows() -> Vec<Tuple> {
    let schema = kv_schema("T");
    (0..N_T).map(|k| kv(&schema, k, k * 10, k + 1)).collect()
}

fn s_rows() -> Vec<Tuple> {
    let schema = kv_schema("S");
    let mut rng = seeded(53);
    (0..N_S)
        .map(|i| kv(&schema, rng.gen_range(0..N_T), 0, i as i64 + 1))
        .collect()
}

/// Build an eddy holding SteM_T (probed by S) and/or the remote index on T.
/// Policy decides which access method each S tuple uses when both exist.
fn build_eddy(
    policy: Box<dyn RoutingPolicy>,
    with_stem: bool,
    with_index: bool,
    latency: Duration,
) -> Eddy {
    let mut eddy = Eddy::new(&["S", "T"], policy, EddyConfig::default()).unwrap();
    let (sb, tb) = (eddy.source_bit("S").unwrap(), eddy.source_bit("T").unwrap());
    if with_stem {
        let stem_t = StemOp::new(
            "SteM(T)",
            kv_schema("T"),
            "T",
            0,
            (Some("S".into()), "k".into()),
            IndexKind::Hash,
        )
        .unwrap();
        eddy.add_module(ModuleSpec::stem(Box::new(stem_t), tb, sb))
            .unwrap();
    }
    if with_index {
        let index = RemoteIndex::new(kv_schema("T"), 0, t_rows(), latency);
        let op = RemoteIndexOp::new("idx(T)", index, (Some("S".into()), "k".into()));
        // An access method on T: probed by S tuples, never "stores".
        eddy.add_module(ModuleSpec {
            module: Box::new(op),
            required_all: 0,
            required_any: sb,
            excluded: tb,
            build_exact: None,
        })
        .unwrap();
    }
    eddy
}

fn run(mut eddy: Eddy, feed_t: bool) -> (u64, u64) {
    // Hash-join variants must ingest T's rows (builds); index variants get
    // T through the remote index only.
    let t = t_rows();
    let s = s_rows();
    let (emitted, us) = timed(|| {
        let mut emitted = 0usize;
        if feed_t {
            for row in &t {
                emitted += eddy.process(row.clone()).unwrap().len();
            }
        }
        for row in &s {
            emitted += eddy.process(row.clone()).unwrap().len();
        }
        emitted
    });
    assert_eq!(
        emitted as i64, N_S as i64,
        "every S row has exactly one T match"
    );
    (us, eddy.stats().visits)
}

fn main() {
    println!(
        "E6 — hybridized join: S ({N_S} rows) ⋈ T ({N_T} rows); T reachable as a\n\
         local SteM (hash join) or a remote index (latency swept)\n"
    );
    let mut table = Table::new(&[
        "remote latency",
        "hash join us",
        "index join us",
        "hybrid eddy us",
    ]);
    for micros in [0u64, 5, 50, 500] {
        let latency = Duration::from_micros(micros);
        let (hash_us, _) = run(
            build_eddy(Box::new(FixedPolicy::new(vec![0])), true, false, latency),
            true,
        );
        let (index_us, _) = run(
            build_eddy(Box::new(FixedPolicy::new(vec![0])), false, true, latency),
            false,
        );
        // Hybrid: both methods registered; the greedy policy (which ranks
        // by observed selectivity-per-cost, tie-broken by cost) learns
        // which access method wins at this latency. T rows are fed so the
        // SteM option exists.
        let (hybrid_us, _) = run(
            build_eddy(Box::new(GreedyPolicy::new()), true, true, latency),
            true,
        );
        table.row(vec![
            format!("{micros} us"),
            hash_us.to_string(),
            index_us.to_string(),
            hybrid_us.to_string(),
        ]);
    }
    table.print();
    println!(
        "\n  shape check ([RDH02] §6 analogue): at zero latency the index join wins\n\
         \x20 (no build cost); as latency grows the hash join wins; the competitive\n\
         \x20 eddy tracks whichever is better without being told the latency —\n\
         \x20 the crossover is discovered, not configured.\n"
    );
}
