//! Experiment E-throughput (DESIGN.md "Batched dataflow"): end-to-end
//! throughput and latency of the single-stream select-project-join
//! pipeline — push client → ingress Fjord → dispatcher → dedicated eddy
//! join → egress push delivery — across the hot-path batch knob
//! `K ∈ {1, 8, 64, 256}` (`ServerConfig::io_batch` + `eddy_batch`).
//!
//! Claims demonstrated:
//!
//! * moving K messages per Fjord lock acquisition and making one routing
//!   decision per (signature, batch) raises sustained tuples/sec well
//!   above the per-tuple (K=1) baseline — the §4.3 "batching tuples"
//!   knob, now amortized through every layer;
//! * every admitted tuple is still delivered exactly once (the ledger
//!   balances at every K);
//! * the run emits machine-readable `BENCH_throughput.json`, seeding the
//!   perf trajectory the ROADMAP commits every PR to extend.
//!
//! ```text
//! cargo run --release -p tcq-bench --bin exp_throughput [-- --smoke] [-- --interpreted]
//! ```
//!
//! `--smoke` runs a reduced workload at K ∈ {1, 64} only and exits
//! non-zero if K=64 throughput falls below K=1 — the coarse
//! perf-regression tripwire `scripts/ci.sh` relies on.
//!
//! `--interpreted` runs the whole sweep with
//! `ServerConfig::compiled_kernels` off (tree-walking predicates,
//! per-site key hashing) and `--columnar` runs it with
//! `ServerConfig::columnar` on (vectorized `ColumnBatch` kernels), so
//! the batching curve can be A/B'd under any evaluation engine; results
//! are byte-identical either way (the chaos suite pins this), and the
//! committed `BENCH_throughput.json` trajectory is only refreshed by
//! default (compiled, row-path) full runs — the `"columnar"` field in
//! the JSON records which engine produced it. The
//! allocs-per-tuple budget is measured by `exp_kernels`, not here: its
//! counting-allocator harness makes every allocation call opaque to the
//! optimizer and costs ~20% throughput, so it is confined to the A/B
//! experiment where both configurations pay it equally.

use std::sync::mpsc::Receiver;
use std::time::{Duration, Instant};

use tcq_bench::Table;
use tcq_common::{DataType, Field, Schema, SchemaRef, Timestamp, Tuple, TupleBuilder};
use tcq_egress::Delivery;
use tcq_server::{ServerConfig, TelegraphCQ};

/// Rows in the small build-side dimension stream. Every hot tuple's key
/// hits exactly one of them, so the join emits exactly one output per
/// hot-stream tuple — delivered count equals offered count by design.
const DIM_ROWS: i64 = 64;

fn dim_schema() -> SchemaRef {
    Schema::new(vec![
        Field::new("id", DataType::Int),
        Field::new("tag", DataType::Int),
    ])
    .into_ref()
}

fn hot_schema() -> SchemaRef {
    Schema::new(vec![
        Field::new("k", DataType::Int),
        Field::new("v", DataType::Int),
    ])
    .into_ref()
}

struct KOutcome {
    k: usize,
    tuples_per_sec: f64,
    p50_us: u64,
    p99_us: u64,
    delivered: usize,
    offered: usize,
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// One full pipeline run at batch size `k`: `n` hot tuples joined against
/// the pre-loaded dimension stream, timed from first push to last
/// delivery. Per-tuple latency rides inside the tuple itself: `v` carries
/// the send instant as micros-since-epoch (+1 so the `v > 0` select
/// factor always passes), and the receiver subtracts on arrival.
fn run_pipeline(k: usize, n: usize, compiled_kernels: bool, columnar: bool) -> KOutcome {
    let server = TelegraphCQ::start(ServerConfig {
        io_batch: k,
        eddy_batch: k,
        compiled_kernels,
        columnar,
        ..ServerConfig::default()
    })
    .unwrap();
    server.register_stream("s", hot_schema()).unwrap();
    server.register_stream("dim", dim_schema()).unwrap();

    let (client, rx): (_, Receiver<Delivery>) = server.connect_push_client(n + 1024).unwrap();
    // Unequal window widths keep this join out of the CACQ shared-SteM
    // plan, so it runs on a dedicated eddy — the batched JoinCqDu path.
    server
        .submit(
            "SELECT s.v, d.tag FROM s s, dim d \
             WHERE s.k = d.id AND s.v > 0 \
             for (t = ST; t >= 0; t++) { WindowIs(s, t - 8000000, t); WindowIs(d, t - 9000000, t); }",
            client,
        )
        .unwrap();

    // Load the build side and wait for the dispatcher to absorb it before
    // the clock starts, so the timed region is pure hot-stream flow.
    let dims = dim_schema();
    let dim_batch: Vec<Tuple> = (0..DIM_ROWS)
        .map(|id| {
            TupleBuilder::new(dims.clone())
                .push(id)
                .push(id * 10)
                .at(Timestamp::logical(id + 1))
                .build()
                .unwrap()
        })
        .collect();
    server.push_batch("dim", dim_batch).unwrap();
    while server.stream_time("dim").unwrap() < DIM_ROWS {
        std::thread::sleep(Duration::from_millis(1));
    }
    std::thread::sleep(Duration::from_millis(20));

    let epoch = Instant::now();
    let reaper = std::thread::spawn(move || {
        let mut latencies = Vec::with_capacity(n);
        let deadline = Instant::now() + Duration::from_secs(120);
        // Drain in bursts rather than one blocking recv per tuple: on a
        // single-core box a per-delivery wakeup costs a context switch,
        // which would bill reaper overhead to the server's throughput.
        while latencies.len() < n && Instant::now() < deadline {
            let before = latencies.len();
            for (_q, t) in rx.try_iter() {
                let sent_us = t.value(0).as_int().unwrap() - 1;
                let now_us = epoch.elapsed().as_micros() as i64;
                latencies.push((now_us - sent_us).max(0) as u64);
                if latencies.len() >= n {
                    break;
                }
            }
            if latencies.len() == before {
                std::thread::sleep(Duration::from_micros(200));
            }
        }
        (latencies, Instant::now())
    });

    let hot = hot_schema();
    let start = Instant::now();
    let mut pushed = 0usize;
    while pushed < n {
        let m = k.min(n - pushed);
        let mut chunk = Vec::with_capacity(m);
        for j in 0..m {
            let idx = (pushed + j) as i64;
            let sent_us = epoch.elapsed().as_micros() as i64 + 1;
            chunk.push(
                TupleBuilder::new(hot.clone())
                    .push(idx % DIM_ROWS)
                    .push(sent_us)
                    .at(Timestamp::logical(DIM_ROWS + idx + 1))
                    .build()
                    .unwrap(),
            );
        }
        server.push_batch("s", chunk).unwrap();
        pushed += m;
    }

    let (mut latencies, finished) = reaper.join().unwrap();
    let elapsed = finished.duration_since(start).as_secs_f64().max(1e-9);
    let delivered = latencies.len();
    latencies.sort_unstable();
    server.shutdown().unwrap();

    KOutcome {
        k,
        tuples_per_sec: delivered as f64 / elapsed,
        p50_us: percentile(&latencies, 0.50),
        p99_us: percentile(&latencies, 0.99),
        delivered,
        offered: n,
    }
}

fn write_json(path: &str, n: usize, outcomes: &[KOutcome], speedup: f64, columnar: bool) {
    let mut entries = Vec::new();
    for o in outcomes {
        entries.push(format!(
            "    {{\"k\": {}, \"tuples_per_sec\": {:.1}, \"p50_us\": {}, \"p99_us\": {}, \
             \"delivered\": {}, \"offered\": {}}}",
            o.k, o.tuples_per_sec, o.p50_us, o.p99_us, o.delivered, o.offered
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"throughput\",\n  \"pipeline\": \
         \"single-stream select-project-join (push -> fjord -> dispatcher -> eddy join -> egress)\",\n  \
         \"compiled_kernels\": true,\n  \"columnar\": {},\n  \
         \"tuples\": {},\n  \"results\": [\n{}\n  ],\n  \"speedup_k64_vs_k1\": {:.2}\n}}\n",
        columnar,
        n,
        entries.join(",\n"),
        speedup
    );
    std::fs::write(path, json).unwrap();
    println!("  wrote {path}");
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let compiled = !std::env::args().any(|a| a == "--interpreted");
    let columnar = std::env::args().any(|a| a == "--columnar");
    // Best-of-`runs` per K: on a busy (or single-core) box a single pass
    // is at the mercy of scheduler luck; the max over a few passes is the
    // stable measure of what the configuration can sustain.
    let (n, runs, ks): (usize, usize, &[usize]) = if smoke {
        (8_000, 1, &[1, 64])
    } else {
        (200_000, 3, &[1, 8, 64, 256])
    };
    println!(
        "E-throughput — batched hot path, single-stream select-project-join\n\
         ({n} tuples per run, K = fjord io_batch = eddy batch_size, {}{} evaluation)\n",
        if compiled { "compiled" } else { "interpreted" },
        if columnar { " columnar" } else { "" }
    );

    let mut table = Table::new(&[
        "K",
        "tuples/sec",
        "p50 latency (us)",
        "p99 latency (us)",
        "delivered",
        "offered",
    ]);
    let mut outcomes = Vec::new();
    for &k in ks {
        let mut o = run_pipeline(k, n, compiled, columnar);
        for _ in 1..runs {
            let again = run_pipeline(k, n, compiled, columnar);
            if again.tuples_per_sec > o.tuples_per_sec {
                o = again;
            }
        }
        assert_eq!(
            o.delivered, o.offered,
            "every admitted tuple must be delivered at K={k}"
        );
        table.row(vec![
            o.k.to_string(),
            format!("{:.0}", o.tuples_per_sec),
            o.p50_us.to_string(),
            o.p99_us.to_string(),
            o.delivered.to_string(),
            o.offered.to_string(),
        ]);
        outcomes.push(o);
    }
    table.print();

    let base = outcomes.iter().find(|o| o.k == 1).unwrap().tuples_per_sec;
    let batched = outcomes.iter().find(|o| o.k == 64).unwrap().tuples_per_sec;
    let speedup = batched / base;
    println!("\n  speedup K=64 vs K=1: {speedup:.2}x");
    // Smoke passes are a pass/fail tripwire at reduced scale; only the
    // default-engine full sweep refreshes the committed perf trajectory
    // (interpreted/columnar runs are for ad-hoc A/B comparison — the
    // columnar-vs-row comparison lives in exp_kernels).
    if !smoke && compiled && !columnar {
        write_json("BENCH_throughput.json", n, &outcomes, speedup, columnar);
    }

    if speedup < 1.0 {
        eprintln!("FAIL: K=64 throughput ({batched:.0}/s) below K=1 ({base:.0}/s)");
        std::process::exit(1);
    }
    println!(
        "\n  shape check: batching the hot path never loses a tuple, and the\n\
         \x20 amortized (K=64) configuration out-runs per-tuple dispatch.\n"
    );
}
