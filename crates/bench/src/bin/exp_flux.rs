//! Experiment E7 (DESIGN.md): Flux load balancing and failover, reproducing
//! the shape of Shah et al. \[SHCF03\] (paper §2.4).
//!
//! * Load balancing: a partitioned group-by on a 4-node simulated cluster
//!   with one straggler node. Online repartitioning moves partitions off
//!   the slow machine; the metric is ticks-to-drain (≈ makespan).
//! * Fault tolerance: kill a node mid-run, with and without process-pair
//!   replication; the metric is tuples lost and whether answers survive.
//!
//! ```text
//! cargo run --release -p tcq-bench --bin exp_flux
//! ```

use tcq_bench::{kv, kv_schema, Table};
use tcq_flux::{FluxCluster, FluxConfig};

const TUPLES: i64 = 60_000;
const KEYS: i64 = 503;

fn workload() -> Vec<tcq_common::Tuple> {
    let schema = kv_schema("S");
    (0..TUPLES)
        .map(|i| kv(&schema, (i * 31 + 7) % KEYS, 1, i + 1))
        .collect()
}

fn experiment_load_balancing() {
    println!(
        "E7a — online repartitioning: 4 nodes, speeds [1, 8, 8, 8] (one straggler),\n\
         {TUPLES} tuples of a {KEYS}-key group-by\n"
    );
    let rows = workload();
    let mut table = Table::new(&[
        "configuration",
        "drain ticks",
        "moved",
        "max node share",
        "answers ok",
    ]);
    for (label, rebalance) in [
        ("static Exchange (no rebalancing)", 0u64),
        ("Flux, rebalance every 64 ticks", 64),
        ("Flux, rebalance every 8 ticks", 8),
    ] {
        let cfg = FluxConfig::uniform(4)
            .with_speeds(vec![1, 8, 8, 8])
            .with_rebalancing(rebalance);
        let mut cluster = FluxCluster::new(cfg, 0, 1).unwrap();
        for t in &rows {
            cluster.ingest(t).unwrap();
        }
        let ticks = cluster.run_until_drained(10_000_000);
        let stats = cluster.stats();
        let processed: Vec<u64> = cluster.node_stats().iter().map(|n| n.processed).collect();
        let total: u64 = processed.iter().sum();
        let max_share = *processed.iter().max().unwrap() as f64 / total as f64;
        let counts: u64 = cluster.results().values().map(|(c, _)| c).sum();
        table.row(vec![
            label.to_string(),
            ticks.to_string(),
            stats.partitions_moved.to_string(),
            format!("{:.0}%", max_share * 100.0),
            (counts == TUPLES as u64).to_string(),
        ]);
    }
    table.print();
    println!(
        "\n  shape check ([SHCF03] Fig. 7 analogue): without repartitioning the\n\
         \x20 straggler gates the drain (it owns 1/4 of partitions at 1/8 speed);\n\
         \x20 Flux moves its partitions to fast nodes and cuts makespan several-fold,\n\
         \x20 at the price of a few state movements. Answers are identical.\n"
    );
}

fn experiment_failover() {
    println!("E7b — failover: kill node 2 mid-run, with and without replication\n");
    let rows = workload();
    let mut table = Table::new(&[
        "configuration",
        "failovers",
        "lost tuples",
        "final count",
        "expected",
    ]);
    for (label, replicated) in [("no replicas", false), ("process pairs", true)] {
        let cfg = if replicated {
            FluxConfig::uniform(4).with_replication()
        } else {
            FluxConfig::uniform(4)
        };
        let mut cluster = FluxCluster::new(cfg, 0, 1).unwrap();
        for (i, t) in rows.iter().enumerate() {
            cluster.ingest(t).unwrap();
            if i % 16 == 0 {
                cluster.tick();
            }
            if i == rows.len() / 2 {
                cluster.kill_node(2).unwrap();
            }
        }
        cluster.run_until_drained(10_000_000);
        let stats = cluster.stats();
        let count: u64 = cluster.results().values().map(|(c, _)| c).sum();
        table.row(vec![
            label.to_string(),
            stats.failovers.to_string(),
            (TUPLES as u64 - count).to_string(),
            count.to_string(),
            TUPLES.to_string(),
        ]);
    }
    table.print();
    println!(
        "\n  shape check: without replicas, the dead node's state and in-flight\n\
         \x20 tuples are gone; with process pairs, failover promotes the replicas\n\
         \x20 and the final counts are exact — \"Flux automatically recovers lost\n\
         \x20 in-flight data and operator state … and continues processing\".\n"
    );
}

/// Memory/overhead tradeoff of replication: processed work doubles.
fn experiment_replication_cost() {
    println!("E7c — the replication 'QoS knob': reliability costs duplicate work\n");
    let rows = workload();
    let mut table = Table::new(&["configuration", "total node work", "drain ticks"]);
    for (label, replicated) in [("no replicas", false), ("process pairs", true)] {
        let cfg = if replicated {
            FluxConfig::uniform(4).with_replication()
        } else {
            FluxConfig::uniform(4)
        };
        let mut cluster = FluxCluster::new(cfg, 0, 1).unwrap();
        for t in &rows {
            cluster.ingest(t).unwrap();
        }
        let ticks = cluster.run_until_drained(10_000_000);
        let work: u64 = cluster.node_stats().iter().map(|n| n.processed).sum();
        table.row(vec![label.to_string(), work.to_string(), ticks.to_string()]);
    }
    table.print();
    println!(
        "\n  shape check: process pairs process every tuple twice — the \"unneeded\n\
         \x20 reliability … traded for improved performance\" knob of §2.4.\n"
    );
}

fn main() {
    experiment_load_balancing();
    experiment_failover();
    experiment_replication_cost();
}
