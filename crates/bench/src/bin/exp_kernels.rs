//! Experiment E-kernels (DESIGN.md "Compiled kernels & prehashed
//! probes" + "Columnar batches & vectorized kernels"): the same
//! end-to-end select-project-join pipeline as E-throughput, run at the
//! batched sweet spot (K = 64) across three configurations —
//! interpreted row, compiled row, and compiled columnar
//! (`ServerConfig::{compiled_kernels, columnar}`).
//!
//! Compiled: WHERE-clause predicates are lowered to flat bytecode
//! kernels ([`tcq_common::kernel`]), join keys are FNV-hashed once per
//! tuple at ingress and the memo reused by every SteM build and probe,
//! and probe scratch is recycled. Columnar adds the
//! [`tcq_common::ColumnBatch`] hot path: one row→column conversion per
//! ingress batch, vectorized predicate/probe/project kernels over
//! contiguous buffers, and whole-batch egress to a column client — no
//! per-row tuple is materialized anywhere past the conversion edge.
//! Interpreted reproduces the tree-walking interpreter and per-site
//! hashing of earlier PRs. Results are byte-identical in all three
//! (the chaos suite asserts this); only the work per tuple changes.
//!
//! The query carries a deliberately predicate-heavy WHERE clause — twelve
//! single-column comparisons plus one cross-source band factor — so
//! predicate evaluation is a realistic fraction of per-tuple cost, as in
//! the CACQ/PSoup workloads where every tuple faces many standing
//! filters.
//!
//! Claims demonstrated:
//!
//! * compiled kernels + prehashed probes raise sustained tuples/sec over
//!   the interpreted configuration on the identical workload;
//! * columnar batches raise tuples/sec again over the compiled row path
//!   and collapse allocs/tuple to near the bench's own tuple-building
//!   floor (batch-amortized pipeline, zero per-row egress);
//! * the allocator is hit a bounded number of times per delivered tuple,
//!   reported as `allocs/tuple` (the recycling budget);
//! * the run emits machine-readable `BENCH_kernels.json`.
//!
//! ```text
//! cargo run --release -p tcq-bench --bin exp_kernels [-- --smoke]
//! ```
//!
//! `--smoke` runs a reduced workload and exits non-zero if the compiled
//! configuration is slower than the interpreted one, the columnar
//! configuration misses its speedup or allocation gates, or a row
//! allocation budget is blown — the perf tripwire `scripts/ci.sh`
//! relies on.

use std::sync::mpsc::Receiver;
use std::time::{Duration, Instant};

use tcq_bench::Table;
use tcq_common::{DataType, Field, Schema, SchemaRef, Timestamp, Tuple, TupleBuilder};
use tcq_egress::{ColumnDelivery, Delivery};
use tcq_server::{ServerConfig, TelegraphCQ};

/// Counting allocator for the allocs-per-tuple budget.
#[global_allocator]
static ALLOC: tcq_bench::CountingAlloc = tcq_bench::CountingAlloc::new();

/// Hot-path batch size for every run: the K=64 plateau E-throughput
/// established, so the remaining per-tuple cost is evaluation and
/// hashing — exactly what kernels attack.
const K: usize = 64;

/// Rows in the dimension stream; every hot key matches exactly one.
const DIM_ROWS: i64 = 64;

/// Offset added to the micros-since-epoch timestamp carried in `s.v`, so
/// even the very first tuple clears the `s.v > d.tag` band factor (tags
/// top out at `(DIM_ROWS - 1) * 10`). The reaper subtracts it back out.
const V_OFFSET: i64 = 1_000_000;

/// Allocation events per delivered tuple the smoke tripwire tolerates on
/// the compiled path. The measured end-to-end value is ~8 (tuple build,
/// join concat, projection, delivery); 3× headroom keeps scheduler noise
/// from flaking CI while still catching a reintroduced per-tuple clone
/// storm.
const ALLOC_BUDGET: f64 = 24.0;

/// Allocation events per delivered tuple the smoke tripwire tolerates on
/// the columnar path. The bench's own TupleBuilder loop costs ~2 allocs
/// per pushed tuple *inside* the measured window; the pipeline itself
/// must stay batch-amortized (column buffers, whole-batch egress) to fit
/// under this.
const COLUMNAR_ALLOC_BUDGET: f64 = 3.0;

/// Minimum columnar-over-compiled-row speedup the smoke tripwire
/// demands: the vectorized path must pay for its conversion edge.
const COLUMNAR_SPEEDUP_FLOOR: f64 = 1.3;

fn dim_schema() -> SchemaRef {
    Schema::new(vec![
        Field::new("id", DataType::Int),
        Field::new("tag", DataType::Int),
    ])
    .into_ref()
}

fn hot_schema() -> SchemaRef {
    Schema::new(vec![
        Field::new("k", DataType::Int),
        Field::new("v", DataType::Int),
    ])
    .into_ref()
}

struct Outcome {
    compiled: bool,
    columnar: bool,
    tuples_per_sec: f64,
    p50_us: u64,
    p99_us: u64,
    delivered: usize,
    offered: usize,
    allocs_per_tuple: f64,
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Drains deliveries into per-tuple latencies until `n` arrive or the
/// deadline passes. Row runs get a push client (one message per tuple);
/// columnar runs get a column client (one message per emitted batch, no
/// per-row materialization anywhere in egress).
enum Reaper {
    Rows(Receiver<Delivery>),
    Columns(Receiver<ColumnDelivery>),
}

impl Reaper {
    fn drain(&self, epoch: Instant, n: usize) -> Vec<u64> {
        let mut latencies = Vec::with_capacity(n);
        let deadline = Instant::now() + Duration::from_secs(120);
        while latencies.len() < n && Instant::now() < deadline {
            let before = latencies.len();
            match self {
                Reaper::Rows(rx) => {
                    for (_q, t) in rx.try_iter() {
                        let sent_us = t.value(0).as_int().unwrap() - V_OFFSET;
                        let now_us = epoch.elapsed().as_micros() as i64;
                        latencies.push((now_us - sent_us).max(0) as u64);
                        if latencies.len() >= n {
                            break;
                        }
                    }
                }
                Reaper::Columns(rx) => {
                    for (_q, batch) in rx.try_iter() {
                        let now_us = epoch.elapsed().as_micros() as i64;
                        let col = batch.column(0);
                        for row in 0..batch.len() {
                            let sent_us = col.value(row).as_int().unwrap() - V_OFFSET;
                            latencies.push((now_us - sent_us).max(0) as u64);
                        }
                        if latencies.len() >= n {
                            break;
                        }
                    }
                }
            }
            if latencies.len() == before {
                std::thread::sleep(Duration::from_micros(200));
            }
        }
        latencies
    }
}

/// One full pipeline run: `n` hot tuples joined against the pre-loaded
/// dimension stream under a predicate-heavy WHERE clause, timed from
/// first push to last delivery. Latency rides in `v` exactly as in
/// E-throughput.
fn run_pipeline(compiled: bool, columnar: bool, n: usize) -> Outcome {
    let server = TelegraphCQ::start(ServerConfig {
        io_batch: K,
        eddy_batch: K,
        compiled_kernels: compiled,
        columnar,
        ..ServerConfig::default()
    })
    .unwrap();
    server.register_stream("s", hot_schema()).unwrap();
    server.register_stream("dim", dim_schema()).unwrap();

    let (client, reaper_rx) = if columnar {
        let (client, rx) = server.connect_column_client(n + 1024).unwrap();
        (client, Reaper::Columns(rx))
    } else {
        let (client, rx) = server.connect_push_client(n + 1024).unwrap();
        (client, Reaper::Rows(rx))
    };
    // Twelve single-column factors (six per source, each a compilable
    // Cmp(col, lit) shape) plus one cross-source band factor compiled
    // against the joined schema — the CACQ regime where every tuple
    // faces a stack of standing filters. All are satisfied by
    // construction — `v` is micros-since-epoch + V_OFFSET and tags are
    // small — so the join still emits exactly one output per hot tuple
    // and the ledger check stays exact.
    server
        .submit(
            "SELECT s.v, d.tag FROM s s, dim d \
             WHERE s.k = d.id \
             AND s.v > 0 AND s.v < 4000000000000000 AND s.v != 0 \
             AND s.k >= 0 AND s.k < 1000000 AND s.k != -1 \
             AND d.tag >= 0 AND d.tag < 1000000 AND d.tag != -1 \
             AND d.id <= 9000000 AND d.id >= 0 AND d.id != -1 \
             AND s.v > d.tag \
             for (t = ST; t >= 0; t++) { WindowIs(s, t - 8000000, t); WindowIs(d, t - 9000000, t); }",
            client,
        )
        .unwrap();

    let dims = dim_schema();
    let dim_batch: Vec<Tuple> = (0..DIM_ROWS)
        .map(|id| {
            TupleBuilder::new(dims.clone())
                .push(id)
                .push(id * 10)
                .at(Timestamp::logical(id + 1))
                .build()
                .unwrap()
        })
        .collect();
    server.push_batch("dim", dim_batch).unwrap();
    while server.stream_time("dim").unwrap() < DIM_ROWS {
        std::thread::sleep(Duration::from_millis(1));
    }
    std::thread::sleep(Duration::from_millis(20));

    let epoch = Instant::now();
    let reaper = std::thread::spawn(move || {
        let latencies = reaper_rx.drain(epoch, n);
        (latencies, Instant::now())
    });

    let hot = hot_schema();
    let allocs_before = ALLOC.allocs();
    let start = Instant::now();
    let mut pushed = 0usize;
    while pushed < n {
        let m = K.min(n - pushed);
        let mut chunk = Vec::with_capacity(m);
        for j in 0..m {
            let idx = (pushed + j) as i64;
            let sent_us = epoch.elapsed().as_micros() as i64 + V_OFFSET;
            chunk.push(
                TupleBuilder::new(hot.clone())
                    .push(idx % DIM_ROWS)
                    .push(sent_us)
                    .at(Timestamp::logical(DIM_ROWS + idx + 1))
                    .build()
                    .unwrap(),
            );
        }
        server.push_batch("s", chunk).unwrap();
        pushed += m;
    }

    let (mut latencies, finished) = reaper.join().unwrap();
    let elapsed = finished.duration_since(start).as_secs_f64().max(1e-9);
    let allocs = ALLOC.allocs() - allocs_before;
    let delivered = latencies.len();
    latencies.sort_unstable();
    server.shutdown().unwrap();

    Outcome {
        compiled,
        columnar,
        tuples_per_sec: delivered as f64 / elapsed,
        p50_us: percentile(&latencies, 0.50),
        p99_us: percentile(&latencies, 0.99),
        delivered,
        offered: n,
        allocs_per_tuple: allocs as f64 / delivered.max(1) as f64,
    }
}

fn write_json(path: &str, n: usize, outcomes: &[Outcome], speedup: f64, col_speedup: f64) {
    let mut entries = Vec::new();
    for o in outcomes {
        entries.push(format!(
            "    {{\"compiled\": {}, \"columnar\": {}, \"tuples_per_sec\": {:.1}, \
             \"p50_us\": {}, \"p99_us\": {}, \"delivered\": {}, \"offered\": {}, \
             \"allocs_per_tuple\": {:.1}}}",
            o.compiled,
            o.columnar,
            o.tuples_per_sec,
            o.p50_us,
            o.p99_us,
            o.delivered,
            o.offered,
            o.allocs_per_tuple
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"kernels\",\n  \"pipeline\": \
         \"predicate-heavy select-project-join at K=64: interpreted row vs compiled row \
         vs compiled columnar\",\n  \
         \"tuples\": {},\n  \"k\": {},\n  \"results\": [\n{}\n  ],\n  \
         \"speedup_compiled_vs_interpreted\": {:.2},\n  \
         \"speedup_columnar_vs_row\": {:.2}\n}}\n",
        n,
        K,
        entries.join(",\n"),
        speedup,
        col_speedup
    );
    std::fs::write(path, json).unwrap();
    println!("  wrote {path}");
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    // Best-of-`runs` per configuration, interleaved so ambient load hits
    // both sides evenly. Smoke also takes best-of-3: one 8k-tuple pass on
    // a busy single-core box is inside scheduler noise for the ~1.3×
    // compiled-vs-interpreted margin, and a tripwire that flakes trains
    // people to ignore it.
    let (n, runs): (usize, usize) = if smoke { (8_000, 3) } else { (200_000, 3) };
    println!(
        "E-kernels — compiled predicate kernels + prehashed probes + columnar\n\
         batches vs the tree-walking row interpreter ({n} tuples per run, K = {K})\n"
    );

    let mut table = Table::new(&[
        "mode",
        "tuples/sec",
        "p50 latency (us)",
        "p99 latency (us)",
        "delivered",
        "offered",
        "allocs/tuple",
    ]);
    let mut outcomes = Vec::new();
    for &(compiled, columnar) in &[(false, false), (true, false), (true, true)] {
        let mut o = run_pipeline(compiled, columnar, n);
        for _ in 1..runs {
            let again = run_pipeline(compiled, columnar, n);
            if again.tuples_per_sec > o.tuples_per_sec {
                o = again;
            }
        }
        assert_eq!(
            o.delivered, o.offered,
            "every admitted tuple must be delivered (compiled={compiled}, columnar={columnar})"
        );
        table.row(vec![
            match (o.compiled, o.columnar) {
                (_, true) => "columnar",
                (true, false) => "compiled",
                (false, false) => "interpreted",
            }
            .to_string(),
            format!("{:.0}", o.tuples_per_sec),
            o.p50_us.to_string(),
            o.p99_us.to_string(),
            o.delivered.to_string(),
            o.offered.to_string(),
            format!("{:.1}", o.allocs_per_tuple),
        ]);
        outcomes.push(o);
    }
    table.print();

    let interp = outcomes.iter().find(|o| !o.compiled).unwrap();
    let comp = outcomes.iter().find(|o| o.compiled && !o.columnar).unwrap();
    let col = outcomes.iter().find(|o| o.columnar).unwrap();
    let speedup = comp.tuples_per_sec / interp.tuples_per_sec;
    let col_speedup = col.tuples_per_sec / comp.tuples_per_sec;
    println!("\n  speedup compiled vs interpreted: {speedup:.2}x");
    println!("  speedup columnar vs compiled row: {col_speedup:.2}x");
    println!(
        "  allocs/tuple: {:.1} columnar vs {:.1} compiled vs {:.1} interpreted",
        col.allocs_per_tuple, comp.allocs_per_tuple, interp.allocs_per_tuple
    );
    if !smoke {
        write_json("BENCH_kernels.json", n, &outcomes, speedup, col_speedup);
    }

    if speedup < 1.0 {
        eprintln!(
            "FAIL: compiled throughput ({:.0}/s) below interpreted ({:.0}/s)",
            comp.tuples_per_sec, interp.tuples_per_sec
        );
        std::process::exit(1);
    }
    if comp.allocs_per_tuple > ALLOC_BUDGET {
        eprintln!(
            "FAIL: compiled path hits the allocator {:.1} times per tuple (budget {ALLOC_BUDGET})",
            comp.allocs_per_tuple
        );
        std::process::exit(1);
    }
    if col_speedup < COLUMNAR_SPEEDUP_FLOOR {
        eprintln!(
            "FAIL: columnar throughput ({:.0}/s) under {COLUMNAR_SPEEDUP_FLOOR}x the \
             compiled row path ({:.0}/s)",
            col.tuples_per_sec, comp.tuples_per_sec
        );
        std::process::exit(1);
    }
    if col.allocs_per_tuple > COLUMNAR_ALLOC_BUDGET {
        eprintln!(
            "FAIL: columnar path hits the allocator {:.1} times per tuple \
             (budget {COLUMNAR_ALLOC_BUDGET})",
            col.allocs_per_tuple
        );
        std::process::exit(1);
    }
    println!(
        "\n  shape check: lowering predicates to kernels, hashing each join key\n\
         \x20 once per tuple, and moving batches as columns outruns per-tuple\n\
         \x20 tree-walking, inside a bounded allocs-per-tuple budget.\n"
    );
}
