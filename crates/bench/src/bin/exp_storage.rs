//! Experiment E10 (DESIGN.md): out-of-core stream history (paper §4.3) —
//! sequential append throughput, windowed historical scans through the
//! buffer pool (hot vs cold), and the backward-window "browsing" read
//! pattern over bounded memory.
//!
//! ```text
//! cargo run --release -p tcq-bench --bin exp_storage
//! ```

use tcq_bench::{kv, kv_schema, timed, Table};
use tcq_storage::{BufferPool, StreamArchive};

const N: i64 = 500_000;

fn main() {
    println!("E10 — stream archive: {N} tuples spooled through an 8 MiB buffer pool\n");
    let schema = kv_schema("S");
    let dir = std::env::temp_dir();
    let path = dir.join(format!("tcq-exp-storage-{}.seg", std::process::id()));
    let pool = BufferPool::new(1024, 8192);
    let mut archive = StreamArchive::create(&path, schema.clone(), pool.clone()).unwrap();

    // Append (sequential write path).
    let ((), append_us) = timed(|| {
        for i in 1..=N {
            archive.append(&kv(&schema, i % 100, i, i)).unwrap();
        }
        archive.flush().unwrap();
    });
    println!(
        "  append: {N} tuples in {append_us} us ({:.1} Mtuples/s), {} sealed pages\n",
        N as f64 / append_us as f64,
        archive.sealed_pages()
    );

    // Windowed scans: cold (cleared pool) vs hot (rescan).
    let mut table = Table::new(&[
        "window width",
        "cold us",
        "hot us",
        "pages read (cold)",
        "rows",
    ]);
    for width in [1_000i64, 10_000, 100_000] {
        let l = N / 2;
        let r = l + width - 1;
        pool.clear();
        let misses_before = pool.stats().misses;
        let mut out = Vec::new();
        let (_, cold_us) = timed(|| archive.scan_window(l, r, &mut out).unwrap());
        let pages = pool.stats().misses - misses_before;
        let rows = out.len();
        out.clear();
        let (_, hot_us) = timed(|| archive.scan_window(l, r, &mut out).unwrap());
        table.row(vec![
            width.to_string(),
            cold_us.to_string(),
            hot_us.to_string(),
            pages.to_string(),
            rows.to_string(),
        ]);
    }
    table.print();

    // Backward-window browsing (§4.1: "windows that move backwards
    // starting from the present time").
    pool.clear();
    let mut rows = 0usize;
    let ((), browse_us) = timed(|| {
        let mut out = Vec::new();
        let mut t = N;
        while t > N - 100_000 {
            out.clear();
            archive.scan_window(t - 999, t, &mut out).unwrap();
            rows += out.len();
            t -= 1000;
        }
    });
    println!(
        "\n  backward browsing: 100 hops of width 1000 over recent history in \
         {browse_us} us ({rows} rows), cache hit rate {:.0}%",
        100.0 * pool.stats().hits as f64 / (pool.stats().hits + pool.stats().misses) as f64
    );
    println!(
        "\n  shape check (§4.3): writes are strictly sequential; windowed reads\n\
         \x20 touch only overlapping pages (pages-read scales with window width,\n\
         \x20 not archive size); re-reads are served from the pool.\n"
    );
    std::fs::remove_file(path).ok();
}
