//! Experiment E8 (DESIGN.md): the window-type memory asymmetry of paper
//! §4.1.2 —
//!
//! > "For a landmark window, it is possible to compute the answer
//! > iteratively … for a sliding window, computing the maximum requires
//! > the maintenance of the entire window."
//!
//! We run MAX over a stream under a landmark window (incremental, O(1)
//! state) and sliding windows of increasing width (buffered), reporting
//! per-tuple cost and peak retained state.
//!
//! ```text
//! cargo run --release -p tcq-bench --bin exp_window_memory
//! ```

use tcq_bench::{kv, kv_schema, timed, Table};
use tcq_common::rng::seeded;
use tcq_operators::{AggFunc, AggSpec, WindowAggregator, WindowMode};

const N: i64 = 200_000;

fn main() {
    println!("E8 — MAX over a {N}-tuple stream: landmark vs sliding windows\n");
    let schema = kv_schema("S");
    let mut rng = seeded(61);
    let tuples: Vec<_> = (1..=N)
        .map(|i| kv(&schema, 0, rng.gen_range(0..1_000_000), i))
        .collect();

    let mut table = Table::new(&[
        "window",
        "state (tuples)",
        "feed us",
        "result reads",
        "read us",
    ]);

    // Landmark: incremental, read the running max every 1000 tuples.
    {
        let mut agg =
            WindowAggregator::new(vec![AggSpec::over(AggFunc::Max, 1)], WindowMode::Landmark);
        let mut read_us = 0u64;
        let mut reads = 0u64;
        let ((), feed_us) = timed(|| {
            for (i, t) in tuples.iter().enumerate() {
                agg.update(t).unwrap();
                if i % 1000 == 999 {
                    let (_, us) = timed(|| agg.results().unwrap());
                    read_us += us;
                    reads += 1;
                }
            }
        });
        table.row(vec![
            "landmark".into(),
            agg.peak_buffered().to_string(),
            feed_us.to_string(),
            reads.to_string(),
            read_us.to_string(),
        ]);
    }

    // Sliding windows of width w, read + slide every 1000 tuples.
    for width in [1_000i64, 10_000, 50_000] {
        let mut agg =
            WindowAggregator::new(vec![AggSpec::over(AggFunc::Max, 1)], WindowMode::Sliding);
        let mut read_us = 0u64;
        let mut reads = 0u64;
        let ((), feed_us) = timed(|| {
            for (i, t) in tuples.iter().enumerate() {
                agg.update(t).unwrap();
                let seq = t.timestamp().seq();
                agg.slide_to(seq - width + 1).unwrap();
                if i % 1000 == 999 {
                    let (_, us) = timed(|| agg.results().unwrap());
                    read_us += us;
                    reads += 1;
                }
            }
        });
        table.row(vec![
            format!("sliding w={width}"),
            agg.peak_buffered().to_string(),
            feed_us.to_string(),
            reads.to_string(),
            read_us.to_string(),
        ]);
    }
    table.print();
    println!(
        "\n  shape check (§4.1.2): landmark MAX holds ZERO window state and answers\n\
         \x20 in O(1); sliding MAX must retain the whole window — state and read\n\
         \x20 cost grow linearly with window width.\n"
    );
}
