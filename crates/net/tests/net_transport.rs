//! End-to-end tests over real sockets: submit/ingest/results round trips,
//! the mid-batch socket-drop accounting regression, and seed-replayable
//! `NetRead`/`NetWrite` connection faults.

use std::time::{Duration, Instant};

use tcq_common::{
    DataType, FaultAction, FaultPlan, FaultPoint, Field, Schema, SchemaRef, Timestamp, TupleBuilder,
};
use tcq_net::{NetServer, TcqClient};
use tcq_server::{ServerConfig, TcpTransportConfig, TransportConfig};

fn schema() -> SchemaRef {
    Schema::new(vec![
        Field::new("k", DataType::Int),
        Field::new("v", DataType::Int),
    ])
    .into_ref()
}

fn rows(s: &SchemaRef, range: std::ops::Range<i64>) -> Vec<tcq_common::Tuple> {
    range
        .map(|i| {
            TupleBuilder::new(s.clone())
                .push(i % 100)
                .push(i)
                .at(Timestamp::logical(i))
                .build()
                .unwrap()
        })
        .collect()
}

fn tcp_config(client_queue: usize) -> ServerConfig {
    ServerConfig {
        transport: TransportConfig::Tcp(TcpTransportConfig {
            addr: "127.0.0.1:0".into(),
            client_queue,
            ..TcpTransportConfig::default()
        }),
        ..ServerConfig::default()
    }
}

fn start(config: ServerConfig) -> (NetServer, std::net::SocketAddr) {
    let server = NetServer::start(config).unwrap();
    server.engine().register_stream("s", schema()).unwrap();
    let addr = server.local_addr().unwrap();
    (server, addr)
}

/// Read results until the socket stays quiet for `quiet`.
fn drain_results(client: &mut TcqClient, quiet: Duration) -> Vec<(u64, i64)> {
    let mut got = Vec::new();
    while let Some(batch) = client.next_results(quiet).unwrap() {
        for t in &batch.tuples {
            got.push((batch.query, t.value(1).as_int().unwrap()));
        }
    }
    got
}

#[test]
fn tcp_submit_ingest_receive_round_trip() {
    let (server, addr) = start(tcp_config(1024));

    let mut client = TcqClient::connect(addr).unwrap();
    assert!(client.conn_id() > 0);
    let qid = client.submit("SELECT k, v FROM s WHERE k < 50").unwrap();

    // Ingest on a second connection, as a remote producer would.
    let mut producer = TcqClient::connect(addr).unwrap();
    let s = schema();
    producer.ingest("s", rows(&s, 0..200)).unwrap();
    producer.punctuate("s", Timestamp::logical(200)).unwrap();
    producer.finish("s").unwrap();

    server.engine().quiesce(Duration::from_secs(10));
    let got = drain_results(&mut client, Duration::from_millis(300));
    // k = i % 100 < 50 → exactly the rows whose i % 100 < 50.
    let expect: Vec<i64> = (0..200).filter(|i| i % 100 < 50).collect();
    assert_eq!(got.len(), expect.len());
    assert!(got.iter().all(|(q, _)| *q == qid));
    let mut vals: Vec<i64> = got.iter().map(|&(_, v)| v).collect();
    vals.sort_unstable();
    assert_eq!(vals, expect);

    // Exact wire accounting: what the router delivered equals what hit
    // the wire equals what the client read.
    let egress = server.engine().egress_stats_full();
    assert!(egress.accounted(), "{egress:?}");
    let net = server.net_stats();
    assert_eq!(net.rows_written, got.len() as u64);
    assert_eq!(egress.delivered, net.rows_written);
    assert_eq!(net.rows_read, 200, "ingest rows decoded off the wire");
    assert_eq!(net.rows_dropped_net + net.rows_lost_disconnect, 0);

    client.bye().unwrap();
    producer.bye().unwrap();
    server.shutdown().unwrap();
}

#[test]
fn submit_error_crosses_the_wire_and_connection_survives() {
    let (server, addr) = start(tcp_config(64));
    let mut client = TcqClient::connect(addr).unwrap();
    let err = client.submit("SELECT nope FROM nowhere").unwrap_err();
    assert!(err.to_string().contains("nowhere"), "{err}");
    // The connection is still usable after a failed request.
    client.submit("SELECT k, v FROM s WHERE k < 10").unwrap();
    client.bye().unwrap();
    server.shutdown().unwrap();
}

/// Satellite regression: a TCP subscriber that stops reading and then
/// drops its socket mid-batch must leave the ledger exactly balanced —
/// rows stuck in its per-connection queue move from `delivered` to
/// `disconnected_loss`, never vanish. Rows are 2 KB and the total volume
/// far exceeds the kernel's socket pipeline (~4 MB send buffer max), so
/// the victim's writer genuinely blocks in `write_all`, its queue
/// (capacity 8) fills behind it, and the router sheds the rest. Ingest
/// is paced so the concurrently-draining healthy subscriber keeps up on
/// a single core.
#[test]
fn mid_batch_socket_drop_keeps_ledger_exact() {
    const N: i64 = 4000;
    let (server, addr) = start(tcp_config(8));
    let big = Schema::new(vec![
        Field::new("k", DataType::Int),
        Field::new("pad", DataType::Str),
    ])
    .into_ref();
    server.engine().register_stream("big", big.clone()).unwrap();
    let pad = "x".repeat(2048);
    let big_rows = |range: std::ops::Range<i64>| -> Vec<tcq_common::Tuple> {
        range
            .map(|i| {
                TupleBuilder::new(big.clone())
                    .push(i % 100)
                    .push(pad.clone())
                    .at(Timestamp::logical(i))
                    .build()
                    .unwrap()
            })
            .collect()
    };

    let mut victim = TcqClient::connect(addr).unwrap();
    victim
        .submit("SELECT k, pad FROM big WHERE k < 100")
        .unwrap();

    // A healthy subscriber to the same rows proves the drop is isolated.
    // It drains concurrently so its own small queue never backs up.
    let mut healthy = TcqClient::connect(addr).unwrap();
    healthy
        .submit("SELECT k, pad FROM big WHERE k < 100")
        .unwrap();
    let healthy_conn = healthy.conn_id();
    let done = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let drain = {
        let done = done.clone();
        std::thread::spawn(move || {
            let mut n = 0u64;
            loop {
                match healthy.next_results(Duration::from_millis(200)).unwrap() {
                    Some(batch) => n += batch.tuples.len() as u64,
                    None => {
                        if done.load(std::sync::atomic::Ordering::SeqCst) {
                            break;
                        }
                    }
                }
            }
            let _ = healthy.bye();
            n
        })
    };

    for chunk in (0..N).step_by(8) {
        server
            .engine()
            .push_batch("big", big_rows(chunk..(chunk + 8).min(N)))
            .unwrap();
        // Pace the burst: the healthy writer, its client, and the
        // dispatcher share one core — give the drain side its slices.
        std::thread::sleep(Duration::from_millis(2));
    }
    server.engine().finish_stream("big").unwrap();
    server.engine().quiesce(Duration::from_secs(30));

    // The victim read nothing: TCP buffers and its queue are full, the
    // rest already shed. Dropping the socket (with unread data → RST)
    // kills the blocked writer mid-batch.
    victim.abort();

    // Wait for the server to notice the dead socket and settle accounts.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let e = server.engine().egress_stats_full();
        if e.disconnected >= 1 && e.accounted() {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "server never settled the dead client: {e:?}\nconns: {:#?}",
            server.conn_stats()
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    done.store(true, std::sync::atomic::Ordering::SeqCst);
    let healthy_got = drain.join().unwrap();

    let e = server.engine().egress_stats_full();
    assert!(e.accounted(), "ledger must balance exactly: {e:?}");
    assert_eq!(e.offered, 2 * N as u64, "{N} rows × 2 subscribers");
    assert_eq!(e.disconnected, 1, "only the victim was forcibly dropped");
    assert!(
        e.disconnected_loss > 0,
        "undrained queue rows must be reclassified: {e:?}"
    );
    assert!(e.shed > 0, "rows past the full queue shed: {e:?}");
    let net = server.net_stats();
    assert_eq!(
        net.rows_lost_disconnect, e.disconnected_loss,
        "transport and router agree on the loss"
    );
    // Ledger `delivered` describes rows that reached a socket write.
    assert_eq!(e.delivered, net.rows_written);
    // The healthy subscriber is untouched: it saw exactly what its
    // connection wrote, which is (nearly) everything.
    let hsnap = server
        .conn_stats()
        .into_iter()
        .find(|c| c.conn == healthy_conn)
        .unwrap();
    assert_eq!(healthy_got, hsnap.rows_written);
    assert!(
        healthy_got >= (N as u64) * 9 / 10,
        "healthy subscriber fell behind: {healthy_got}/{N}"
    );

    server.shutdown().unwrap();
}

/// `NetRead` faults are seed-replayable: the same plan kills the same
/// connection after the same number of decoded frames, twice.
#[test]
fn net_read_fault_poisons_connection_deterministically() {
    let run = || -> (u64, Vec<tcq_common::FiredFault>, u64) {
        let plan = FaultPlan::new(0x0BAD_5EED)
            // Frames on the ingest connection: Hello(1), Schema(2) —
            // injected by the client codec before its first tuple frame —
            // then ingest batches 3, 4, ... The second batch dies in the
            // reader, after decode but before dispatch.
            .at(FaultPoint::NetRead, 4, FaultAction::Error("net".into()));
        let mut cfg = tcp_config(64);
        cfg.fault_plan = Some(plan);
        let (server, addr) = start(cfg);

        let s = schema();
        let mut producer = TcqClient::connect(addr).unwrap();
        for batch in 0..5 {
            let lo = batch * 10;
            if producer.ingest("s", rows(&s, lo..lo + 10)).is_err() {
                break;
            }
            // One frame at a time, flushed: the server decodes 1:1.
            std::thread::sleep(Duration::from_millis(30));
        }
        server.engine().quiesce(Duration::from_secs(5));
        let rows_read = server.net_stats().rows_read;
        let fired = server.engine().fired_faults();
        let read_faults = server.net_stats().read_faults;
        drop(producer);
        server.shutdown().unwrap();
        (rows_read, fired, read_faults)
    };

    let (rows_a, fired_a, faults_a) = run();
    let (rows_b, fired_b, faults_b) = run();
    assert_eq!(rows_a, rows_b, "same frames decoded before the kill");
    assert_eq!(fired_a, fired_b, "same fault log");
    assert_eq!(faults_a, 1);
    assert_eq!(faults_b, 1);
    // Only the first batch dispatched: the fault poisons the connection
    // between decoding and dispatching the second batch, so its 10 rows
    // never reach the engine.
    assert_eq!(rows_a, 10);
    assert_eq!(
        fired_a,
        vec![(FaultPoint::NetRead, 4, FaultAction::Error("net".into()))]
    );
}

/// `NetWrite` faults drop frames, not accounting: the ledger identity
/// `delivered == rows_written + rows_dropped_net` survives, and the
/// client observes exactly `rows_written`.
#[test]
fn net_write_fault_drops_frames_but_not_accounting() {
    // Writes on the subscriber connection: Welcome(1), SubmitOk(2), then
    // result frames. Frame 3 — the first results frame — is dropped.
    let plan =
        FaultPlan::new(0xD00D).at(FaultPoint::NetWrite, 3, FaultAction::Error("wire".into()));
    let mut cfg = tcp_config(1024);
    cfg.fault_plan = Some(plan);
    let (server, addr) = start(cfg);

    let mut client = TcqClient::connect(addr).unwrap();
    client.submit("SELECT k, v FROM s WHERE k < 100").unwrap();

    let s = schema();
    server.engine().push_batch("s", rows(&s, 0..100)).unwrap();
    server.engine().finish_stream("s").unwrap();
    server.engine().quiesce(Duration::from_secs(10));

    let got = drain_results(&mut client, Duration::from_millis(300));
    let net = server.net_stats();
    let e = server.engine().egress_stats_full();
    assert!(e.accounted());
    assert_eq!(net.write_faults, 1, "the scheduled fault fired");
    assert!(net.rows_dropped_net > 0, "the dropped frame carried rows");
    assert_eq!(
        e.delivered,
        net.rows_written + net.rows_dropped_net,
        "router delivery = wire rows + chaos-dropped rows"
    );
    assert_eq!(got.len() as u64, net.rows_written);
    assert!(got.len() < 100, "something was genuinely lost on the wire");

    client.bye().unwrap();
    server.shutdown().unwrap();
}

/// Ingest into a stream the catalog does not know fails server-side and
/// the error frame reaches the producer asynchronously — errors cross
/// the wire, not just results.
#[test]
fn ingest_into_unknown_stream_surfaces_remote_error() {
    let (server, addr) = start(tcp_config(64));
    let s = schema();
    let mut producer = TcqClient::connect(addr).unwrap();
    producer.ingest("nope", rows(&s, 0..5)).unwrap();
    // The failure comes back asynchronously as an Error frame.
    let err = loop {
        match producer.next_results(Duration::from_secs(5)) {
            Ok(Some(_)) => continue,
            Ok(None) => panic!("no error frame arrived"),
            Err(e) => break e,
        }
    };
    assert!(err.to_string().contains("nope"), "{err}");
    server.shutdown().unwrap();
}

/// Clean `Bye` with a drained queue is an orderly departure: no forcible
/// disconnect, no loss, and the transport's `closed` counter converges.
#[test]
fn clean_bye_counts_no_loss() {
    let (server, addr) = start(tcp_config(64));
    let mut client = TcqClient::connect(addr).unwrap();
    client.submit("SELECT k, v FROM s WHERE k < 100").unwrap();
    let s = schema();
    server.engine().push_batch("s", rows(&s, 0..50)).unwrap();
    server.engine().quiesce(Duration::from_secs(5));
    let got = drain_results(&mut client, Duration::from_millis(300));
    assert_eq!(got.len(), 50);
    client.bye().unwrap();

    let deadline = Instant::now() + Duration::from_secs(5);
    while server.net_stats().closed < 1 {
        assert!(Instant::now() < deadline, "connection never closed");
        std::thread::sleep(Duration::from_millis(10));
    }
    let e = server.engine().egress_stats_full();
    assert!(e.accounted());
    assert_eq!(e.disconnected, 0, "clean close is not a disconnect: {e:?}");
    assert_eq!(e.disconnected_loss, 0);
    assert_eq!(e.delivered, 50);
    server.shutdown().unwrap();
}
