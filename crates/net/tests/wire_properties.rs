//! Property tests for the wire-frame codec: random frame streams must
//! round-trip under arbitrary chunking, and a stream cut or corrupted at
//! *any* byte must decode to exactly the valid prefix — then report the
//! tail as "wait for more" (truncation) or "poisoned" (corruption), never
//! panic, and never yield a frame that was not sent. The same prefix
//! discipline `StreamArchive` page recovery follows, applied to a socket.

use tcq_common::rng::{seeded, TcqRng};
use tcq_common::{DataType, Field, Schema, SchemaRef, Timestamp, Tuple, TupleBuilder, Value};
use tcq_net::wire::{Frame, FrameReader, FrameWriter, HEADER_LEN};

const SEED: u64 = 0x00D1_CE5E;

fn schema_a() -> SchemaRef {
    Schema::qualified(
        "s",
        vec![
            Field::new("k", DataType::Int),
            Field::new("v", DataType::Float),
        ],
    )
    .into_ref()
}

fn schema_b() -> SchemaRef {
    Schema::new(vec![
        Field::new("name", DataType::Str),
        Field::new("ok", DataType::Bool),
        Field::new("n", DataType::Int),
    ])
    .into_ref()
}

fn row_a(s: &SchemaRef, rng: &mut TcqRng) -> Tuple {
    TupleBuilder::new(s.clone())
        .push(rng.gen_range(-100i64..100))
        .push(rng.next_f64())
        .at(Timestamp::both(
            rng.gen_range(0i64..1000),
            rng.gen_range(0i64..1000),
        ))
        .build()
        .unwrap()
}

fn row_b(s: &SchemaRef, rng: &mut TcqRng) -> Tuple {
    let mut t = TupleBuilder::new(s.clone())
        .push(format!("n{}", rng.gen_range(0u32..50)))
        .push(rng.gen_bool(0.5));
    // Exercise nulls through the tagged-value codec.
    t = if rng.gen_bool(0.2) {
        t.push(Value::Null)
    } else {
        t.push(rng.gen_range(0i64..1_000_000))
    };
    t.at(Timestamp::logical(rng.gen_range(0i64..1000)))
        .build()
        .unwrap()
}

/// A random frame drawn from every variant the protocol defines.
fn random_frame(rng: &mut TcqRng, a: &SchemaRef, b: &SchemaRef) -> Frame {
    match rng.gen_range(0u32..12) {
        0 => Frame::Hello {
            version: rng.gen_range(0u32..10),
        },
        1 => Frame::Welcome {
            version: 1,
            conn: rng.next_u64(),
        },
        2 => Frame::Submit {
            sql: format!("SELECT * FROM s WHERE k = {}", rng.gen_range(0i64..100)),
        },
        3 => Frame::SubmitOk {
            query: rng.next_u64() % 10_000,
        },
        4 => Frame::Subscribe {
            query: rng.next_u64() % 10_000,
        },
        5 => Frame::Ingest {
            stream: "s".into(),
            tuples: (0..rng.gen_range(0usize..8))
                .map(|_| row_a(a, rng))
                .collect(),
        },
        6 => Frame::IngestEof { stream: "s".into() },
        7 => Frame::Punct {
            stream: "s".into(),
            ts: Timestamp::both(rng.gen_range(0i64..100), rng.gen_range(0i64..100)),
        },
        8 => Frame::Results {
            query: rng.next_u64() % 100,
            tuples: (0..rng.gen_range(0usize..8))
                .map(|_| row_b(b, rng))
                .collect(),
        },
        9 => Frame::ColumnResults {
            query: rng.next_u64() % 100,
            tuples: (0..rng.gen_range(1usize..5))
                .map(|_| row_a(a, rng))
                .collect(),
        },
        10 => Frame::Ping {
            token: rng.next_u64(),
        },
        _ => Frame::Error {
            message: "e".repeat(rng.gen_range(0usize..40)),
        },
    }
}

/// Encode `frames`, returning the byte stream and the frame sequence the
/// decoder should yield (sent frames interleaved with the `Schema` frames
/// the writer injects).
fn encode_stream(frames: &[Frame]) -> Vec<u8> {
    let mut w = FrameWriter::new();
    let mut buf = Vec::new();
    for f in frames {
        w.encode(f, &mut buf);
    }
    buf
}

/// Decode as much as possible; returns (frames, leftover-is-error).
fn decode_all(buf: &[u8]) -> (Vec<Frame>, std::result::Result<usize, ()>) {
    let mut r = FrameReader::new();
    let mut out = Vec::new();
    let mut off = 0;
    loop {
        match r.decode(&buf[off..]) {
            Ok(Some((f, n))) => {
                out.push(f);
                off += n;
            }
            Ok(None) => return (out, Ok(off)),
            Err(_) => return (out, Err(())),
        }
    }
}

/// Strip the writer-injected Schema frames (they are codec plumbing, not
/// payload) for comparison against what was sent.
fn without_schemas(frames: Vec<Frame>) -> Vec<Frame> {
    frames
        .into_iter()
        .filter(|f| !matches!(f, Frame::Schema { .. }))
        .collect()
}

#[test]
fn random_streams_round_trip_under_random_chunking() {
    let mut rng = seeded(SEED);
    let a = schema_a();
    let b = schema_b();
    for round in 0..30 {
        let sent: Vec<Frame> = (0..rng.gen_range(1usize..20))
            .map(|_| random_frame(&mut rng, &a, &b))
            .collect();
        let buf = encode_stream(&sent);

        // Feed the decoder in random-sized chunks, as TCP would.
        let mut r = FrameReader::new();
        let mut got = Vec::new();
        let mut pending: Vec<u8> = Vec::new();
        let mut fed = 0;
        while fed < buf.len() || !pending.is_empty() {
            if fed < buf.len() {
                let n = rng.gen_range(1usize..64).min(buf.len() - fed);
                pending.extend_from_slice(&buf[fed..fed + n]);
                fed += n;
            }
            let mut off = 0;
            while let Some((f, n)) = r.decode(&pending[off..]).unwrap() {
                got.push(f);
                off += n;
            }
            pending.drain(..off);
            if fed == buf.len() && pending.is_empty() {
                break;
            }
            if fed == buf.len() && !pending.is_empty() {
                panic!("round {round}: complete stream left undecoded tail");
            }
        }
        assert_eq!(without_schemas(got), sent, "round {round}");
    }
}

#[test]
fn every_truncation_point_recovers_the_valid_prefix() {
    let mut rng = seeded(SEED ^ 1);
    let a = schema_a();
    let b = schema_b();
    let sent: Vec<Frame> = (0..10).map(|_| random_frame(&mut rng, &a, &b)).collect();
    let buf = encode_stream(&sent);
    let (full, rest) = decode_all(&buf);
    assert_eq!(rest, Ok(buf.len()));
    let full = without_schemas(full);
    assert_eq!(full, sent);

    for cut in 0..buf.len() {
        let (got, rest) = decode_all(&buf[..cut]);
        // A torn tail is never an error — the decoder waits for bytes.
        let consumed = rest.unwrap_or_else(|_| panic!("cut at {cut}: truncation became an error"));
        assert!(consumed <= cut);
        // Every decoded frame is a prefix of the true stream (schemas
        // included on the wire, so compare payload frames only).
        let got = without_schemas(got);
        assert!(
            got.len() <= full.len() && got[..] == full[..got.len()],
            "cut at {cut}: decoded frames are not a prefix"
        );
    }
}

#[test]
fn every_single_byte_corruption_is_detected_or_harmless() {
    let mut rng = seeded(SEED ^ 2);
    let a = schema_a();
    let b = schema_b();
    let sent: Vec<Frame> = (0..6).map(|_| random_frame(&mut rng, &a, &b)).collect();
    let buf = encode_stream(&sent);
    let full = without_schemas(decode_all(&buf).0);

    for pos in 0..buf.len() {
        for flip in [0x01u8, 0x80, 0xFF] {
            let mut bad = buf.clone();
            bad[pos] ^= flip;
            let (got, rest) = decode_all(&bad);
            let got = without_schemas(got);
            match rest {
                // Corruption detected: everything decoded before it must
                // be a clean prefix of the true stream.
                Err(()) => assert!(
                    got.len() <= full.len() && got[..] == full[..got.len()],
                    "pos {pos} flip {flip:#x}: prefix broken before detected corruption"
                ),
                // Not detected as corrupt: the only legal way is that the
                // flip landed in a length field making the tail look torn
                // (the decoder waits — on a live socket the checksum would
                // fail once "the rest" arrived), with the prefix intact.
                Ok(consumed) => {
                    assert!(
                        got.len() <= full.len() && got[..] == full[..got.len()],
                        "pos {pos} flip {flip:#x}: undetected corruption yielded wrong frames"
                    );
                    assert!(
                        got.len() < full.len() || consumed == bad.len(),
                        "pos {pos} flip {flip:#x}: full decode of a corrupted stream"
                    );
                }
            }
        }
    }
}

#[test]
fn partial_reads_of_torn_tail_make_progress_when_bytes_arrive() {
    // A frame delivered one byte at a time decodes exactly once, at the
    // final byte.
    let s = schema_a();
    let mut rng = seeded(SEED ^ 3);
    let frame = Frame::Ingest {
        stream: "s".into(),
        tuples: vec![row_a(&s, &mut rng)],
    };
    let buf = encode_stream(std::slice::from_ref(&frame));
    let mut r = FrameReader::new();
    let mut decoded = Vec::new();
    let mut consumed = 0;
    for end in 1..=buf.len() {
        while let Some((f, n)) = r.decode(&buf[consumed..end]).unwrap() {
            decoded.push((f, end));
            consumed += n;
        }
        if end < HEADER_LEN {
            assert!(decoded.is_empty(), "decoded a frame inside the header");
        }
    }
    assert_eq!(consumed, buf.len(), "every byte eventually consumed");
    assert_eq!(decoded.len(), 2, "schema frame + ingest frame");
    // Each frame decodes exactly at the byte that completes it.
    assert!(matches!(decoded[0].0, Frame::Schema { .. }));
    assert!(decoded[0].1 < buf.len());
    assert_eq!(decoded[1].0, frame);
    assert_eq!(decoded[1].1, buf.len());
}
