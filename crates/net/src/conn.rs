//! The TCP listener and per-connection reader/writer threads.
//!
//! Each accepted connection gets:
//!
//! - one egress registration ([`TelegraphCQ::connect_push_client`]) whose
//!   bounded `sync_channel` *is* the per-connection delivery queue: the
//!   router's non-blocking send fills it and then sheds, so a slow socket
//!   stalls only its own queue, never the router lock or other clients;
//! - a **reader thread** that decodes frames off the socket and dispatches
//!   them against the engine (`Submit`, `Subscribe`, `Ingest`, `Punct`,
//!   `Ping`, `Bye`), polling [`FaultPoint::NetRead`] once per *frame* — not
//!   per syscall — so chaos schedules are a deterministic function of what
//!   the peer sent, independent of kernel segmentation;
//! - a **writer thread** that drains the delivery queue, coalesces
//!   consecutive same-query rows into one `Results` frame inside a large
//!   write buffer, and flushes when the buffer crosses the configured
//!   threshold or the queue runs dry — amortizing syscalls the way
//!   `io_batch` amortizes lock acquisitions in-process. Each frame written
//!   polls [`FaultPoint::NetWrite`].
//!
//! Dead-socket accounting: rows the router counted `delivered` that are
//! still sitting in the connection's queue when its socket dies never
//! reached the peer. The writer drains and counts them on every exit path
//! and calls [`TelegraphCQ::disconnect_client_with_loss`], reclassifying
//! exactly those offers as `disconnected_loss` — the ledger invariant
//! `delivered + shed + displaced + disconnected_loss == offered` then
//! describes bytes on the wire, not bytes in a doomed buffer.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender, TryRecvError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use tcq_common::sync::Mutex;
use tcq_common::{FaultAction, FaultPoint, Result, SharedInjector, TcqError};
use tcq_egress::{ClientId, Delivery};
use tcq_server::{TcpTransportConfig, TelegraphCQ};

use crate::wire::{Frame, FrameReader, FrameWriter, WIRE_VERSION};

/// Stack size for connection threads: thousands of mostly-blocked threads
/// must not cost 8 MB of address space each.
const CONN_STACK: usize = 256 * 1024;
/// Socket read timeout — the poll granularity at which reader threads
/// notice a transport shutdown.
const READ_TICK: Duration = Duration::from_millis(100);
/// Shortest park on the delivery queue for a just-active writer: a control
/// frame arriving right after a burst waits at most this long.
const WRITE_TICK: Duration = Duration::from_millis(1);
/// Longest park for a writer that has stayed idle. A fixed 1 ms tick means
/// every idle connection wakes 1000x/s — at a thousand connections that is
/// a million context switches a second, enough to starve the accept loop
/// on a small machine. Idle writers double their park from [`WRITE_TICK`]
/// up to this cap and drop back the moment anything is staged; only
/// control-frame latency on a cold connection pays the cap.
const WRITE_TICK_MAX: Duration = Duration::from_millis(64);

/// Per-connection transport counters (atomics; read while live).
#[derive(Debug, Default)]
pub struct ConnStats {
    /// Server-side connection id (echoed to the peer in `Welcome`).
    pub conn: u64,
    /// Frames decoded off the socket.
    pub frames_read: AtomicU64,
    /// Payload + header bytes read.
    pub bytes_read: AtomicU64,
    /// Ingest rows decoded.
    pub rows_read: AtomicU64,
    /// Frames written to the socket.
    pub frames_written: AtomicU64,
    /// Bytes written to the socket.
    pub bytes_written: AtomicU64,
    /// Result rows written to the socket (what the peer can observe).
    pub rows_written: AtomicU64,
    /// Result rows dropped by an injected [`FaultPoint::NetWrite`] fault.
    pub rows_dropped_net: AtomicU64,
    /// Result rows found undrained in the delivery queue when the
    /// connection died (reported to the egress ledger as
    /// `disconnected_loss`).
    pub rows_lost_disconnect: AtomicU64,
    /// [`FaultPoint::NetRead`] faults that fired on this connection.
    pub read_faults: AtomicU64,
    /// [`FaultPoint::NetWrite`] faults that fired on this connection.
    pub write_faults: AtomicU64,
}

/// One connection's counters, snapshotted ([`TcpTransport::conn_stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConnSnapshot {
    /// Server-side connection id.
    pub conn: u64,
    /// Frames decoded off the socket.
    pub frames_read: u64,
    /// Bytes read.
    pub bytes_read: u64,
    /// Ingest rows decoded.
    pub rows_read: u64,
    /// Frames written.
    pub frames_written: u64,
    /// Bytes written.
    pub bytes_written: u64,
    /// Result rows written.
    pub rows_written: u64,
    /// Result rows dropped by injected write faults.
    pub rows_dropped_net: u64,
    /// Result rows lost in the queue at disconnect.
    pub rows_lost_disconnect: u64,
    /// NetRead faults fired.
    pub read_faults: u64,
    /// NetWrite faults fired.
    pub write_faults: u64,
}

impl ConnStats {
    fn snapshot(&self) -> ConnSnapshot {
        ConnSnapshot {
            conn: self.conn,
            frames_read: self.frames_read.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            rows_read: self.rows_read.load(Ordering::Relaxed),
            frames_written: self.frames_written.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            rows_written: self.rows_written.load(Ordering::Relaxed),
            rows_dropped_net: self.rows_dropped_net.load(Ordering::Relaxed),
            rows_lost_disconnect: self.rows_lost_disconnect.load(Ordering::Relaxed),
            read_faults: self.read_faults.load(Ordering::Relaxed),
            write_faults: self.write_faults.load(Ordering::Relaxed),
        }
    }
}

/// Aggregate transport counters ([`TcpTransport::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Connections accepted over the transport's lifetime.
    pub accepted: u64,
    /// Connections fully torn down (both threads exited).
    pub closed: u64,
    /// Sum of per-connection `frames_read`.
    pub frames_read: u64,
    /// Sum of per-connection `bytes_read`.
    pub bytes_read: u64,
    /// Sum of per-connection `rows_read`.
    pub rows_read: u64,
    /// Sum of per-connection `frames_written`.
    pub frames_written: u64,
    /// Sum of per-connection `bytes_written`.
    pub bytes_written: u64,
    /// Sum of per-connection `rows_written`.
    pub rows_written: u64,
    /// Sum of per-connection `rows_dropped_net`.
    pub rows_dropped_net: u64,
    /// Sum of per-connection `rows_lost_disconnect`.
    pub rows_lost_disconnect: u64,
    /// Sum of per-connection `read_faults`.
    pub read_faults: u64,
    /// Sum of per-connection `write_faults`.
    pub write_faults: u64,
}

enum WriterMsg {
    /// A control reply (Welcome/SubmitOk/Pong/Error/...) to write.
    Frame(Frame),
    /// The reader is done (peer EOF, `Bye`, poison, fault): drain, account,
    /// close.
    Close,
}

struct ConnHandle {
    stats: Arc<ConnStats>,
    stream: TcpStream,
    reader: Option<JoinHandle<()>>,
    writer: Option<JoinHandle<()>>,
}

struct Shared {
    server: Arc<TelegraphCQ>,
    cfg: TcpTransportConfig,
    shutdown: AtomicBool,
    conns: Mutex<Vec<ConnHandle>>,
    accepted: AtomicU64,
    closed: AtomicU64,
    next_conn: AtomicU64,
}

/// The TCP transport: a listener plus every live connection's threads.
/// Created by [`crate::NetServer::start`] when [`ServerConfig::transport`]
/// selects [`TransportConfig::Tcp`].
///
/// [`ServerConfig::transport`]: tcq_server::ServerConfig::transport
/// [`TransportConfig::Tcp`]: tcq_server::TransportConfig::Tcp
pub struct TcpTransport {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
}

impl TcpTransport {
    /// Bind `cfg.addr` and start accepting connections against `server`.
    pub fn bind(server: Arc<TelegraphCQ>, cfg: TcpTransportConfig) -> Result<TcpTransport> {
        let listener = TcpListener::bind(&cfg.addr)
            .map_err(|e| TcqError::Ingress(format!("bind {}: {e}", cfg.addr)))?;
        let addr = listener
            .local_addr()
            .map_err(|e| TcqError::Ingress(format!("local_addr: {e}")))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| TcqError::Ingress(format!("set_nonblocking: {e}")))?;
        let shared = Arc::new(Shared {
            server,
            cfg,
            shutdown: AtomicBool::new(false),
            conns: Mutex::new(Vec::new()),
            accepted: AtomicU64::new(0),
            closed: AtomicU64::new(0),
            next_conn: AtomicU64::new(1),
        });
        let accept = {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name("tcq-net-accept".into())
                .stack_size(CONN_STACK)
                .spawn(move || accept_loop(&shared, listener))
                .map_err(|e| TcqError::Ingress(format!("spawn accept thread: {e}")))?
        };
        Ok(TcpTransport {
            addr,
            shared,
            accept: Some(accept),
        })
    }

    /// The bound address (resolves port 0 to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Aggregate counters over all connections, live and closed.
    pub fn stats(&self) -> NetStats {
        let mut s = NetStats {
            accepted: self.shared.accepted.load(Ordering::Relaxed),
            closed: self.shared.closed.load(Ordering::Relaxed),
            ..NetStats::default()
        };
        for c in self.shared.conns.lock().iter() {
            let snap = c.stats.snapshot();
            s.frames_read += snap.frames_read;
            s.bytes_read += snap.bytes_read;
            s.rows_read += snap.rows_read;
            s.frames_written += snap.frames_written;
            s.bytes_written += snap.bytes_written;
            s.rows_written += snap.rows_written;
            s.rows_dropped_net += snap.rows_dropped_net;
            s.rows_lost_disconnect += snap.rows_lost_disconnect;
            s.read_faults += snap.read_faults;
            s.write_faults += snap.write_faults;
        }
        s
    }

    /// Per-connection counter snapshots, in accept order.
    pub fn conn_stats(&self) -> Vec<ConnSnapshot> {
        self.shared
            .conns
            .lock()
            .iter()
            .map(|c| c.stats.snapshot())
            .collect()
    }

    /// Stop accepting, shut every connection's socket, and join all
    /// transport threads. Idempotent.
    pub fn shutdown(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
        let mut conns = std::mem::take(&mut *self.shared.conns.lock());
        for c in &conns {
            let _ = c.stream.shutdown(Shutdown::Both);
        }
        for c in &mut conns {
            if let Some(t) = c.reader.take() {
                let _ = t.join();
            }
            if let Some(t) = c.writer.take() {
                let _ = t.join();
            }
        }
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(shared: &Arc<Shared>, listener: TcpListener) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                if spawn_conn(shared, stream).is_err() {
                    // Registration or thread spawn failed; the socket just
                    // drops — the peer sees a reset, the engine is untouched.
                    continue;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
}

fn spawn_conn(shared: &Arc<Shared>, stream: TcpStream) -> Result<()> {
    let conn_id = shared.next_conn.fetch_add(1, Ordering::Relaxed);
    let _ = stream.set_nodelay(true);
    stream
        .set_read_timeout(Some(READ_TICK))
        .map_err(|e| TcqError::Ingress(format!("set_read_timeout: {e}")))?;
    // The bounded sync_channel behind this registration is the
    // connection's egress queue.
    let (cid, rx) = shared.server.connect_push_client(shared.cfg.client_queue)?;
    let stats = Arc::new(ConnStats {
        conn: conn_id,
        ..ConnStats::default()
    });
    let (ctrl_tx, ctrl_rx) = channel::<WriterMsg>();

    let write_stream = stream
        .try_clone()
        .map_err(|e| TcqError::Ingress(format!("clone stream: {e}")))?;
    let writer = {
        let shared = shared.clone();
        let stats = stats.clone();
        std::thread::Builder::new()
            .name(format!("tcq-net-w{conn_id}"))
            .stack_size(CONN_STACK)
            .spawn(move || writer_loop(&shared, write_stream, &stats, cid, rx, ctrl_rx))
            .map_err(|e| TcqError::Ingress(format!("spawn writer: {e}")))?
    };
    let reader = {
        let shared = shared.clone();
        let stats = stats.clone();
        let stream = stream
            .try_clone()
            .map_err(|e| TcqError::Ingress(format!("clone stream: {e}")))?;
        std::thread::Builder::new()
            .name(format!("tcq-net-r{conn_id}"))
            .stack_size(CONN_STACK)
            .spawn(move || reader_loop(&shared, stream, &stats, cid, conn_id, ctrl_tx))
            .map_err(|e| TcqError::Ingress(format!("spawn reader: {e}")))?
    };

    shared.accepted.fetch_add(1, Ordering::Relaxed);
    shared.conns.lock().push(ConnHandle {
        stats,
        stream,
        reader: Some(reader),
        writer: Some(writer),
    });
    Ok(())
}

/// Reader thread: socket bytes → frames → engine calls. Returns when the
/// peer closes, the stream poisons, a `NetRead` fault fires, or the
/// transport shuts down; always tells the writer to finish.
fn reader_loop(
    shared: &Arc<Shared>,
    mut stream: TcpStream,
    stats: &ConnStats,
    cid: ClientId,
    conn_id: u64,
    ctrl: Sender<WriterMsg>,
) {
    let injector = shared.server.injector().cloned();
    let mut decoder = FrameReader::new();
    let mut buf: Vec<u8> = Vec::with_capacity(64 * 1024);
    let mut tmp = [0u8; 64 * 1024];
    'conn: while !shared.shutdown.load(Ordering::SeqCst) {
        let n = match stream.read(&mut tmp) {
            Ok(0) => break 'conn,
            Ok(n) => n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => break 'conn,
        };
        stats.bytes_read.fetch_add(n as u64, Ordering::Relaxed);
        buf.extend_from_slice(&tmp[..n]);
        let mut consumed = 0;
        loop {
            match decoder.decode(&buf[consumed..]) {
                Ok(Some((frame, used))) => {
                    consumed += used;
                    stats.frames_read.fetch_add(1, Ordering::Relaxed);
                    // One poll per decoded frame: deterministic in the
                    // peer's frame stream, whatever TCP did to the bytes.
                    if let Some(action) =
                        injector.as_ref().and_then(|i| i.poll(FaultPoint::NetRead))
                    {
                        stats.read_faults.fetch_add(1, Ordering::Relaxed);
                        match action {
                            FaultAction::Stall { ticks } => {
                                std::thread::sleep(Duration::from_millis(ticks));
                            }
                            // Any other action poisons the connection, as
                            // if the peer vanished mid-stream.
                            _ => break 'conn,
                        }
                    }
                    if dispatch(shared, stats, cid, conn_id, frame, &ctrl).is_break() {
                        break 'conn;
                    }
                }
                Ok(None) => break,
                Err(_) => break 'conn, // corrupt stream: poison
            }
        }
        if consumed > 0 {
            buf.drain(..consumed);
        }
    }
    // Reader is done; the writer owns loss accounting and the final close.
    let _ = ctrl.send(WriterMsg::Close);
    let _ = stream.shutdown(Shutdown::Read);
}

fn dispatch(
    shared: &Arc<Shared>,
    stats: &ConnStats,
    cid: ClientId,
    conn_id: u64,
    frame: Frame,
    ctrl: &Sender<WriterMsg>,
) -> std::ops::ControlFlow<()> {
    use std::ops::ControlFlow;
    let server = &shared.server;
    let reply = match frame {
        Frame::Hello { .. } => Some(Frame::Welcome {
            version: WIRE_VERSION,
            conn: conn_id,
        }),
        Frame::Schema { .. } => None, // decoder registered it already
        Frame::Submit { sql } => Some(match server.submit(&sql, cid) {
            Ok(q) => Frame::SubmitOk { query: q as u64 },
            Err(e) => Frame::Error {
                message: e.to_string(),
            },
        }),
        Frame::Subscribe { query } => Some(match server.subscribe_client(cid, query as usize) {
            Ok(()) => Frame::SubscribeOk { query },
            Err(e) => Frame::Error {
                message: e.to_string(),
            },
        }),
        Frame::Ingest { stream, tuples } => {
            stats
                .rows_read
                .fetch_add(tuples.len() as u64, Ordering::Relaxed);
            // Re-anchor rows on the catalog's schema Arc: validates the
            // remote schema against the stream's, and keeps every
            // downstream batch sharing one SchemaRef as in-process pushes
            // do. Blocking push_batch is the backpressure path — a full
            // fjord holds this reader, TCP flow control holds the peer.
            let res = server.catalog().lookup(&stream).and_then(|def| {
                let rows: Result<Vec<_>> = tuples
                    .iter()
                    .map(|t| t.with_schema(def.schema.clone()))
                    .collect();
                server.push_batch(&stream, rows?)
            });
            match res {
                Ok(()) => None,
                Err(e) => Some(Frame::Error {
                    message: e.to_string(),
                }),
            }
        }
        Frame::IngestEof { stream } => match server.finish_stream(&stream) {
            Ok(()) => None,
            Err(e) => Some(Frame::Error {
                message: e.to_string(),
            }),
        },
        Frame::Punct { stream, ts } => match server.punctuate(&stream, ts) {
            Ok(()) => None,
            Err(e) => Some(Frame::Error {
                message: e.to_string(),
            }),
        },
        Frame::Ping { token } => Some(Frame::Pong { token }),
        Frame::Bye => return ControlFlow::Break(()),
        // Server-to-client frames arriving at the server are a protocol
        // violation; answer and keep the connection (the peer may recover).
        Frame::Welcome { .. }
        | Frame::SubmitOk { .. }
        | Frame::SubscribeOk { .. }
        | Frame::Results { .. }
        | Frame::ColumnResults { .. }
        | Frame::Pong { .. }
        | Frame::Error { .. } => Some(Frame::Error {
            message: "unexpected server-side frame".into(),
        }),
    };
    if let Some(f) = reply {
        if ctrl.send(WriterMsg::Frame(f)).is_err() {
            return ControlFlow::Break(()); // writer already gone
        }
    }
    ControlFlow::Continue(())
}

/// Writer thread: delivery queue + control replies → coalesced frames →
/// socket. Owns the connection's teardown accounting.
fn writer_loop(
    shared: &Arc<Shared>,
    mut stream: TcpStream,
    stats: &ConnStats,
    cid: ClientId,
    rx: Receiver<Delivery>,
    ctrl: Receiver<WriterMsg>,
) {
    let injector = shared.server.injector().cloned();
    let mut enc = FrameWriter::new();
    let mut out: Vec<u8> = Vec::with_capacity(shared.cfg.write_coalesce * 2);
    let mut run: Vec<tcq_common::Tuple> = Vec::new();
    let mut run_bytes = 0usize;
    let mut run_q: Option<usize> = None;
    let mut carry: Option<Delivery> = None;
    let mut closing = false; // reader asked us to finish
    let mut kicked = false; // router disconnected us (stuck-client policy)
    let mut sock_dead = false;
    let mut idle_tick = WRITE_TICK;

    // Encode the staged run as one Results frame (NetWrite polled), then
    // clear it.
    macro_rules! flush_run {
        () => {
            if let Some(q) = run_q.take() {
                let rows = run.len() as u64;
                run_bytes = 0;
                let frame = Frame::Results {
                    query: q as u64,
                    tuples: std::mem::take(&mut run),
                };
                stage_frame(&mut enc, &mut out, stats, injector.as_ref(), frame, rows);
            }
        };
    }

    'outer: loop {
        let mut staged = false;
        // Control replies first: a Submit's ack should not wait behind a
        // megabyte of results.
        loop {
            match ctrl.try_recv() {
                Ok(WriterMsg::Frame(f)) => {
                    flush_run!();
                    stage_frame(&mut enc, &mut out, stats, injector.as_ref(), f, 0);
                    staged = true;
                }
                Ok(WriterMsg::Close) => closing = true,
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    closing = true;
                    break;
                }
            }
        }
        // Coalesce deliveries: consecutive same-query rows share a frame,
        // frames pack into `out` until the flush threshold.
        while out.len() + run_bytes < shared.cfg.write_coalesce {
            let d = match carry.take() {
                Some(d) => d,
                None => match rx.try_recv() {
                    Ok(d) => d,
                    Err(TryRecvError::Empty) => break,
                    Err(TryRecvError::Disconnected) => {
                        kicked = true;
                        break;
                    }
                },
            };
            if run_q != Some(d.0) {
                flush_run!();
                run_q = Some(d.0);
            }
            run_bytes += tuple_wire_est(&d.1);
            run.push(d.1);
            staged = true;
        }
        flush_run!();
        if !out.is_empty() && !sock_dead {
            if stream.write_all(&out).is_err() {
                sock_dead = true;
            } else {
                stats
                    .bytes_written
                    .fetch_add(out.len() as u64, Ordering::Relaxed);
            }
            out.clear();
        }
        if kicked || sock_dead || (closing && carry.is_none()) {
            break 'outer;
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            closing = true;
            continue;
        }
        if !staged {
            // Idle: park on the delivery queue, backing off toward
            // WRITE_TICK_MAX while nothing arrives; a control frame at
            // worst waits one current tick.
            match rx.recv_timeout(idle_tick) {
                Ok(d) => {
                    carry = Some(d);
                    idle_tick = WRITE_TICK;
                }
                Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                    idle_tick = (idle_tick * 2).min(WRITE_TICK_MAX);
                }
                Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => kicked = true,
            }
        } else {
            idle_tick = WRITE_TICK;
        }
    }

    // Teardown accounting. Rows still queued (or carried) were counted
    // `delivered` by the router but never reached the wire.
    if kicked {
        // The router already dropped this client and accounted the loss
        // (stuck-client disconnect); nothing further to reclassify.
        let _ = stream.shutdown(Shutdown::Both);
    } else {
        let mut undrained = carry.is_some() as u64 + run.len() as u64;
        while let Ok(_d) = rx.try_recv() {
            undrained += 1;
        }
        if undrained == 0 {
            // Clean close, queue fully drained: an orderly departure, not
            // a forcible disconnect.
            shared.server.disconnect_client(cid);
        } else {
            stats
                .rows_lost_disconnect
                .fetch_add(undrained, Ordering::Relaxed);
            shared.server.disconnect_client_with_loss(cid, undrained);
        }
        let _ = stream.shutdown(Shutdown::Both);
    }
    shared.closed.fetch_add(1, Ordering::Relaxed);
}

/// Rough encoded size of one tuple, for the coalescing threshold: a
/// tagged value is ~9 bytes except strings (length prefix + bytes), plus
/// the timestamp. Close enough that a staged run tracks real frame bytes
/// even when rows carry kilobyte strings.
fn tuple_wire_est(t: &tcq_common::Tuple) -> usize {
    17 + t
        .values()
        .iter()
        .map(|v| match v {
            tcq_common::Value::Str(s) => 5 + s.len(),
            _ => 9,
        })
        .sum::<usize>()
}

/// Encode one frame into `out`, polling [`FaultPoint::NetWrite`]:
/// `Stall` delays, any other action drops the frame (rows counted in
/// `rows_dropped_net`).
fn stage_frame(
    enc: &mut FrameWriter,
    out: &mut Vec<u8>,
    stats: &ConnStats,
    injector: Option<&SharedInjector>,
    frame: Frame,
    rows: u64,
) {
    if let Some(action) = injector.and_then(|i| i.poll(FaultPoint::NetWrite)) {
        stats.write_faults.fetch_add(1, Ordering::Relaxed);
        match action {
            FaultAction::Stall { ticks } => {
                std::thread::sleep(Duration::from_millis(ticks));
            }
            _ => {
                stats.rows_dropped_net.fetch_add(rows, Ordering::Relaxed);
                return;
            }
        }
    }
    enc.encode(&frame, out);
    stats.frames_written.fetch_add(1, Ordering::Relaxed);
    stats.rows_written.fetch_add(rows, Ordering::Relaxed);
}
