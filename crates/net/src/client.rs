//! The blocking remote client: what a real subscriber or ingest process
//! runs on its side of the socket. One [`TcqClient`] owns one connection;
//! the bench fleet spawns thousands of them.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use tcq_common::{Result, TcqError, Timestamp, Tuple};

use crate::wire::{Frame, FrameReader, FrameWriter, WIRE_VERSION};

/// A batch of result rows received from the server: the query id, the
/// rows, and whether they traveled as a columnar frame.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultBatch {
    /// The standing query these rows answer.
    pub query: u64,
    /// The rows, in delivery order.
    pub tuples: Vec<Tuple>,
    /// True when the server sent a `ColumnResults` frame (columnar egress).
    pub columnar: bool,
}

/// A blocking TCP client speaking the [`crate::wire`] protocol.
///
/// Reads are timeout-bounded ([`TcqClient::next_results`] returns
/// `Ok(None)` on a quiet socket), writes block under TCP backpressure —
/// which is exactly how server-side ingress admission control reaches a
/// remote producer.
pub struct TcqClient {
    stream: TcpStream,
    enc: FrameWriter,
    dec: FrameReader,
    inbuf: Vec<u8>,
    outbuf: Vec<u8>,
    inbox: VecDeque<Frame>,
    conn: u64,
}

impl TcqClient {
    /// Connect, handshake (`Hello`/`Welcome`), and return the client.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<TcqClient> {
        let stream = TcpStream::connect(addr).map_err(|e| net_err("connect", &e))?;
        let _ = stream.set_nodelay(true);
        let mut c = TcqClient {
            stream,
            enc: FrameWriter::new(),
            dec: FrameReader::new(),
            inbuf: Vec::with_capacity(64 * 1024),
            outbuf: Vec::new(),
            inbox: VecDeque::new(),
            conn: 0,
        };
        c.send(&Frame::Hello {
            version: WIRE_VERSION,
        })?;
        match c.wait_reply(Duration::from_secs(5), |f| {
            matches!(f, Frame::Welcome { .. })
        })? {
            Some(Frame::Welcome { conn, .. }) => {
                c.conn = conn;
                Ok(c)
            }
            _ => Err(TcqError::Ingress("wire: no Welcome from server".into())),
        }
    }

    /// The server-side connection id from the handshake — joins this
    /// client against the server's per-connection transport counters.
    pub fn conn_id(&self) -> u64 {
        self.conn
    }

    /// Submit a continuous query; this connection is auto-subscribed to
    /// its results.
    pub fn submit(&mut self, sql: &str) -> Result<u64> {
        self.send(&Frame::Submit { sql: sql.into() })?;
        match self.wait_reply(Duration::from_secs(10), |f| {
            matches!(f, Frame::SubmitOk { .. } | Frame::Error { .. })
        })? {
            Some(Frame::SubmitOk { query }) => Ok(query),
            Some(Frame::Error { message }) => Err(TcqError::Ingress(message)),
            _ => Err(timeout_err("SubmitOk")),
        }
    }

    /// Subscribe to an already-running query's results.
    pub fn subscribe(&mut self, query: u64) -> Result<()> {
        self.send(&Frame::Subscribe { query })?;
        match self.wait_reply(Duration::from_secs(10), |f| {
            matches!(f, Frame::SubscribeOk { .. } | Frame::Error { .. })
        })? {
            Some(Frame::SubscribeOk { .. }) => Ok(()),
            Some(Frame::Error { message }) => Err(TcqError::Ingress(message)),
            _ => Err(timeout_err("SubscribeOk")),
        }
    }

    /// Ship a batch of tuples into `stream`. No acknowledgement: failures
    /// surface asynchronously as `Error` frames (and from the blocking
    /// backpressure of the socket itself).
    pub fn ingest(&mut self, stream: &str, tuples: Vec<Tuple>) -> Result<()> {
        self.send(&Frame::Ingest {
            stream: stream.into(),
            tuples,
        })
    }

    /// Signal end-of-stream for `stream`.
    pub fn finish(&mut self, stream: &str) -> Result<()> {
        self.send(&Frame::IngestEof {
            stream: stream.into(),
        })
    }

    /// Send a punctuation for `stream`.
    pub fn punctuate(&mut self, stream: &str, ts: Timestamp) -> Result<()> {
        self.send(&Frame::Punct {
            stream: stream.into(),
            ts,
        })
    }

    /// Round-trip a ping; returns the measured latency.
    pub fn ping(&mut self, token: u64) -> Result<Duration> {
        let start = Instant::now();
        self.send(&Frame::Ping { token })?;
        match self.wait_reply(
            Duration::from_secs(5),
            move |f| matches!(f, Frame::Pong { token: t } if *t == token),
        )? {
            Some(_) => Ok(start.elapsed()),
            None => Err(timeout_err("Pong")),
        }
    }

    /// The next batch of results, waiting up to `timeout` for the socket.
    /// `Ok(None)` means the socket stayed quiet — not end of stream.
    /// Non-result frames (pongs, schema updates) are skipped; an `Error`
    /// frame surfaces as `Err`.
    pub fn next_results(&mut self, timeout: Duration) -> Result<Option<ResultBatch>> {
        let deadline = Instant::now() + timeout;
        loop {
            while let Some(f) = self.inbox.pop_front() {
                match f {
                    Frame::Results { query, tuples } => {
                        return Ok(Some(ResultBatch {
                            query,
                            tuples,
                            columnar: false,
                        }))
                    }
                    Frame::ColumnResults { query, tuples } => {
                        return Ok(Some(ResultBatch {
                            query,
                            tuples,
                            columnar: true,
                        }))
                    }
                    Frame::Error { message } => return Err(TcqError::Ingress(message)),
                    _ => {}
                }
            }
            let now = Instant::now();
            if now >= deadline {
                return Ok(None);
            }
            if self.fill(deadline - now)? == 0 && Instant::now() >= deadline {
                return Ok(None);
            }
        }
    }

    /// Announce a clean close and shut the socket down.
    pub fn bye(mut self) -> Result<()> {
        self.send(&Frame::Bye)?;
        let _ = self.stream.shutdown(Shutdown::Both);
        Ok(())
    }

    /// Drop the connection abruptly (no `Bye`) — what a crashing or
    /// vanishing client looks like to the server.
    pub fn abort(self) {
        let _ = self.stream.shutdown(Shutdown::Both);
    }

    fn send(&mut self, frame: &Frame) -> Result<()> {
        self.outbuf.clear();
        self.enc.encode(frame, &mut self.outbuf);
        self.stream
            .write_all(&self.outbuf)
            .map_err(|e| net_err("write", &e))
    }

    /// Read once (bounded by `timeout`) and decode everything buffered;
    /// returns how many frames arrived in the inbox.
    fn fill(&mut self, timeout: Duration) -> Result<usize> {
        let mut added = self.drain_decoder()?;
        if added > 0 {
            return Ok(added);
        }
        self.stream
            .set_read_timeout(Some(timeout.max(Duration::from_millis(1))))
            .map_err(|e| net_err("set_read_timeout", &e))?;
        let mut tmp = [0u8; 64 * 1024];
        match self.stream.read(&mut tmp) {
            Ok(0) => Err(TcqError::Disconnected("wire: server closed connection")),
            Ok(n) => {
                self.inbuf.extend_from_slice(&tmp[..n]);
                added += self.drain_decoder()?;
                Ok(added)
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                Ok(0)
            }
            Err(e) => Err(net_err("read", &e)),
        }
    }

    fn drain_decoder(&mut self) -> Result<usize> {
        let mut consumed = 0;
        let mut added = 0;
        while let Some((frame, n)) = self.dec.decode(&self.inbuf[consumed..])? {
            consumed += n;
            self.inbox.push_back(frame);
            added += 1;
        }
        if consumed > 0 {
            self.inbuf.drain(..consumed);
        }
        Ok(added)
    }

    /// Wait for the first frame matching `pred`, parking every other frame
    /// in the inbox (in order) so result delivery interleaved with a
    /// control reply is never lost or reordered.
    fn wait_reply(
        &mut self,
        timeout: Duration,
        pred: impl Fn(&Frame) -> bool,
    ) -> Result<Option<Frame>> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(pos) = self.inbox.iter().position(&pred) {
                return Ok(self.inbox.remove(pos));
            }
            let now = Instant::now();
            if now >= deadline {
                return Ok(None);
            }
            self.fill(deadline - now)?;
        }
    }
}

fn net_err(what: &str, e: &std::io::Error) -> TcqError {
    TcqError::Ingress(format!("wire: {what}: {e}"))
}

fn timeout_err(what: &str) -> TcqError {
    TcqError::Ingress(format!("wire: timed out waiting for {what}"))
}
