//! The TelegraphCQ wire protocol: length-prefixed, checksummed frames.
//!
//! Every frame is `magic(4) | kind(1) | len(4) | checksum(8) | payload(len)`,
//! all integers little-endian. The checksum is FNV-1a ([`tcq_common::Fnv1a`],
//! the same function the storage layer trusts) over `kind || len || payload`,
//! so a bit flip anywhere past the magic — including a kind byte rewritten
//! into a *different valid kind* — is detected, not misparsed.
//!
//! Payloads reuse the checkpoint codec ([`CkptWriter`]/[`CkptReader`]):
//! tagged values, length-prefixed strings, out-of-band schemas. Schemas
//! travel once per connection as a `Schema` frame assigning a small id;
//! every tuple-carrying frame then references the id. [`FrameReader`] keeps
//! the id → schema table and [`FrameWriter`] keeps the reverse map, so both
//! ends pay the schema cost once, not per batch.
//!
//! Decoding discipline (the same prefix-validity rule as `StreamArchive`
//! page recovery): a byte stream cut at *any* point yields every complete
//! frame before the cut ([`FrameReader::decode`] returns `Ok(Some)`), then
//! reports the tail as either "incomplete — wait for more bytes"
//! (`Ok(None)`) or "corrupt — poison the connection" (`Err`). A torn tail
//! is never an error (TCP delivers byte streams, not frames), and corruption
//! is never silently skipped (unlike the archive, a socket has no page
//! boundary to resynchronize on — the connection dies instead).

use std::collections::HashMap;
use std::hash::Hasher;

use tcq_common::{
    CkptReader, CkptWriter, DataType, Field, Fnv1a, Result, Schema, SchemaRef, TcqError, Timestamp,
    Tuple,
};

/// Frame magic: "TCQ!" little-endian.
pub const WIRE_MAGIC: u32 = 0x2151_4354;
/// Protocol version carried in `Hello`/`Welcome`.
pub const WIRE_VERSION: u32 = 1;
/// Fixed header size: magic(4) + kind(1) + len(4) + checksum(8).
pub const HEADER_LEN: usize = 17;
/// Upper bound on one frame's payload; a larger advertised length is
/// corruption (or an unreasonable peer), not something to buffer for.
pub const MAX_PAYLOAD: usize = 16 * 1024 * 1024;

const KIND_HELLO: u8 = 1;
const KIND_WELCOME: u8 = 2;
const KIND_SCHEMA: u8 = 3;
const KIND_SUBMIT: u8 = 4;
const KIND_SUBMIT_OK: u8 = 5;
const KIND_SUBSCRIBE: u8 = 6;
const KIND_SUBSCRIBE_OK: u8 = 7;
const KIND_INGEST: u8 = 8;
const KIND_INGEST_EOF: u8 = 9;
const KIND_PUNCT: u8 = 10;
const KIND_RESULTS: u8 = 11;
const KIND_COLUMN_RESULTS: u8 = 12;
const KIND_PING: u8 = 13;
const KIND_PONG: u8 = 14;
const KIND_ERROR: u8 = 15;
const KIND_BYE: u8 = 16;

/// One decoded wire frame. Tuple-carrying variants hold materialized rows;
/// the schema-id indirection is internal to the codec (resolved by
/// [`FrameReader`], assigned by [`FrameWriter`]).
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Client handshake: first frame on every connection.
    Hello {
        /// The client's [`WIRE_VERSION`].
        version: u32,
    },
    /// Server handshake reply. `conn` is the server-side connection id —
    /// benches join it against per-connection transport stats for exact
    /// end-to-end accounting.
    Welcome {
        /// The server's [`WIRE_VERSION`].
        version: u32,
        /// Server-side connection id.
        conn: u64,
    },
    /// Assigns `id` to `schema` for the rest of the connection. Sent
    /// lazily by each side before the first frame that references the id.
    Schema {
        /// Connection-scoped schema id.
        id: u32,
        /// The schema (per-field qualifiers preserved).
        schema: SchemaRef,
    },
    /// Submit a continuous query; the connection is auto-subscribed.
    Submit {
        /// The query text.
        sql: String,
    },
    /// Successful submit reply.
    SubmitOk {
        /// The standing query's id.
        query: u64,
    },
    /// Subscribe this connection to an already-running query.
    Subscribe {
        /// The query to subscribe to.
        query: u64,
    },
    /// Successful subscribe reply.
    SubscribeOk {
        /// The subscribed query.
        query: u64,
    },
    /// A batch of tuples for one stream (client → server).
    Ingest {
        /// Target stream.
        stream: String,
        /// The rows; all share one schema.
        tuples: Vec<Tuple>,
    },
    /// End-of-stream marker (client → server).
    IngestEof {
        /// The finished stream.
        stream: String,
    },
    /// A punctuation \[TMSS03\] for one stream (client → server): no later
    /// tuple will carry a timestamp ≤ `ts`.
    Punct {
        /// Target stream.
        stream: String,
        /// The punctuated bound.
        ts: Timestamp,
    },
    /// A batch of result rows for one query (server → client).
    Results {
        /// The answered query.
        query: u64,
        /// The result rows.
        tuples: Vec<Tuple>,
    },
    /// Result rows that left the server as one columnar batch (the
    /// columnar egress path); the kind tag is distinct so clients can
    /// observe which path produced them, but rows decode identically.
    ColumnResults {
        /// The answered query.
        query: u64,
        /// The batch rows.
        tuples: Vec<Tuple>,
    },
    /// Liveness probe.
    Ping {
        /// Echoed back in the `Pong`.
        token: u64,
    },
    /// Liveness probe reply.
    Pong {
        /// The `Ping`'s token.
        token: u64,
    },
    /// A request failed; the connection stays usable.
    Error {
        /// Human-readable failure description.
        message: String,
    },
    /// Clean close: the sender will write nothing further.
    Bye,
}

impl Frame {
    fn kind(&self) -> u8 {
        match self {
            Frame::Hello { .. } => KIND_HELLO,
            Frame::Welcome { .. } => KIND_WELCOME,
            Frame::Schema { .. } => KIND_SCHEMA,
            Frame::Submit { .. } => KIND_SUBMIT,
            Frame::SubmitOk { .. } => KIND_SUBMIT_OK,
            Frame::Subscribe { .. } => KIND_SUBSCRIBE,
            Frame::SubscribeOk { .. } => KIND_SUBSCRIBE_OK,
            Frame::Ingest { .. } => KIND_INGEST,
            Frame::IngestEof { .. } => KIND_INGEST_EOF,
            Frame::Punct { .. } => KIND_PUNCT,
            Frame::Results { .. } => KIND_RESULTS,
            Frame::ColumnResults { .. } => KIND_COLUMN_RESULTS,
            Frame::Ping { .. } => KIND_PING,
            Frame::Pong { .. } => KIND_PONG,
            Frame::Error { .. } => KIND_ERROR,
            Frame::Bye => KIND_BYE,
        }
    }

    /// Number of result/ingest rows the frame carries (0 for control
    /// frames) — what the transport's row ledgers count.
    pub fn row_count(&self) -> usize {
        match self {
            Frame::Ingest { tuples, .. }
            | Frame::Results { tuples, .. }
            | Frame::ColumnResults { tuples, .. } => tuples.len(),
            _ => 0,
        }
    }
}

fn checksum(kind: u8, payload: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.write(&[kind]);
    h.write(&(payload.len() as u32).to_le_bytes());
    h.write(payload);
    h.finish()
}

fn corrupt(what: impl Into<String>) -> TcqError {
    TcqError::Ingress(format!("wire: {}", what.into()))
}

fn put_schema(w: &mut CkptWriter, id: u32, schema: &Schema) {
    w.put_u32(id);
    w.put_u32(schema.len() as u32);
    for (i, f) in schema.fields().iter().enumerate() {
        w.put_str(schema.qualifier(i));
        w.put_str(&f.name);
        w.put_u8(match f.data_type {
            DataType::Bool => 0,
            DataType::Int => 1,
            DataType::Float => 2,
            DataType::Str => 3,
        });
    }
}

fn get_schema(r: &mut CkptReader<'_>) -> Result<(u32, Schema)> {
    let id = r.get_u32("schema id")?;
    let n = r.get_u32("schema field count")? as usize;
    if n > 4096 {
        return Err(corrupt(format!("schema with {n} fields")));
    }
    let mut acc: Option<Schema> = None;
    for _ in 0..n {
        let q = r.get_str("field qualifier")?;
        let name = r.get_str("field name")?;
        let dt = match r.get_u8("field type")? {
            0 => DataType::Bool,
            1 => DataType::Int,
            2 => DataType::Float,
            3 => DataType::Str,
            t => return Err(corrupt(format!("unknown field type tag {t}"))),
        };
        let one = if q.is_empty() {
            Schema::new(vec![Field::new(name, dt)])
        } else {
            Schema::qualified(q, vec![Field::new(name, dt)])
        };
        acc = Some(match acc {
            None => one,
            Some(a) => a.concat(&one),
        });
    }
    Ok((id, acc.unwrap_or_else(|| Schema::new(Vec::new()))))
}

fn put_timestamp(w: &mut CkptWriter, ts: Timestamp) {
    let flags: u8 = (ts.logical.is_some() as u8) | ((ts.physical.is_some() as u8) << 1);
    w.put_u8(flags);
    if let Some(l) = ts.logical {
        w.put_i64(l);
    }
    if let Some(p) = ts.physical {
        w.put_i64(p);
    }
}

fn get_timestamp(r: &mut CkptReader<'_>) -> Result<Timestamp> {
    let flags = r.get_u8("timestamp flags")?;
    let mut ts = Timestamp::unknown();
    if flags & 1 != 0 {
        ts.logical = Some(r.get_i64("logical ts")?);
    }
    if flags & 2 != 0 {
        ts.physical = Some(r.get_i64("physical ts")?);
    }
    Ok(ts)
}

/// Encodes frames into a byte buffer, managing the connection's outbound
/// schema table: the first batch under a given schema is preceded by a
/// `Schema` frame, later batches reference the id.
#[derive(Debug, Default)]
pub struct FrameWriter {
    /// Schema identity (by `Arc` pointer) → assigned id. Two structurally
    /// equal but distinct `Arc`s would ship the schema twice under two
    /// ids — wasteful, never wrong — and in practice every batch for a
    /// query shares one `SchemaRef`.
    ids: HashMap<usize, u32>,
    next_id: u32,
}

impl FrameWriter {
    /// A writer with an empty schema table.
    pub fn new() -> Self {
        FrameWriter::default()
    }

    fn frame(out: &mut Vec<u8>, kind: u8, payload: &[u8]) {
        out.extend_from_slice(&WIRE_MAGIC.to_le_bytes());
        out.push(kind);
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&checksum(kind, payload).to_le_bytes());
        out.extend_from_slice(payload);
    }

    fn schema_id(&mut self, out: &mut Vec<u8>, schema: &SchemaRef) -> u32 {
        let key = std::sync::Arc::as_ptr(schema) as usize;
        if let Some(&id) = self.ids.get(&key) {
            return id;
        }
        let id = self.next_id;
        self.next_id += 1;
        self.ids.insert(key, id);
        let mut w = CkptWriter::new();
        put_schema(&mut w, id, schema);
        Self::frame(out, KIND_SCHEMA, &w.into_bytes());
        id
    }

    /// Encode one frame into `out`. Tuple-carrying frames first emit any
    /// `Schema` frame the receiver hasn't seen. `Ingest`/`Results` rows
    /// must all share the leading row's schema (they do on every engine
    /// path; mixed batches are a caller bug and panic in debug builds).
    pub fn encode(&mut self, frame: &Frame, out: &mut Vec<u8>) {
        let mut w = CkptWriter::new();
        match frame {
            Frame::Hello { version } => w.put_u32(*version),
            Frame::Welcome { version, conn } => {
                w.put_u32(*version);
                w.put_u64(*conn);
            }
            Frame::Schema { id, schema } => put_schema(&mut w, *id, schema),
            Frame::Submit { sql } => w.put_str(sql),
            Frame::SubmitOk { query } => w.put_u64(*query),
            Frame::Subscribe { query } => w.put_u64(*query),
            Frame::SubscribeOk { query } => w.put_u64(*query),
            Frame::Ingest { stream, tuples } => {
                let sid = match tuples.first() {
                    Some(t) => self.schema_id(out, t.schema()),
                    None => u32::MAX,
                };
                w.put_str(stream);
                w.put_u32(sid);
                w.put_u32(tuples.len() as u32);
                for t in tuples {
                    debug_assert!(std::sync::Arc::ptr_eq(t.schema(), tuples[0].schema()));
                    w.put_tuple(t);
                }
            }
            Frame::IngestEof { stream } => w.put_str(stream),
            Frame::Punct { stream, ts } => {
                w.put_str(stream);
                put_timestamp(&mut w, *ts);
            }
            Frame::Results { query, tuples } | Frame::ColumnResults { query, tuples } => {
                let sid = match tuples.first() {
                    Some(t) => self.schema_id(out, t.schema()),
                    None => u32::MAX,
                };
                w.put_u64(*query);
                w.put_u32(sid);
                w.put_u32(tuples.len() as u32);
                for t in tuples {
                    w.put_tuple(t);
                }
            }
            Frame::Ping { token } => w.put_u64(*token),
            Frame::Pong { token } => w.put_u64(*token),
            Frame::Error { message } => w.put_str(message),
            Frame::Bye => {}
        }
        Self::frame(out, frame.kind(), &w.into_bytes());
    }
}

/// Decodes frames off a growing byte buffer, maintaining the connection's
/// inbound schema table (see module docs for the prefix-validity rule).
#[derive(Debug, Default)]
pub struct FrameReader {
    schemas: HashMap<u32, SchemaRef>,
}

impl FrameReader {
    /// A reader with an empty schema table.
    pub fn new() -> Self {
        FrameReader::default()
    }

    /// Try to decode one frame from the front of `buf`.
    ///
    /// - `Ok(Some((frame, consumed)))` — a complete, checksummed frame;
    ///   the caller drops `consumed` bytes and calls again.
    /// - `Ok(None)` — the buffer holds only a torn tail (partial header
    ///   or partial payload); read more bytes and retry.
    /// - `Err(_)` — corruption (bad magic, oversize length, checksum or
    ///   payload mismatch): the stream is poisoned and the connection
    ///   must close. Frames decoded before this point remain valid.
    pub fn decode(&mut self, buf: &[u8]) -> Result<Option<(Frame, usize)>> {
        if buf.len() < HEADER_LEN {
            return Ok(None);
        }
        let magic = u32::from_le_bytes(buf[0..4].try_into().expect("4 bytes"));
        if magic != WIRE_MAGIC {
            return Err(corrupt(format!("bad magic {magic:#010x}")));
        }
        let kind = buf[4];
        let len = u32::from_le_bytes(buf[5..9].try_into().expect("4 bytes")) as usize;
        if len > MAX_PAYLOAD {
            return Err(corrupt(format!("payload length {len} exceeds cap")));
        }
        let want = u64::from_le_bytes(buf[9..17].try_into().expect("8 bytes"));
        if buf.len() < HEADER_LEN + len {
            return Ok(None);
        }
        let payload = &buf[HEADER_LEN..HEADER_LEN + len];
        if checksum(kind, payload) != want {
            return Err(corrupt("checksum mismatch"));
        }
        let frame = self.parse(kind, payload)?;
        Ok(Some((frame, HEADER_LEN + len)))
    }

    fn schema(&self, id: u32, what: &str) -> Result<SchemaRef> {
        self.schemas
            .get(&id)
            .cloned()
            .ok_or_else(|| corrupt(format!("{what} references unknown schema id {id}")))
    }

    fn get_rows(&self, r: &mut CkptReader<'_>, sid: u32, what: &str) -> Result<Vec<Tuple>> {
        let n = r.get_u32("row count")? as usize;
        if n == 0 {
            return Ok(Vec::new());
        }
        let schema = self.schema(sid, what)?;
        let mut rows = Vec::with_capacity(n.min(64 * 1024));
        for _ in 0..n {
            rows.push(r.get_tuple(&schema)?);
        }
        Ok(rows)
    }

    fn parse(&mut self, kind: u8, payload: &[u8]) -> Result<Frame> {
        let mut r = CkptReader::new(payload);
        let frame = match kind {
            KIND_HELLO => Frame::Hello {
                version: r.get_u32("hello version")?,
            },
            KIND_WELCOME => Frame::Welcome {
                version: r.get_u32("welcome version")?,
                conn: r.get_u64("welcome conn")?,
            },
            KIND_SCHEMA => {
                let (id, schema) = get_schema(&mut r)?;
                let schema = schema.into_ref();
                self.schemas.insert(id, schema.clone());
                Frame::Schema { id, schema }
            }
            KIND_SUBMIT => Frame::Submit {
                sql: r.get_str("submit sql")?,
            },
            KIND_SUBMIT_OK => Frame::SubmitOk {
                query: r.get_u64("submit-ok query")?,
            },
            KIND_SUBSCRIBE => Frame::Subscribe {
                query: r.get_u64("subscribe query")?,
            },
            KIND_SUBSCRIBE_OK => Frame::SubscribeOk {
                query: r.get_u64("subscribe-ok query")?,
            },
            KIND_INGEST => {
                let stream = r.get_str("ingest stream")?;
                let sid = r.get_u32("ingest schema id")?;
                let tuples = self.get_rows(&mut r, sid, "ingest")?;
                Frame::Ingest { stream, tuples }
            }
            KIND_INGEST_EOF => Frame::IngestEof {
                stream: r.get_str("ingest-eof stream")?,
            },
            KIND_PUNCT => Frame::Punct {
                stream: r.get_str("punct stream")?,
                ts: get_timestamp(&mut r)?,
            },
            KIND_RESULTS | KIND_COLUMN_RESULTS => {
                let query = r.get_u64("results query")?;
                let sid = r.get_u32("results schema id")?;
                let tuples = self.get_rows(&mut r, sid, "results")?;
                if kind == KIND_RESULTS {
                    Frame::Results { query, tuples }
                } else {
                    Frame::ColumnResults { query, tuples }
                }
            }
            KIND_PING => Frame::Ping {
                token: r.get_u64("ping token")?,
            },
            KIND_PONG => Frame::Pong {
                token: r.get_u64("pong token")?,
            },
            KIND_ERROR => Frame::Error {
                message: r.get_str("error message")?,
            },
            KIND_BYE => Frame::Bye,
            k => return Err(corrupt(format!("unknown frame kind {k}"))),
        };
        if !r.is_empty() {
            return Err(corrupt(format!(
                "{} trailing bytes after frame payload",
                r.remaining()
            )));
        }
        Ok(frame)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcq_common::TupleBuilder;

    fn schema() -> SchemaRef {
        Schema::qualified(
            "s",
            vec![
                Field::new("k", DataType::Int),
                Field::new("v", DataType::Float),
                Field::new("tag", DataType::Str),
            ],
        )
        .into_ref()
    }

    fn row(s: &SchemaRef, k: i64) -> Tuple {
        TupleBuilder::new(s.clone())
            .push(k)
            .push(k as f64 * 0.5)
            .push(format!("t{k}"))
            .at(Timestamp::both(k, 1000 + k))
            .build()
            .unwrap()
    }

    #[test]
    fn control_frames_round_trip() {
        let mut w = FrameWriter::new();
        let mut r = FrameReader::new();
        let frames = vec![
            Frame::Hello {
                version: WIRE_VERSION,
            },
            Frame::Welcome {
                version: WIRE_VERSION,
                conn: 42,
            },
            Frame::Submit {
                sql: "SELECT * FROM s".into(),
            },
            Frame::SubmitOk { query: 7 },
            Frame::Subscribe { query: 7 },
            Frame::SubscribeOk { query: 7 },
            Frame::IngestEof { stream: "s".into() },
            Frame::Punct {
                stream: "s".into(),
                ts: Timestamp::both(5, 999),
            },
            Frame::Ping { token: 1 },
            Frame::Pong { token: 1 },
            Frame::Error {
                message: "no".into(),
            },
            Frame::Bye,
        ];
        let mut buf = Vec::new();
        for f in &frames {
            w.encode(f, &mut buf);
        }
        let mut got = Vec::new();
        let mut off = 0;
        while let Some((f, n)) = r.decode(&buf[off..]).unwrap() {
            got.push(f);
            off += n;
        }
        assert_eq!(off, buf.len());
        assert_eq!(got, frames);
    }

    #[test]
    fn tuple_frames_ship_schema_once() {
        let s = schema();
        let mut w = FrameWriter::new();
        let mut buf = Vec::new();
        w.encode(
            &Frame::Ingest {
                stream: "s".into(),
                tuples: vec![row(&s, 1), row(&s, 2)],
            },
            &mut buf,
        );
        let after_first = buf.len();
        w.encode(
            &Frame::Results {
                query: 3,
                tuples: vec![row(&s, 9)],
            },
            &mut buf,
        );

        let mut r = FrameReader::new();
        let mut frames = Vec::new();
        let mut off = 0;
        while let Some((f, n)) = r.decode(&buf[off..]).unwrap() {
            frames.push(f);
            off += n;
        }
        // Schema frame precedes the first batch and is not repeated.
        assert!(matches!(frames[0], Frame::Schema { id: 0, .. }));
        assert_eq!(
            frames[1],
            Frame::Ingest {
                stream: "s".into(),
                tuples: vec![row(&s, 1), row(&s, 2)],
            }
        );
        assert_eq!(
            frames[2],
            Frame::Results {
                query: 3,
                tuples: vec![row(&s, 9)],
            }
        );
        assert_eq!(frames.len(), 3);
        // The second tuple frame reuses the id: strictly smaller on the
        // wire than the first (which paid for the schema).
        assert!(buf.len() - after_first < after_first);
        // Decoded rows carry the full schema, qualifiers included.
        if let Frame::Ingest { tuples, .. } = &frames[1] {
            assert_eq!(tuples[0].schema().qualifier(0), "s");
            assert_eq!(tuples[0].timestamp(), Timestamp::both(1, 1001));
        }
    }

    #[test]
    fn empty_batch_needs_no_schema() {
        let mut w = FrameWriter::new();
        let mut buf = Vec::new();
        w.encode(
            &Frame::Results {
                query: 1,
                tuples: Vec::new(),
            },
            &mut buf,
        );
        let mut r = FrameReader::new();
        let (f, n) = r.decode(&buf).unwrap().unwrap();
        assert_eq!(n, buf.len());
        assert_eq!(
            f,
            Frame::Results {
                query: 1,
                tuples: Vec::new(),
            }
        );
    }

    #[test]
    fn unknown_schema_id_is_corruption() {
        let s = schema();
        let mut w = FrameWriter::new();
        let mut schema_and_batch = Vec::new();
        w.encode(
            &Frame::Ingest {
                stream: "s".into(),
                tuples: vec![row(&s, 1)],
            },
            &mut schema_and_batch,
        );
        // Replay only the batch frame against a reader that never saw the
        // schema frame.
        let mut r = FrameReader::new();
        let (_, schema_len) = r.decode(&schema_and_batch).unwrap().unwrap();
        let mut fresh = FrameReader::new();
        assert!(fresh.decode(&schema_and_batch[schema_len..]).is_err());
    }
}
