//! Network transport for TelegraphCQ-rs: real TCP ingress/egress.
//!
//! The engine core ([`TelegraphCQ`]) only ever speaks its in-process API —
//! `push_batch`, `submit`, bounded egress channels. This crate puts a wire
//! on that API without the core noticing:
//!
//! - [`wire`] — the length-prefixed, FNV-1a-checksummed frame codec
//!   (tuple batches, column batches, puncts/EOF, subscribe/submit control
//!   frames), built on the checkpoint codec;
//! - [`TcpTransport`] — a listener plus per-connection reader/writer
//!   threads with bounded per-connection egress queues and a coalescing
//!   writer ([`conn`] module docs);
//! - [`TcqClient`] — the blocking remote client the bench fleet and tests
//!   drive.
//!
//! [`NetServer::start`] reads [`ServerConfig::transport`] to pick the
//! [`Transport`]: [`TransportConfig::InProcess`] (the default — no sockets,
//! the deterministic chaos-replay harness) or [`TransportConfig::Tcp`].
//! The selection is strictly additive: the TCP transport drives the same
//! public facade as any in-process caller, so the server core — dispatcher,
//! eddies, egress ledger — replays byte-identically whichever transport
//! fronts it (pinned by `tests/server_chaos.rs`).
//!
//! [`ServerConfig::transport`]: tcq_server::ServerConfig::transport

#![warn(missing_docs)]

pub mod client;
pub mod conn;
pub mod wire;

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

use tcq_common::{Result, TcqError};
use tcq_server::{ServerConfig, TelegraphCQ, TransportConfig};

pub use client::TcqClient;
pub use conn::{ConnSnapshot, NetStats, TcpTransport};
pub use wire::{Frame, FrameReader, FrameWriter, MAX_PAYLOAD, WIRE_MAGIC, WIRE_VERSION};

/// What fronts the engine: how remote (or in-process) clients reach it.
/// Implementations must be strictly additive over the in-process facade —
/// a transport may *drive* the engine, never reach around it.
pub trait Transport: Send {
    /// Short human-readable transport name.
    fn name(&self) -> &'static str;
    /// The bound socket address, when the transport listens on one.
    fn local_addr(&self) -> Option<SocketAddr>;
    /// Aggregate wire counters (all zeros for in-process).
    fn stats(&self) -> NetStats;
    /// Per-connection counters (empty for in-process).
    fn conn_stats(&self) -> Vec<ConnSnapshot>;
    /// Stop listening and tear down every connection, joining all threads.
    fn shutdown(&mut self);
}

/// The default transport: no sockets at all. Clients use the facade
/// directly ([`TelegraphCQ::connect_push_client`], `push_batch`, ...).
/// This is the deterministic test harness — kernel scheduling never enters
/// the replay path.
#[derive(Debug, Default)]
pub struct InProcessTransport;

impl Transport for InProcessTransport {
    fn name(&self) -> &'static str {
        "in-process"
    }
    fn local_addr(&self) -> Option<SocketAddr> {
        None
    }
    fn stats(&self) -> NetStats {
        NetStats::default()
    }
    fn conn_stats(&self) -> Vec<ConnSnapshot> {
        Vec::new()
    }
    fn shutdown(&mut self) {}
}

impl Transport for TcpTransport {
    fn name(&self) -> &'static str {
        "tcp"
    }
    fn local_addr(&self) -> Option<SocketAddr> {
        Some(TcpTransport::local_addr(self))
    }
    fn stats(&self) -> NetStats {
        TcpTransport::stats(self)
    }
    fn conn_stats(&self) -> Vec<ConnSnapshot> {
        TcpTransport::conn_stats(self)
    }
    fn shutdown(&mut self) {
        TcpTransport::shutdown(self)
    }
}

/// An engine plus the transport fronting it, booted from one
/// [`ServerConfig`]. In-process callers keep full facade access through
/// [`NetServer::engine`]; remote callers connect to
/// [`NetServer::local_addr`].
pub struct NetServer {
    engine: Arc<TelegraphCQ>,
    transport: Box<dyn Transport>,
}

impl NetServer {
    /// Boot the engine and bind the transport `config.transport` selects.
    pub fn start(config: ServerConfig) -> Result<NetServer> {
        let tcp = match &config.transport {
            TransportConfig::InProcess => None,
            TransportConfig::Tcp(c) => Some(c.clone()),
        };
        let engine = Arc::new(TelegraphCQ::start(config)?);
        let transport: Box<dyn Transport> = match tcp {
            None => Box::new(InProcessTransport),
            Some(cfg) => Box::new(TcpTransport::bind(engine.clone(), cfg)?),
        };
        Ok(NetServer { engine, transport })
    }

    /// The engine facade — everything an in-process caller could do.
    pub fn engine(&self) -> &Arc<TelegraphCQ> {
        &self.engine
    }

    /// The transport fronting the engine.
    pub fn transport(&self) -> &dyn Transport {
        &*self.transport
    }

    /// The TCP listen address, when the TCP transport is selected.
    pub fn local_addr(&self) -> Option<SocketAddr> {
        self.transport.local_addr()
    }

    /// Aggregate wire counters.
    pub fn net_stats(&self) -> NetStats {
        self.transport.stats()
    }

    /// Per-connection wire counters, in accept order.
    pub fn conn_stats(&self) -> Vec<ConnSnapshot> {
        self.transport.conn_stats()
    }

    /// Tear down the transport (joining every connection thread), then shut
    /// the engine down with its ordered drain-then-flush sequence.
    pub fn shutdown(self) -> Result<()> {
        let NetServer {
            engine,
            mut transport,
        } = self;
        transport.shutdown();
        // Joining the connection threads is not enough: the transport value
        // itself still holds an engine handle. Drop it, then anything left
        // is a caller-held `engine()` clone.
        drop(transport);
        let mut engine = engine;
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            match Arc::try_unwrap(engine) {
                Ok(e) => return e.shutdown(),
                Err(arc) => {
                    if Instant::now() >= deadline {
                        return Err(TcqError::Executor(
                            "cannot shut down: engine handle still cloned elsewhere".into(),
                        ));
                    }
                    engine = arc;
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
        }
    }
}
