//! Flux: fault-tolerant, load-balancing exchange (§2.4, \[SHCF03\]).
//!
//! > "Flux is a generalization of the Exchange module … In addition to the
//! > data partitioning and routing functions of the Exchange, Flux provides
//! > two additional features: load balancing and fault tolerance. Load
//! > balancing is provided via online repartitioning of the input stream
//! > and the corresponding internal state of operators on the consumer
//! > side. … For critical dataflows that require high-availability, Flux
//! > provides a loosely coupled process-pair-like mechanism for quick
//! > failover."
//!
//! ## Substitution (see DESIGN.md)
//!
//! The paper ran Flux on a shared-nothing cluster. We simulate that cluster
//! as a **deterministic discrete-event simulation**: each node is a state
//! machine with an input queue, a per-tick processing budget (its "speed"),
//! and per-partition operator state; time advances in ticks. This keeps the
//! actual Flux logic — consistent hash partitioning, the pause/drain/move/
//! resume state-movement protocol, replica maintenance, and failover
//! promotion — identical to a threaded implementation while making every
//! experiment reproducible. Wall-clock claims become tick-count claims with
//! the same shape.
//!
//! The partitioned consumer operator is a grouped aggregate (count + sum
//! per key), the operator of the Flux paper's experiments.
//!
//! # Example: survive a node failure
//!
//! ```
//! use tcq_common::{DataType, Field, Schema, Timestamp, TupleBuilder, Value};
//! use tcq_flux::{FluxCluster, FluxConfig};
//!
//! let schema = Schema::new(vec![
//!     Field::new("key", DataType::Int),
//!     Field::new("val", DataType::Float),
//! ])
//! .into_ref();
//! let cfg = FluxConfig::uniform(4).with_replication();
//! let mut cluster = FluxCluster::new(cfg, 0, 1).unwrap();
//!
//! for i in 0..1000i64 {
//!     let t = TupleBuilder::new(schema.clone())
//!         .push(i % 7)
//!         .push(1.0)
//!         .at(Timestamp::logical(i))
//!         .build()
//!         .unwrap();
//!     cluster.ingest(&t).unwrap();
//!     if i == 500 {
//!         cluster.kill_node(1).unwrap(); // process pairs take over
//!     }
//! }
//! cluster.run_until_drained(100_000);
//! let total: u64 = cluster.results().values().map(|(c, _)| c).sum();
//! assert_eq!(total, 1000); // nothing lost
//! ```

#![warn(missing_docs)]

pub mod cluster;

pub use cluster::{FluxCluster, FluxConfig, FluxStats, NodeStats};
