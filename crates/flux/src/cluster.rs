//! The simulated shared-nothing cluster running a Flux-partitioned
//! grouped aggregate.

use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, VecDeque};
use std::hash::{Hash, Hasher};

use tcq_common::{Result, TcqError, Tuple, Value};

/// Configuration for a [`FluxCluster`].
#[derive(Debug, Clone)]
pub struct FluxConfig {
    /// Number of (simulated) machines.
    pub nodes: usize,
    /// Number of hash partitions (≫ nodes, so repartitioning has units to
    /// move; Flux's "fine-grained partitions").
    pub partitions: u32,
    /// Per-node processing speed: tuples per tick. Length must equal
    /// `nodes`; heterogeneity here models slow/overloaded machines.
    pub speeds: Vec<u32>,
    /// Maintain a replica of each partition on a second node (process-pair
    /// fault tolerance). Costs double processing.
    pub replication: bool,
    /// Rebalance check interval in ticks (0 = never — the plain Exchange
    /// baseline).
    pub rebalance_every: u64,
    /// Trigger rebalancing when max/min node backlog exceeds this ratio.
    pub imbalance_threshold: f64,
    /// Ticks of stall a node pays per 64 state entries moved in (the cost
    /// of installing moved state).
    pub move_cost_per_64: u64,
}

impl FluxConfig {
    /// A uniform cluster of `nodes` machines at speed 4, 64 partitions,
    /// no replication, no rebalancing.
    pub fn uniform(nodes: usize) -> Self {
        FluxConfig {
            nodes,
            partitions: 64,
            speeds: vec![4; nodes],
            replication: false,
            rebalance_every: 0,
            imbalance_threshold: 1.5,
            move_cost_per_64: 1,
        }
    }

    /// Enable online repartitioning every `ticks`.
    pub fn with_rebalancing(mut self, ticks: u64) -> Self {
        self.rebalance_every = ticks;
        self
    }

    /// Enable process-pair replication.
    pub fn with_replication(mut self) -> Self {
        self.replication = true;
        self
    }

    /// Override node speeds.
    pub fn with_speeds(mut self, speeds: Vec<u32>) -> Self {
        assert_eq!(speeds.len(), self.nodes);
        self.speeds = speeds;
        self
    }
}

/// Per-key aggregate state: (count, sum).
type GroupState = HashMap<Value, (u64, f64)>;

struct Node {
    alive: bool,
    speed: u32,
    /// Pending (partition, key, value) work items.
    queue: VecDeque<(u32, Value, f64)>,
    /// partition -> group-by state for partitions primary or replica here.
    state: HashMap<u32, GroupState>,
    processed: u64,
    /// Remaining stall ticks (state installation cost).
    stall: u64,
}

impl Node {
    fn backlog(&self) -> usize {
        self.queue.len()
    }
}

/// Per-node statistics snapshot.
#[derive(Debug, Clone, Copy)]
pub struct NodeStats {
    /// Is the node alive?
    pub alive: bool,
    /// Tuples processed.
    pub processed: u64,
    /// Current input backlog.
    pub backlog: usize,
    /// Partitions for which this node is primary.
    pub primaries: usize,
}

/// Cluster-level counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct FluxStats {
    /// Simulated ticks elapsed.
    pub ticks: u64,
    /// Tuples ingested.
    pub ingested: u64,
    /// Tuples fully processed (primary copies only).
    pub processed: u64,
    /// Partitions moved by the load balancer.
    pub partitions_moved: u64,
    /// Failovers performed.
    pub failovers: u64,
    /// Tuples lost to failures (non-replicated runs).
    pub lost_inflight: u64,
}

/// The simulated cluster.
pub struct FluxCluster {
    config: FluxConfig,
    nodes: Vec<Node>,
    /// partition -> primary node.
    primary: Vec<usize>,
    /// partition -> replica node (replication mode).
    replica: Vec<Option<usize>>,
    key_col: usize,
    val_col: usize,
    stats: FluxStats,
}

impl FluxCluster {
    /// Build a cluster computing `GROUP BY key_col: COUNT, SUM(val_col)`.
    pub fn new(config: FluxConfig, key_col: usize, val_col: usize) -> Result<Self> {
        if config.nodes == 0 {
            return Err(TcqError::Flux("cluster needs at least one node".into()));
        }
        if config.speeds.len() != config.nodes {
            return Err(TcqError::Flux("speeds.len() must equal nodes".into()));
        }
        if config.partitions == 0 {
            return Err(TcqError::Flux("need at least one partition".into()));
        }
        let nodes: Vec<Node> = config
            .speeds
            .iter()
            .map(|&speed| Node {
                alive: true,
                speed,
                queue: VecDeque::new(),
                state: HashMap::new(),
                processed: 0,
                stall: 0,
            })
            .collect();
        let n = config.nodes;
        let primary: Vec<usize> = (0..config.partitions).map(|p| p as usize % n).collect();
        let replica: Vec<Option<usize>> = if config.replication {
            (0..config.partitions)
                .map(|p| if n > 1 { Some((p as usize + 1) % n) } else { None })
                .collect()
        } else {
            vec![None; config.partitions as usize]
        };
        Ok(FluxCluster { config, nodes, primary, replica, key_col, val_col, stats: FluxStats::default() })
    }

    fn partition_of(&self, key: &Value) -> u32 {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        (h.finish() % self.config.partitions as u64) as u32
    }

    /// Route one tuple into the cluster (to the primary's queue, and the
    /// replica's in replication mode).
    pub fn ingest(&mut self, tuple: &Tuple) -> Result<()> {
        let key = tuple.value(self.key_col).clone();
        let val = tuple.value(self.val_col).as_float().unwrap_or(0.0);
        let p = self.partition_of(&key);
        self.stats.ingested += 1;
        let primary = self.primary[p as usize];
        if !self.nodes[primary].alive {
            return Err(TcqError::Flux(format!(
                "partition {p} routed to dead node {primary}; failover required"
            )));
        }
        self.nodes[primary].queue.push_back((p, key.clone(), val));
        if let Some(r) = self.replica[p as usize] {
            if self.nodes[r].alive {
                self.nodes[r].queue.push_back((p, key, val));
            }
        }
        Ok(())
    }

    /// Advance simulated time by one tick: every alive node processes up to
    /// its speed; the balancer runs on its schedule.
    pub fn tick(&mut self) {
        self.stats.ticks += 1;
        for i in 0..self.nodes.len() {
            if !self.nodes[i].alive {
                continue;
            }
            if self.nodes[i].stall > 0 {
                self.nodes[i].stall -= 1;
                continue;
            }
            for _ in 0..self.nodes[i].speed {
                let Some((p, key, val)) = self.nodes[i].queue.pop_front() else { break };
                let node = &mut self.nodes[i];
                let group = node.state.entry(p).or_default();
                let entry = group.entry(key).or_insert((0, 0.0));
                entry.0 += 1;
                entry.1 += val;
                node.processed += 1;
                if self.primary[p as usize] == i {
                    self.stats.processed += 1;
                }
            }
        }
        if self.config.rebalance_every > 0
            && self.stats.ticks.is_multiple_of(self.config.rebalance_every)
        {
            self.rebalance();
        }
    }

    /// Run ticks until every queue is empty (or `max_ticks` elapse).
    /// Returns ticks consumed.
    pub fn run_until_drained(&mut self, max_ticks: u64) -> u64 {
        let start = self.stats.ticks;
        for _ in 0..max_ticks {
            if self
                .nodes
                .iter()
                .all(|n| !n.alive || (n.queue.is_empty() && n.stall == 0))
            {
                break;
            }
            self.tick();
        }
        self.stats.ticks - start
    }

    /// The state-movement protocol: reassign partition `p` from its current
    /// primary to `dst`. Pending inputs for `p` are drained from the old
    /// queue and replayed to the new one ("buffering and reordering
    /// mechanisms to smoothly repartition operator state", §2.4), state is
    /// extracted and installed, and the destination pays an installation
    /// stall proportional to the state size.
    pub fn move_partition(&mut self, p: u32, dst: usize) -> Result<()> {
        let src = self.primary[p as usize];
        if src == dst {
            return Ok(());
        }
        if !self.nodes[dst].alive {
            return Err(TcqError::Flux(format!("cannot move partition {p} to dead node {dst}")));
        }
        // Pause + drain: pending inputs for p leave the old primary's queue.
        let mut pending = VecDeque::new();
        self.nodes[src].queue.retain(|item| {
            if item.0 == p {
                pending.push_back(item.clone());
                false
            } else {
                true
            }
        });
        let state = self.nodes[src].state.remove(&p).unwrap_or_default();
        if self.replica[p as usize] == Some(dst) {
            // Promoting the replica to primary: dst's state + queued copies
            // already equal src's state + pending (every input was
            // delivered to both), so transferring either would double-count.
            // Re-establish the pair in the opposite direction: src becomes
            // the replica, mirroring dst's current state and its queued
            // inputs for p.
            self.primary[p as usize] = dst;
            self.replica[p as usize] = Some(src);
            let mirror = self.nodes[dst].state.get(&p).cloned().unwrap_or_default();
            let queued: Vec<(u32, Value, f64)> = self
                .nodes[dst]
                .queue
                .iter()
                .filter(|item| item.0 == p)
                .cloned()
                .collect();
            let src_node = &mut self.nodes[src];
            src_node.stall += (mirror.len() as u64 / 64) * self.config.move_cost_per_64;
            src_node.state.insert(p, mirror);
            for item in queued {
                src_node.queue.push_back(item);
            }
        } else {
            // Plain move: state and pending inputs travel to dst.
            let entries = state.len() as u64;
            self.nodes[dst].state.insert(p, state);
            self.nodes[dst].stall += (entries / 64) * self.config.move_cost_per_64;
            for item in pending {
                self.nodes[dst].queue.push_back(item);
            }
            self.primary[p as usize] = dst;
        }
        self.stats.partitions_moved += 1;
        Ok(())
    }

    /// One load-balancing pass: while the most backlogged node exceeds the
    /// least by the configured ratio, move one of its partitions over.
    pub fn rebalance(&mut self) {
        for _ in 0..4 {
            let alive: Vec<usize> =
                (0..self.nodes.len()).filter(|&i| self.nodes[i].alive).collect();
            if alive.len() < 2 {
                return;
            }
            let (&max_node, &min_node) = match (
                alive.iter().max_by_key(|&&i| self.nodes[i].backlog()),
                alive.iter().min_by_key(|&&i| self.nodes[i].backlog()),
            ) {
                (Some(a), Some(b)) => (a, b),
                _ => return,
            };
            let (hi, lo) = (self.nodes[max_node].backlog(), self.nodes[min_node].backlog());
            if hi < 8 || (hi as f64) < (lo.max(1) as f64) * self.config.imbalance_threshold {
                return;
            }
            // Move the max node's most backlogged partition.
            let mut per_partition: HashMap<u32, usize> = HashMap::new();
            for (p, _, _) in &self.nodes[max_node].queue {
                *per_partition.entry(*p).or_default() += 1;
            }
            // Don't move a partition that IS the whole backlog story if it
            // would just swap the hotspot: pick the largest partition whose
            // backlog <= half the gap, else the smallest.
            let gap = hi - lo;
            let mut candidates: Vec<(u32, usize)> = per_partition.into_iter().collect();
            candidates.sort_by_key(|&(p, n)| (std::cmp::Reverse(n), p));
            let pick = candidates
                .iter()
                .find(|&&(_, n)| n <= gap / 2 + 1)
                .or_else(|| candidates.last())
                .copied();
            let Some((p, _)) = pick else { return };
            if self.move_partition(p, min_node).is_err() {
                return;
            }
        }
    }

    /// Kill a node. With replication, every partition it owned fails over
    /// to its replica (and in-flight replica inputs preserve the data);
    /// without, that state and backlog are lost (counted in
    /// [`FluxStats::lost_inflight`]).
    pub fn kill_node(&mut self, node: usize) -> Result<()> {
        if !self.nodes[node].alive {
            return Err(TcqError::Flux(format!("node {node} already dead")));
        }
        self.nodes[node].alive = false;
        let lost_backlog = self.nodes[node].queue.len() as u64;
        self.nodes[node].queue.clear();
        let owned: Vec<u32> = (0..self.config.partitions)
            .filter(|&p| self.primary[p as usize] == node)
            .collect();
        for p in owned {
            match self.replica[p as usize] {
                Some(r) if self.nodes[r].alive => {
                    // Promote the replica; its state and queue already hold
                    // everything the primary had seen or would see.
                    self.primary[p as usize] = r;
                    self.replica[p as usize] = self.pick_new_replica(r);
                    if let Some(nr) = self.replica[p as usize] {
                        self.mirror_partition(p, r, nr);
                    }
                    self.stats.failovers += 1;
                }
                _ => {
                    // Data loss: no replica. The partition restarts empty on
                    // a surviving node.
                    let fallback = self.pick_new_replica(node);
                    if let Some(f) = fallback {
                        self.primary[p as usize] = f;
                        self.nodes[f].state.entry(p).or_default();
                    }
                    self.stats.lost_inflight += lost_backlog;
                }
            }
        }
        // Partitions replicated ON the dead node lose their replica.
        for p in 0..self.config.partitions as usize {
            if self.replica[p] == Some(node) {
                let pr = self.primary[p];
                self.replica[p] = self.pick_new_replica(pr);
                if let Some(nr) = self.replica[p] {
                    self.mirror_partition(p as u32, pr, nr);
                }
            }
        }
        Ok(())
    }

    fn pick_new_replica(&self, not: usize) -> Option<usize> {
        (0..self.nodes.len()).find(|&i| i != not && self.nodes[i].alive)
    }

    /// Re-establish a replica: copy `from`'s state for `p` AND its queued
    /// inputs to `to`, so the pair invariant (replica state + queue ≡
    /// primary state + queue) holds after the copy.
    fn mirror_partition(&mut self, p: u32, from: usize, to: usize) {
        let state = self.nodes[from].state.get(&p).cloned().unwrap_or_default();
        let queued: Vec<(u32, Value, f64)> = self
            .nodes[from]
            .queue
            .iter()
            .filter(|item| item.0 == p)
            .cloned()
            .collect();
        let dst = &mut self.nodes[to];
        dst.stall += (state.len() as u64 / 64) * self.config.move_cost_per_64;
        dst.state.insert(p, state);
        for item in queued {
            dst.queue.push_back(item);
        }
    }

    /// Merged group-by results over primary partitions: key -> (count, sum).
    pub fn results(&self) -> HashMap<Value, (u64, f64)> {
        let mut out: HashMap<Value, (u64, f64)> = HashMap::new();
        for p in 0..self.config.partitions as usize {
            let node = self.primary[p];
            if let Some(groups) = self.nodes[node].state.get(&(p as u32)) {
                for (k, (c, s)) in groups {
                    let e = out.entry(k.clone()).or_insert((0, 0.0));
                    e.0 += c;
                    e.1 += s;
                }
            }
        }
        out
    }

    /// Per-node statistics.
    pub fn node_stats(&self) -> Vec<NodeStats> {
        (0..self.nodes.len())
            .map(|i| NodeStats {
                alive: self.nodes[i].alive,
                processed: self.nodes[i].processed,
                backlog: self.nodes[i].backlog(),
                primaries: self.primary.iter().filter(|&&n| n == i).count(),
            })
            .collect()
    }

    /// Cluster counters.
    pub fn stats(&self) -> FluxStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcq_common::{DataType, Field, Schema, SchemaRef, Timestamp, TupleBuilder};

    fn schema() -> SchemaRef {
        Schema::new(vec![
            Field::new("key", DataType::Int),
            Field::new("val", DataType::Float),
        ])
        .into_ref()
    }

    fn t(key: i64, val: f64, ts: i64) -> Tuple {
        TupleBuilder::new(schema())
            .push(key)
            .push(val)
            .at(Timestamp::logical(ts))
            .build()
            .unwrap()
    }

    /// Reference group-by for correctness checks.
    fn reference(tuples: &[Tuple]) -> HashMap<Value, (u64, f64)> {
        let mut out: HashMap<Value, (u64, f64)> = HashMap::new();
        for tp in tuples {
            let e = out.entry(tp.value(0).clone()).or_insert((0, 0.0));
            e.0 += 1;
            e.1 += tp.value(1).as_float().unwrap();
        }
        out
    }

    fn workload(n: i64, keys: i64) -> Vec<Tuple> {
        (0..n).map(|i| t(i % keys, 1.0, i)).collect()
    }

    #[test]
    fn partitioned_group_by_matches_reference() {
        let mut cluster = FluxCluster::new(FluxConfig::uniform(4), 0, 1).unwrap();
        let tuples = workload(2000, 37);
        for tp in &tuples {
            cluster.ingest(tp).unwrap();
        }
        cluster.run_until_drained(10_000);
        assert_eq!(cluster.results(), reference(&tuples));
        let st = cluster.stats();
        assert_eq!(st.processed, 2000);
    }

    #[test]
    fn rebalancing_helps_with_heterogeneous_nodes() {
        // One node is 8x slower; without rebalancing it gates the drain.
        let run = |rebalance: u64| {
            let cfg = FluxConfig::uniform(4)
                .with_speeds(vec![1, 8, 8, 8])
                .with_rebalancing(rebalance);
            let mut cluster = FluxCluster::new(cfg, 0, 1).unwrap();
            let tuples = workload(8000, 101);
            for tp in &tuples {
                cluster.ingest(tp).unwrap();
            }
            let ticks = cluster.run_until_drained(100_000);
            assert_eq!(cluster.results(), reference(&tuples), "answers must survive moves");
            (ticks, cluster.stats().partitions_moved)
        };
        let (ticks_static, moved_static) = run(0);
        let (ticks_flux, moved_flux) = run(8);
        assert_eq!(moved_static, 0);
        assert!(moved_flux > 0, "balancer should move partitions");
        assert!(
            (ticks_flux as f64) < ticks_static as f64 * 0.7,
            "rebalancing should cut drain time: static={ticks_static}, flux={ticks_flux}"
        );
    }

    #[test]
    fn failover_with_replication_loses_nothing() {
        let cfg = FluxConfig::uniform(4).with_replication();
        let mut cluster = FluxCluster::new(cfg, 0, 1).unwrap();
        let tuples = workload(4000, 53);
        for (i, tp) in tuples.iter().enumerate() {
            cluster.ingest(tp).unwrap();
            if i % 16 == 0 {
                cluster.tick();
            }
            if i == 2000 {
                cluster.kill_node(2).unwrap();
            }
        }
        cluster.run_until_drained(100_000);
        assert_eq!(cluster.results(), reference(&tuples));
        let st = cluster.stats();
        assert!(st.failovers > 0);
        assert_eq!(st.lost_inflight, 0);
        assert!(!cluster.node_stats()[2].alive);
    }

    #[test]
    fn failure_without_replication_loses_data() {
        let mut cluster = FluxCluster::new(FluxConfig::uniform(4), 0, 1).unwrap();
        let tuples = workload(4000, 53);
        for (i, tp) in tuples.iter().enumerate() {
            cluster.ingest(tp).unwrap();
            if i % 16 == 0 {
                cluster.tick();
            }
            if i == 2000 {
                cluster.kill_node(2).unwrap();
            }
        }
        cluster.run_until_drained(100_000);
        let got = cluster.results();
        let want = reference(&tuples);
        let got_total: u64 = got.values().map(|(c, _)| c).sum();
        let want_total: u64 = want.values().map(|(c, _)| c).sum();
        assert!(
            got_total < want_total,
            "without replicas a failure must lose tuples ({got_total} vs {want_total})"
        );
    }

    #[test]
    fn ingest_after_failover_keeps_working() {
        let cfg = FluxConfig::uniform(3).with_replication();
        let mut cluster = FluxCluster::new(cfg, 0, 1).unwrap();
        for i in 0..100 {
            cluster.ingest(&t(i % 7, 1.0, i)).unwrap();
        }
        cluster.kill_node(0).unwrap();
        // All partitions now primary on 1 or 2; ingestion continues.
        for i in 100..200 {
            cluster.ingest(&t(i % 7, 1.0, i)).unwrap();
        }
        cluster.run_until_drained(10_000);
        let total: u64 = cluster.results().values().map(|(c, _)| c).sum();
        assert_eq!(total, 200);
    }

    #[test]
    fn explicit_partition_move_preserves_pending_work() {
        let mut cluster = FluxCluster::new(FluxConfig::uniform(2), 0, 1).unwrap();
        let tuples = workload(100, 5);
        for tp in &tuples {
            cluster.ingest(tp).unwrap();
        }
        // Move every partition to node 1 before processing anything.
        for p in 0..64 {
            cluster.move_partition(p, 1).unwrap();
        }
        cluster.run_until_drained(10_000);
        assert_eq!(cluster.results(), reference(&tuples));
        assert_eq!(cluster.node_stats()[0].processed, 0);
        assert_eq!(cluster.node_stats()[1].processed, 100);
    }

    #[test]
    fn config_validation() {
        assert!(FluxCluster::new(
            FluxConfig { nodes: 0, ..FluxConfig::uniform(1) },
            0,
            1
        )
        .is_err());
        let mut bad = FluxConfig::uniform(2);
        bad.partitions = 0;
        assert!(FluxCluster::new(bad, 0, 1).is_err());
        let mut mismatched = FluxConfig::uniform(2);
        mismatched.speeds = vec![1];
        assert!(FluxCluster::new(mismatched, 0, 1).is_err());
    }

    #[test]
    fn kill_dead_node_rejected() {
        let mut cluster = FluxCluster::new(FluxConfig::uniform(2).with_replication(), 0, 1)
            .unwrap();
        cluster.kill_node(0).unwrap();
        assert!(cluster.kill_node(0).is_err());
    }
}
