//! The simulated shared-nothing cluster running a Flux-partitioned
//! grouped aggregate.

use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, HashSet, VecDeque};
use std::hash::{Hash, Hasher};

use tcq_common::{
    CkptWriter, FaultAction, FaultPoint, Result, SharedInjector, TcqError, Tuple, Value,
};

/// Configuration for a [`FluxCluster`].
#[derive(Debug, Clone)]
pub struct FluxConfig {
    /// Number of (simulated) machines.
    pub nodes: usize,
    /// Number of hash partitions (≫ nodes, so repartitioning has units to
    /// move; Flux's "fine-grained partitions").
    pub partitions: u32,
    /// Per-node processing speed: tuples per tick. Length must equal
    /// `nodes`; heterogeneity here models slow/overloaded machines.
    pub speeds: Vec<u32>,
    /// Maintain a replica of each partition on a second node (process-pair
    /// fault tolerance). Costs double processing.
    pub replication: bool,
    /// Rebalance check interval in ticks (0 = never — the plain Exchange
    /// baseline).
    pub rebalance_every: u64,
    /// Trigger rebalancing when max/min node backlog exceeds this ratio.
    pub imbalance_threshold: f64,
    /// Ticks of stall a node pays per 64 state entries moved in (the cost
    /// of installing moved state).
    pub move_cost_per_64: u64,
}

impl FluxConfig {
    /// A uniform cluster of `nodes` machines at speed 4, 64 partitions,
    /// no replication, no rebalancing.
    pub fn uniform(nodes: usize) -> Self {
        FluxConfig {
            nodes,
            partitions: 64,
            speeds: vec![4; nodes],
            replication: false,
            rebalance_every: 0,
            imbalance_threshold: 1.5,
            move_cost_per_64: 1,
        }
    }

    /// Enable online repartitioning every `ticks`.
    pub fn with_rebalancing(mut self, ticks: u64) -> Self {
        self.rebalance_every = ticks;
        self
    }

    /// Enable process-pair replication.
    pub fn with_replication(mut self) -> Self {
        self.replication = true;
        self
    }

    /// Override node speeds.
    pub fn with_speeds(mut self, speeds: Vec<u32>) -> Self {
        assert_eq!(speeds.len(), self.nodes);
        self.speeds = speeds;
        self
    }
}

/// Per-key aggregate state: (count, sum).
type GroupState = HashMap<Value, (u64, f64)>;

struct Node {
    alive: bool,
    speed: u32,
    /// Pending (partition, key, value) work items.
    queue: VecDeque<(u32, Value, f64)>,
    /// partition -> group-by state for partitions primary or replica here.
    state: HashMap<u32, GroupState>,
    /// partition -> groups whose state changed on this node since its
    /// snapshot was last updated (feeds incremental checkpoints). An
    /// entry with an empty key set marks "partition membership changed"
    /// (moved away), which the checkpoint resolves against `state`.
    dirty: HashMap<u32, HashSet<Value>>,
    processed: u64,
    /// Remaining stall ticks (state installation cost).
    stall: u64,
}

impl Node {
    fn backlog(&self) -> usize {
        self.queue.len()
    }
}

/// Per-node statistics snapshot.
#[derive(Debug, Clone, Copy)]
pub struct NodeStats {
    /// Is the node alive?
    pub alive: bool,
    /// Tuples processed.
    pub processed: u64,
    /// Current input backlog.
    pub backlog: usize,
    /// Partitions for which this node is primary.
    pub primaries: usize,
}

/// Cluster-level counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct FluxStats {
    /// Simulated ticks elapsed.
    pub ticks: u64,
    /// Tuples ingested.
    pub ingested: u64,
    /// Tuples fully processed (primary copies only).
    pub processed: u64,
    /// Partitions moved by the load balancer.
    pub partitions_moved: u64,
    /// Failovers performed.
    pub failovers: u64,
    /// Tuples lost to failures (non-replicated runs): for each partition
    /// that died without a live replica, its queued inputs plus every
    /// tuple already folded into its state. The cluster's output shortfall
    /// equals this counter exactly.
    pub lost_inflight: u64,
    /// Nodes restarted (rejoined) after a kill.
    pub restarts: u64,
    /// State groups actually shipped to recovering nodes: delta groups on
    /// rejoin plus full-group mirrors when a replica is re-established on
    /// a node with no snapshot of the partition. This replaces the old
    /// stall-tick *modeling* of catch-up — rejoin cost is now the real
    /// moved-group count.
    pub groups_shipped: u64,
    /// Checkpoint-codec bytes of the shipped groups (the wire cost of
    /// recovery).
    pub bytes_shipped: u64,
    /// Tuples dropped at ingest by injected queue overflow.
    pub overflow_dropped: u64,
}

/// What one [`FluxCluster::checkpoint`] pass copied into the per-node
/// durable snapshots.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FluxCheckpoint {
    /// The epoch this checkpoint established.
    pub epoch: u64,
    /// Groups copied into snapshots — exactly the groups dirtied since
    /// the previous epoch, so checkpoint cost scales with churn, not
    /// total state size.
    pub groups_copied: u64,
}

/// What one [`FluxCluster::restart_node`] rejoin actually moved.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RejoinReport {
    /// Epoch of the durable snapshot the node restored locally.
    pub snapshot_epoch: u64,
    /// Partitions the node was drafted to serve (as replica) on rejoin.
    pub partitions_rejoined: u64,
    /// Groups shipped from primaries: only those dirtied since
    /// `snapshot_epoch` — rejoin cost is bounded by the delta, not the
    /// node's total state.
    pub groups_shipped: u64,
    /// Checkpoint-codec bytes of those groups.
    pub bytes_shipped: u64,
}

/// Per-node durable snapshot: the node's partition state as of `epoch`.
/// Survives the node's crash (it models state on the node's local disk).
#[derive(Default)]
struct NodeSnapshot {
    epoch: u64,
    state: HashMap<u32, GroupState>,
}

/// Per-partition log of which groups changed in which checkpoint epoch,
/// so a rejoiner restoring a snapshot at epoch E receives exactly the
/// groups dirtied after E.
#[derive(Default)]
struct ShipLog {
    /// `(epoch, groups dirtied in the interval ending at that epoch)`.
    sealed: Vec<(u64, HashSet<Value>)>,
    /// Groups dirtied since the last checkpoint.
    current: HashSet<Value>,
}

impl ShipLog {
    /// Union of groups dirtied after epoch `since`.
    fn keys_since(&self, since: u64) -> HashSet<Value> {
        let mut out: HashSet<Value> = self.current.clone();
        for (epoch, keys) in &self.sealed {
            if *epoch > since {
                out.extend(keys.iter().cloned());
            }
        }
        out
    }
}

/// Checkpoint-codec size of one shipped group (key + count + sum).
fn shipped_group_bytes(key: &Value, entry: Option<(u64, f64)>) -> u64 {
    let mut w = CkptWriter::new();
    w.put_value(key);
    if let Some((c, s)) = entry {
        w.put_u64(c);
        w.put_f64(s);
    }
    w.len() as u64
}

/// The simulated cluster.
pub struct FluxCluster {
    config: FluxConfig,
    nodes: Vec<Node>,
    /// partition -> primary node.
    primary: Vec<usize>,
    /// partition -> replica node (replication mode).
    replica: Vec<Option<usize>>,
    key_col: usize,
    val_col: usize,
    stats: FluxStats,
    /// Monotone checkpoint epoch; 0 = never checkpointed.
    ckpt_epoch: u64,
    /// Per-node durable snapshots (index-aligned with `nodes`).
    snapshots: Vec<NodeSnapshot>,
    /// Per-partition dirty-group log (index-aligned with partitions).
    ship_log: Vec<ShipLog>,
    /// Optional chaos injector polled at tick/ingest/state-move points.
    injector: Option<SharedInjector>,
}

impl FluxCluster {
    /// Build a cluster computing `GROUP BY key_col: COUNT, SUM(val_col)`.
    pub fn new(config: FluxConfig, key_col: usize, val_col: usize) -> Result<Self> {
        if config.nodes == 0 {
            return Err(TcqError::Flux("cluster needs at least one node".into()));
        }
        if config.speeds.len() != config.nodes {
            return Err(TcqError::Flux("speeds.len() must equal nodes".into()));
        }
        if config.partitions == 0 {
            return Err(TcqError::Flux("need at least one partition".into()));
        }
        let nodes: Vec<Node> = config
            .speeds
            .iter()
            .map(|&speed| Node {
                alive: true,
                speed,
                queue: VecDeque::new(),
                state: HashMap::new(),
                dirty: HashMap::new(),
                processed: 0,
                stall: 0,
            })
            .collect();
        let n = config.nodes;
        let primary: Vec<usize> = (0..config.partitions).map(|p| p as usize % n).collect();
        let replica: Vec<Option<usize>> = if config.replication {
            (0..config.partitions)
                .map(|p| {
                    if n > 1 {
                        Some((p as usize + 1) % n)
                    } else {
                        None
                    }
                })
                .collect()
        } else {
            vec![None; config.partitions as usize]
        };
        let n_nodes = config.nodes;
        let n_parts = config.partitions as usize;
        Ok(FluxCluster {
            config,
            nodes,
            primary,
            replica,
            key_col,
            val_col,
            stats: FluxStats::default(),
            ckpt_epoch: 0,
            snapshots: (0..n_nodes).map(|_| NodeSnapshot::default()).collect(),
            ship_log: (0..n_parts).map(|_| ShipLog::default()).collect(),
            injector: None,
        })
    }

    /// Attach a chaos injector. The cluster polls it once per tick
    /// ([`FaultPoint::ClusterTick`]: kills, restarts, stragglers), once per
    /// ingested tuple ([`FaultPoint::Ingest`]: overflow, errors), and once
    /// per state movement with the state in flight
    /// ([`FaultPoint::StateMove`]: kill-during-move).
    pub fn attach_injector(&mut self, injector: SharedInjector) {
        self.injector = Some(injector);
    }

    fn partition_of(&self, key: &Value) -> u32 {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        (h.finish() % self.config.partitions as u64) as u32
    }

    /// Route one tuple into the cluster (to the primary's queue, and the
    /// replica's in replication mode).
    ///
    /// Malformed (too-narrow) tuples are rejected with an error rather
    /// than panicking — the exchange must survive garbage from upstream.
    /// Injected overflow drops the tuple and accounts it in
    /// [`FluxStats::overflow_dropped`].
    pub fn ingest(&mut self, tuple: &Tuple) -> Result<()> {
        if tuple.arity() <= self.key_col.max(self.val_col) {
            return Err(TcqError::Flux(format!(
                "malformed tuple: arity {} too small for key column {} / value column {}",
                tuple.arity(),
                self.key_col,
                self.val_col
            )));
        }
        if let Some(inj) = &self.injector {
            match inj.poll(FaultPoint::Ingest) {
                Some(FaultAction::Overflow) => {
                    self.stats.overflow_dropped += 1;
                    return Ok(());
                }
                Some(FaultAction::Error(msg)) => {
                    return Err(TcqError::Flux(format!("injected ingest fault: {msg}")));
                }
                _ => {}
            }
        }
        let key = tuple.value(self.key_col).clone();
        let val = tuple.value(self.val_col).as_float().unwrap_or(0.0);
        let p = self.partition_of(&key);
        self.stats.ingested += 1;
        let primary = self.primary[p as usize];
        if !self.nodes[primary].alive {
            return Err(TcqError::Flux(format!(
                "partition {p} routed to dead node {primary}; failover required"
            )));
        }
        self.nodes[primary].queue.push_back((p, key.clone(), val));
        if let Some(r) = self.replica[p as usize] {
            if self.nodes[r].alive {
                self.nodes[r].queue.push_back((p, key, val));
            }
        }
        Ok(())
    }

    /// Advance simulated time by one tick: every alive node processes up to
    /// its speed; the balancer runs on its schedule.
    pub fn tick(&mut self) {
        self.stats.ticks += 1;
        if let Some(inj) = self.injector.clone() {
            if let Some(action) = inj.poll(FaultPoint::ClusterTick) {
                self.apply_tick_fault(action);
            }
        }
        for i in 0..self.nodes.len() {
            if !self.nodes[i].alive {
                continue;
            }
            if self.nodes[i].stall > 0 {
                self.nodes[i].stall -= 1;
                continue;
            }
            for _ in 0..self.nodes[i].speed {
                let Some((p, key, val)) = self.nodes[i].queue.pop_front() else {
                    break;
                };
                // Both the node's own dirty set (incremental snapshot
                // maintenance) and the partition's ship log (rejoin delta
                // computation) learn about every fold.
                self.ship_log[p as usize].current.insert(key.clone());
                let node = &mut self.nodes[i];
                node.dirty.entry(p).or_default().insert(key.clone());
                let group = node.state.entry(p).or_default();
                let entry = group.entry(key).or_insert((0, 0.0));
                entry.0 += 1;
                entry.1 += val;
                node.processed += 1;
                if self.primary[p as usize] == i {
                    self.stats.processed += 1;
                }
            }
        }
        if self.config.rebalance_every > 0
            && self.stats.ticks.is_multiple_of(self.config.rebalance_every)
        {
            self.rebalance();
        }
    }

    /// Apply a [`FaultPoint::ClusterTick`] chaos action. Kills and
    /// restarts of already-dead/alive nodes are no-ops, so probabilistic
    /// schedules cannot wedge the simulation.
    fn apply_tick_fault(&mut self, action: FaultAction) {
        match action {
            FaultAction::KillNode(n) if n < self.nodes.len() && self.nodes[n].alive => {
                let _ = self.kill_node(n);
            }
            FaultAction::RestartNode(n) if n < self.nodes.len() && !self.nodes[n].alive => {
                let _ = self.restart_node(n);
            }
            FaultAction::Straggler { node, ticks }
                if node < self.nodes.len() && self.nodes[node].alive =>
            {
                self.nodes[node].stall += ticks;
            }
            FaultAction::Stall { ticks } => {
                for node in self.nodes.iter_mut().filter(|n| n.alive) {
                    node.stall += ticks;
                }
            }
            _ => {}
        }
    }

    /// Run ticks until every queue is empty (or `max_ticks` elapse).
    /// Returns ticks consumed.
    pub fn run_until_drained(&mut self, max_ticks: u64) -> u64 {
        let start = self.stats.ticks;
        for _ in 0..max_ticks {
            if self
                .nodes
                .iter()
                .all(|n| !n.alive || (n.queue.is_empty() && n.stall == 0))
            {
                break;
            }
            self.tick();
        }
        self.stats.ticks - start
    }

    /// The state-movement protocol: reassign partition `p` from its current
    /// primary to `dst`. Pending inputs for `p` are drained from the old
    /// queue and replayed to the new one ("buffering and reordering
    /// mechanisms to smoothly repartition operator state", §2.4), state is
    /// extracted and installed, and the destination pays an installation
    /// stall proportional to the state size.
    pub fn move_partition(&mut self, p: u32, dst: usize) -> Result<()> {
        let src = self.primary[p as usize];
        if src == dst {
            return Ok(());
        }
        if !self.nodes[dst].alive {
            return Err(TcqError::Flux(format!(
                "cannot move partition {p} to dead node {dst}"
            )));
        }
        // Pause + drain: pending inputs for p leave the old primary's queue.
        let mut pending = VecDeque::new();
        self.nodes[src].queue.retain(|item| {
            if item.0 == p {
                pending.push_back(item.clone());
                false
            } else {
                true
            }
        });
        let state = self.nodes[src].state.remove(&p).unwrap_or_default();
        // Membership change at src: an empty dirty entry makes the next
        // checkpoint re-resolve the partition against src's state.
        self.nodes[src].dirty.entry(p).or_default();
        if self.replica[p as usize] == Some(dst) {
            // Promoting the replica to primary: dst's state + queued copies
            // already equal src's state + pending (every input was
            // delivered to both), so transferring either would double-count.
            // Re-establish the pair in the opposite direction: src becomes
            // the replica, mirroring dst's current state and its queued
            // inputs for p.
            self.primary[p as usize] = dst;
            self.replica[p as usize] = Some(src);
            let mirror = self.nodes[dst].state.get(&p).cloned().unwrap_or_default();
            let queued: Vec<(u32, Value, f64)> = self.nodes[dst]
                .queue
                .iter()
                .filter(|item| item.0 == p)
                .cloned()
                .collect();
            let src_node = &mut self.nodes[src];
            src_node.stall += (mirror.len() as u64 / 64) * self.config.move_cost_per_64;
            src_node.state.insert(p, mirror);
            for item in queued {
                src_node.queue.push_back(item);
            }
            self.mark_partition_resync(src, p);
        } else {
            // Plain move: state and pending inputs travel to dst. With the
            // state in flight (drained from src, not yet installed), either
            // endpoint may die; the protocol installs at a survivor so the
            // movement itself never loses data.
            let mut kill_after: Option<usize> = None;
            if let Some(inj) = self.injector.clone() {
                match inj.poll(FaultPoint::StateMove) {
                    Some(FaultAction::KillNode(n)) if n < self.nodes.len() => {
                        kill_after = Some(n);
                    }
                    Some(FaultAction::Stall { ticks }) => self.nodes[dst].stall += ticks,
                    _ => {}
                }
            }
            if kill_after == Some(dst) {
                // Destination died mid-move: reinstall at the source and
                // abort; the balancer can retry against a live target.
                let node = &mut self.nodes[src];
                node.state.insert(p, state);
                for item in pending {
                    node.queue.push_back(item);
                }
                if self.nodes[dst].alive {
                    self.kill_node(dst)?;
                }
                return Ok(());
            }
            let entries = state.len() as u64;
            self.nodes[dst].state.insert(p, state);
            self.mark_partition_resync(dst, p);
            self.nodes[dst].stall += (entries / 64) * self.config.move_cost_per_64;
            for item in pending {
                self.nodes[dst].queue.push_back(item);
            }
            self.primary[p as usize] = dst;
            if let Some(k) = kill_after {
                // Source (or a bystander) died after the install landed:
                // the moved partition is already safe at dst; the kill
                // follows the normal failover path for everything else.
                self.stats.partitions_moved += 1;
                if self.nodes[k].alive {
                    self.kill_node(k)?;
                }
                return Ok(());
            }
        }
        self.stats.partitions_moved += 1;
        Ok(())
    }

    /// One load-balancing pass: while the most backlogged node exceeds the
    /// least by the configured ratio, move one of its partitions over.
    pub fn rebalance(&mut self) {
        for _ in 0..4 {
            let alive: Vec<usize> = (0..self.nodes.len())
                .filter(|&i| self.nodes[i].alive)
                .collect();
            if alive.len() < 2 {
                return;
            }
            let (&max_node, &min_node) = match (
                alive.iter().max_by_key(|&&i| self.nodes[i].backlog()),
                alive.iter().min_by_key(|&&i| self.nodes[i].backlog()),
            ) {
                (Some(a), Some(b)) => (a, b),
                _ => return,
            };
            let (hi, lo) = (
                self.nodes[max_node].backlog(),
                self.nodes[min_node].backlog(),
            );
            if hi < 8 || (hi as f64) < (lo.max(1) as f64) * self.config.imbalance_threshold {
                return;
            }
            // Move the max node's most backlogged partition.
            let mut per_partition: HashMap<u32, usize> = HashMap::new();
            for (p, _, _) in &self.nodes[max_node].queue {
                *per_partition.entry(*p).or_default() += 1;
            }
            // Don't move a partition that IS the whole backlog story if it
            // would just swap the hotspot: pick the largest partition whose
            // backlog <= half the gap, else the smallest.
            let gap = hi - lo;
            let mut candidates: Vec<(u32, usize)> = per_partition.into_iter().collect();
            candidates.sort_by_key(|&(p, n)| (std::cmp::Reverse(n), p));
            let pick = candidates
                .iter()
                .find(|&&(_, n)| n <= gap / 2 + 1)
                .or_else(|| candidates.last())
                .copied();
            let Some((p, _)) = pick else { return };
            if self.move_partition(p, min_node).is_err() {
                return;
            }
        }
    }

    /// Kill a node. With replication, every partition it owned fails over
    /// to its replica (and in-flight replica inputs preserve the data);
    /// without, that state and backlog are lost (counted in
    /// [`FluxStats::lost_inflight`]).
    pub fn kill_node(&mut self, node: usize) -> Result<()> {
        if !self.nodes[node].alive {
            return Err(TcqError::Flux(format!("node {node} already dead")));
        }
        self.nodes[node].alive = false;
        // Per-partition accounting of what died with the node: queued
        // inputs plus tuples already folded into its aggregate state.
        // Only partitions with no live replica actually lose them.
        let mut queued: HashMap<u32, u64> = HashMap::new();
        for (p, _, _) in &self.nodes[node].queue {
            *queued.entry(*p).or_default() += 1;
        }
        self.nodes[node].queue.clear();
        // Un-checkpointed changes die with the node; its durable snapshot
        // (and that snapshot's epoch) is what survives.
        self.nodes[node].dirty.clear();
        let dead_state = std::mem::take(&mut self.nodes[node].state);
        let owned: Vec<u32> = (0..self.config.partitions)
            .filter(|&p| self.primary[p as usize] == node)
            .collect();
        for p in owned {
            match self.replica[p as usize] {
                Some(r) if self.nodes[r].alive => {
                    // Promote the replica; its state and queue already hold
                    // everything the primary had seen or would see. Then
                    // re-replicate so the replication factor survives the
                    // failure, not just the data.
                    self.primary[p as usize] = r;
                    self.replica[p as usize] = self.pick_new_replica(r);
                    if let Some(nr) = self.replica[p as usize] {
                        self.mirror_partition(p, r, nr);
                    }
                    self.stats.failovers += 1;
                }
                _ => {
                    // Data loss: no live replica. The partition restarts
                    // empty on a surviving node; its queued inputs and
                    // aggregated tuples are gone and accounted exactly.
                    let absorbed: u64 = dead_state
                        .get(&p)
                        .map(|g| g.values().map(|(c, _)| *c).sum())
                        .unwrap_or(0);
                    self.stats.lost_inflight += queued.get(&p).copied().unwrap_or(0) + absorbed;
                    // The partition's content changed (it was cleared):
                    // every lost group must reach future rejoin deltas.
                    if let Some(g) = dead_state.get(&p) {
                        self.ship_log[p as usize].current.extend(g.keys().cloned());
                    }
                    let fallback = self.pick_new_replica(node);
                    if let Some(f) = fallback {
                        self.primary[p as usize] = f;
                        self.nodes[f].state.entry(p).or_default();
                        self.mark_partition_resync(f, p);
                        if self.config.replication {
                            self.replica[p as usize] = self.pick_new_replica(f);
                            if let Some(nr) = self.replica[p as usize] {
                                self.mirror_partition(p, f, nr);
                            }
                        }
                    }
                }
            }
        }
        // Partitions replicated ON the dead node lose their replica.
        for p in 0..self.config.partitions as usize {
            if self.replica[p] == Some(node) {
                let pr = self.primary[p];
                self.replica[p] = self.pick_new_replica(pr);
                if let Some(nr) = self.replica[p] {
                    self.mirror_partition(p as u32, pr, nr);
                }
            }
        }
        Ok(())
    }

    /// Pick a host for a new replica: the least-loaded live node other
    /// than `not` (backlog plus resident partitions, ties broken by
    /// index so the choice is deterministic). Returns `None` when the
    /// cluster is down to a single live node.
    fn pick_new_replica(&self, not: usize) -> Option<usize> {
        (0..self.nodes.len())
            .filter(|&i| i != not && self.nodes[i].alive)
            .min_by_key(|&i| (self.nodes[i].backlog() + self.nodes[i].state.len(), i))
    }

    /// Take an incremental cluster checkpoint: seal the per-partition
    /// dirty-group logs under a new epoch and fold each alive node's
    /// dirtied groups into its durable snapshot. Cost (groups copied)
    /// scales with churn since the previous checkpoint, not with total
    /// state size.
    pub fn checkpoint(&mut self) -> FluxCheckpoint {
        self.ckpt_epoch += 1;
        for log in &mut self.ship_log {
            let current = std::mem::take(&mut log.current);
            if !current.is_empty() {
                log.sealed.push((self.ckpt_epoch, current));
            }
        }
        let mut groups_copied = 0u64;
        for i in 0..self.nodes.len() {
            if !self.nodes[i].alive {
                continue;
            }
            let dirty = std::mem::take(&mut self.nodes[i].dirty);
            for (p, keys) in dirty {
                match self.nodes[i].state.get(&p) {
                    Some(group) => {
                        let snap = self.snapshots[i].state.entry(p).or_default();
                        for k in keys {
                            match group.get(&k) {
                                Some(&v) => {
                                    snap.insert(k, v);
                                }
                                None => {
                                    snap.remove(&k);
                                }
                            }
                            groups_copied += 1;
                        }
                    }
                    // Partition moved away: it leaves the snapshot too.
                    None => {
                        self.snapshots[i].state.remove(&p);
                    }
                }
            }
            self.snapshots[i].epoch = self.ckpt_epoch;
        }
        // Sealed sets at or before the oldest snapshot epoch can never be
        // requested by a rejoiner; drop them so the log stays bounded.
        let min_epoch = self.snapshots.iter().map(|s| s.epoch).min().unwrap_or(0);
        for log in &mut self.ship_log {
            log.sealed.retain(|(e, _)| *e > min_epoch);
        }
        FluxCheckpoint {
            epoch: self.ckpt_epoch,
            groups_copied,
        }
    }

    /// Restart (rejoin) a previously killed node. The node restores its
    /// durable snapshot locally, then for every degraded partition it is
    /// drafted to serve, the live primary ships only the groups dirtied
    /// since that snapshot's epoch — rejoin traffic is bounded by the
    /// delta, not the node's total state. The shipped volume is returned
    /// and accumulated into [`FluxStats::groups_shipped`] /
    /// [`FluxStats::bytes_shipped`].
    pub fn restart_node(&mut self, node: usize) -> Result<RejoinReport> {
        if node >= self.nodes.len() {
            return Err(TcqError::Flux(format!("no such node {node}")));
        }
        if self.nodes[node].alive {
            return Err(TcqError::Flux(format!("node {node} is already alive")));
        }
        let snapshot_epoch = self.snapshots[node].epoch;
        {
            let n = &mut self.nodes[node];
            n.alive = true;
            n.queue.clear();
            n.stall = 0;
            n.state = self.snapshots[node].state.clone();
            // State now equals the snapshot exactly.
            n.dirty.clear();
        }
        self.stats.restarts += 1;
        let mut report = RejoinReport {
            snapshot_epoch,
            ..RejoinReport::default()
        };
        if self.config.replication {
            for p in 0..self.config.partitions as usize {
                let pr = self.primary[p];
                if !self.nodes[pr].alive || pr == node {
                    continue;
                }
                let degraded = match self.replica[p] {
                    Some(r) => !self.nodes[r].alive,
                    None => true,
                };
                if !degraded {
                    continue;
                }
                self.replica[p] = Some(node);
                // Ship the delta: groups dirtied anywhere in partition p
                // since this node's snapshot epoch, at the primary's
                // current values. Everything else is already correct in
                // the restored snapshot.
                let delta = self.ship_log[p].keys_since(snapshot_epoch);
                let mut bytes = 0u64;
                let primary_group = self.nodes[pr].state.get(&(p as u32)).cloned();
                let group = self.nodes[node].state.entry(p as u32).or_default();
                for k in &delta {
                    let entry = primary_group.as_ref().and_then(|g| g.get(k)).copied();
                    bytes += shipped_group_bytes(k, entry);
                    match entry {
                        Some(v) => {
                            group.insert(k.clone(), v);
                        }
                        None => {
                            group.remove(k);
                        }
                    }
                }
                // Shipped groups are content beyond the snapshot: dirty.
                self.nodes[node]
                    .dirty
                    .entry(p as u32)
                    .or_default()
                    .extend(delta.iter().cloned());
                // Mirror the primary's queued inputs so the pair
                // invariant (replica state + queue ≡ primary state +
                // queue) holds from the first tick.
                let queued: Vec<(u32, Value, f64)> = self.nodes[pr]
                    .queue
                    .iter()
                    .filter(|item| item.0 == p as u32)
                    .cloned()
                    .collect();
                self.nodes[node].queue.extend(queued);
                report.partitions_rejoined += 1;
                report.groups_shipped += delta.len() as u64;
                report.bytes_shipped += bytes;
            }
        }
        // Snapshot partitions the node is not serving again are pruned —
        // the authoritative copies live at the current primaries. The
        // exception is a partition still assigned to this node (it died
        // with no possible fallback): the snapshot resurrects its
        // checkpointed folds, so give those back to the loss accounting
        // that wrote them all off at kill time.
        let mut resurrected = 0u64;
        let mut keep: Vec<u32> = Vec::new();
        for p in 0..self.config.partitions as usize {
            if self.primary[p] == node {
                resurrected += self.nodes[node]
                    .state
                    .get(&(p as u32))
                    .map(|g| g.values().map(|(c, _)| *c).sum())
                    .unwrap_or(0);
                keep.push(p as u32);
            } else if self.replica[p] == Some(node) {
                keep.push(p as u32);
            }
        }
        self.nodes[node]
            .state
            .retain(|p, _| keep.binary_search(p).is_ok());
        self.stats.lost_inflight = self.stats.lost_inflight.saturating_sub(resurrected);
        self.stats.groups_shipped += report.groups_shipped;
        self.stats.bytes_shipped += report.bytes_shipped;
        Ok(report)
    }

    /// True when every partition has a live primary and, in replication
    /// mode with ≥2 live nodes, a live replica distinct from it. The
    /// invariant the recovery paths maintain.
    pub fn fully_replicated(&self) -> bool {
        let live = self.nodes.iter().filter(|n| n.alive).count();
        (0..self.config.partitions as usize).all(|p| {
            let pr = self.primary[p];
            if !self.nodes[pr].alive {
                return false;
            }
            if !self.config.replication || live < 2 {
                return true;
            }
            matches!(self.replica[p], Some(r) if r != pr && self.nodes[r].alive)
        })
    }

    /// Re-establish a replica: copy `from`'s state for `p` AND its queued
    /// inputs to `to`, so the pair invariant (replica state + queue ≡
    /// primary state + queue) holds after the copy. This is a *full*
    /// group ship (the target has no usable snapshot of `p`), counted in
    /// [`FluxStats::groups_shipped`] / [`FluxStats::bytes_shipped`].
    fn mirror_partition(&mut self, p: u32, from: usize, to: usize) {
        let state = self.nodes[from].state.get(&p).cloned().unwrap_or_default();
        let queued: Vec<(u32, Value, f64)> = self.nodes[from]
            .queue
            .iter()
            .filter(|item| item.0 == p)
            .cloned()
            .collect();
        self.stats.groups_shipped += state.len() as u64;
        self.stats.bytes_shipped += state
            .iter()
            .map(|(k, &(c, s))| shipped_group_bytes(k, Some((c, s))))
            .sum::<u64>();
        let dst = &mut self.nodes[to];
        dst.stall += (state.len() as u64 / 64) * self.config.move_cost_per_64;
        dst.state.insert(p, state);
        for item in queued {
            dst.queue.push_back(item);
        }
        self.mark_partition_resync(to, p);
    }

    /// Record that partition `p`'s content at `node` was wholesale
    /// installed or cleared (not incrementally folded): every group the
    /// node's snapshot knew *or* the node now holds must be re-resolved
    /// at the next checkpoint, else the snapshot could keep stale groups.
    fn mark_partition_resync(&mut self, node: usize, p: u32) {
        let mut keys: HashSet<Value> = self.snapshots[node]
            .state
            .get(&p)
            .map(|g| g.keys().cloned().collect())
            .unwrap_or_default();
        if let Some(g) = self.nodes[node].state.get(&p) {
            keys.extend(g.keys().cloned());
        }
        self.nodes[node].dirty.insert(p, keys);
    }

    /// Merged group-by results over primary partitions: key -> (count, sum).
    pub fn results(&self) -> HashMap<Value, (u64, f64)> {
        let mut out: HashMap<Value, (u64, f64)> = HashMap::new();
        for p in 0..self.config.partitions as usize {
            let node = self.primary[p];
            if let Some(groups) = self.nodes[node].state.get(&(p as u32)) {
                for (k, (c, s)) in groups {
                    let e = out.entry(k.clone()).or_insert((0, 0.0));
                    e.0 += c;
                    e.1 += s;
                }
            }
        }
        out
    }

    /// The node currently serving partition `p` as primary.
    pub fn primary_of(&self, p: u32) -> usize {
        self.primary[p as usize]
    }

    /// The node currently holding partition `p`'s replica, if any.
    pub fn replica_of(&self, p: u32) -> Option<usize> {
        self.replica[p as usize]
    }

    /// Number of hash partitions.
    pub fn partitions(&self) -> u32 {
        self.config.partitions
    }

    /// Per-node statistics.
    pub fn node_stats(&self) -> Vec<NodeStats> {
        (0..self.nodes.len())
            .map(|i| NodeStats {
                alive: self.nodes[i].alive,
                processed: self.nodes[i].processed,
                backlog: self.nodes[i].backlog(),
                primaries: self.primary.iter().filter(|&&n| n == i).count(),
            })
            .collect()
    }

    /// Cluster counters.
    pub fn stats(&self) -> FluxStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcq_common::{DataType, Field, Schema, SchemaRef, Timestamp, TupleBuilder};

    fn schema() -> SchemaRef {
        Schema::new(vec![
            Field::new("key", DataType::Int),
            Field::new("val", DataType::Float),
        ])
        .into_ref()
    }

    fn t(key: i64, val: f64, ts: i64) -> Tuple {
        TupleBuilder::new(schema())
            .push(key)
            .push(val)
            .at(Timestamp::logical(ts))
            .build()
            .unwrap()
    }

    /// Reference group-by for correctness checks.
    fn reference(tuples: &[Tuple]) -> HashMap<Value, (u64, f64)> {
        let mut out: HashMap<Value, (u64, f64)> = HashMap::new();
        for tp in tuples {
            let e = out.entry(tp.value(0).clone()).or_insert((0, 0.0));
            e.0 += 1;
            e.1 += tp.value(1).as_float().unwrap();
        }
        out
    }

    fn workload(n: i64, keys: i64) -> Vec<Tuple> {
        (0..n).map(|i| t(i % keys, 1.0, i)).collect()
    }

    #[test]
    fn partitioned_group_by_matches_reference() {
        let mut cluster = FluxCluster::new(FluxConfig::uniform(4), 0, 1).unwrap();
        let tuples = workload(2000, 37);
        for tp in &tuples {
            cluster.ingest(tp).unwrap();
        }
        cluster.run_until_drained(10_000);
        assert_eq!(cluster.results(), reference(&tuples));
        let st = cluster.stats();
        assert_eq!(st.processed, 2000);
    }

    #[test]
    fn rebalancing_helps_with_heterogeneous_nodes() {
        // One node is 8x slower; without rebalancing it gates the drain.
        let run = |rebalance: u64| {
            let cfg = FluxConfig::uniform(4)
                .with_speeds(vec![1, 8, 8, 8])
                .with_rebalancing(rebalance);
            let mut cluster = FluxCluster::new(cfg, 0, 1).unwrap();
            let tuples = workload(8000, 101);
            for tp in &tuples {
                cluster.ingest(tp).unwrap();
            }
            let ticks = cluster.run_until_drained(100_000);
            assert_eq!(
                cluster.results(),
                reference(&tuples),
                "answers must survive moves"
            );
            (ticks, cluster.stats().partitions_moved)
        };
        let (ticks_static, moved_static) = run(0);
        let (ticks_flux, moved_flux) = run(8);
        assert_eq!(moved_static, 0);
        assert!(moved_flux > 0, "balancer should move partitions");
        assert!(
            (ticks_flux as f64) < ticks_static as f64 * 0.7,
            "rebalancing should cut drain time: static={ticks_static}, flux={ticks_flux}"
        );
    }

    #[test]
    fn failover_with_replication_loses_nothing() {
        let cfg = FluxConfig::uniform(4).with_replication();
        let mut cluster = FluxCluster::new(cfg, 0, 1).unwrap();
        let tuples = workload(4000, 53);
        for (i, tp) in tuples.iter().enumerate() {
            cluster.ingest(tp).unwrap();
            if i % 16 == 0 {
                cluster.tick();
            }
            if i == 2000 {
                cluster.kill_node(2).unwrap();
            }
        }
        cluster.run_until_drained(100_000);
        assert_eq!(cluster.results(), reference(&tuples));
        let st = cluster.stats();
        assert!(st.failovers > 0);
        assert_eq!(st.lost_inflight, 0);
        assert!(!cluster.node_stats()[2].alive);
    }

    #[test]
    fn failure_without_replication_loses_data() {
        let mut cluster = FluxCluster::new(FluxConfig::uniform(4), 0, 1).unwrap();
        let tuples = workload(4000, 53);
        for (i, tp) in tuples.iter().enumerate() {
            cluster.ingest(tp).unwrap();
            if i % 16 == 0 {
                cluster.tick();
            }
            if i == 2000 {
                cluster.kill_node(2).unwrap();
            }
        }
        cluster.run_until_drained(100_000);
        let got = cluster.results();
        let want = reference(&tuples);
        let got_total: u64 = got.values().map(|(c, _)| c).sum();
        let want_total: u64 = want.values().map(|(c, _)| c).sum();
        assert!(
            got_total < want_total,
            "without replicas a failure must lose tuples ({got_total} vs {want_total})"
        );
    }

    #[test]
    fn ingest_after_failover_keeps_working() {
        let cfg = FluxConfig::uniform(3).with_replication();
        let mut cluster = FluxCluster::new(cfg, 0, 1).unwrap();
        for i in 0..100 {
            cluster.ingest(&t(i % 7, 1.0, i)).unwrap();
        }
        cluster.kill_node(0).unwrap();
        // All partitions now primary on 1 or 2; ingestion continues.
        for i in 100..200 {
            cluster.ingest(&t(i % 7, 1.0, i)).unwrap();
        }
        cluster.run_until_drained(10_000);
        let total: u64 = cluster.results().values().map(|(c, _)| c).sum();
        assert_eq!(total, 200);
    }

    #[test]
    fn explicit_partition_move_preserves_pending_work() {
        let mut cluster = FluxCluster::new(FluxConfig::uniform(2), 0, 1).unwrap();
        let tuples = workload(100, 5);
        for tp in &tuples {
            cluster.ingest(tp).unwrap();
        }
        // Move every partition to node 1 before processing anything.
        for p in 0..64 {
            cluster.move_partition(p, 1).unwrap();
        }
        cluster.run_until_drained(10_000);
        assert_eq!(cluster.results(), reference(&tuples));
        assert_eq!(cluster.node_stats()[0].processed, 0);
        assert_eq!(cluster.node_stats()[1].processed, 100);
    }

    #[test]
    fn config_validation() {
        assert!(FluxCluster::new(
            FluxConfig {
                nodes: 0,
                ..FluxConfig::uniform(1)
            },
            0,
            1
        )
        .is_err());
        let mut bad = FluxConfig::uniform(2);
        bad.partitions = 0;
        assert!(FluxCluster::new(bad, 0, 1).is_err());
        let mut mismatched = FluxConfig::uniform(2);
        mismatched.speeds = vec![1];
        assert!(FluxCluster::new(mismatched, 0, 1).is_err());
    }

    #[test]
    fn kill_dead_node_rejected() {
        let mut cluster =
            FluxCluster::new(FluxConfig::uniform(2).with_replication(), 0, 1).unwrap();
        cluster.kill_node(0).unwrap();
        assert!(cluster.kill_node(0).is_err());
    }

    #[test]
    fn replication_factor_restored_after_any_single_kill() {
        for victim in 0..4 {
            let cfg = FluxConfig::uniform(4).with_replication();
            let mut cluster = FluxCluster::new(cfg, 0, 1).unwrap();
            for tp in workload(500, 23) {
                cluster.ingest(&tp).unwrap();
            }
            assert!(cluster.fully_replicated());
            cluster.kill_node(victim).unwrap();
            assert!(
                cluster.fully_replicated(),
                "after killing node {victim} every partition must regain a live replica"
            );
        }
    }

    #[test]
    fn double_fault_primary_then_promoted_replica_loses_nothing() {
        // Kill a primary, then kill the node its replicas were promoted
        // onto. Because failover immediately re-replicates, the second
        // fault still finds a live copy of everything.
        let cfg = FluxConfig::uniform(4).with_replication();
        let mut cluster = FluxCluster::new(cfg, 0, 1).unwrap();
        let tuples = workload(3000, 41);
        for (i, tp) in tuples.iter().enumerate() {
            cluster.ingest(tp).unwrap();
            if i % 16 == 0 {
                cluster.tick();
            }
            if i == 1000 {
                cluster.kill_node(1).unwrap();
            }
            if i == 2000 {
                // Node 1's partitions were promoted to node 2 (its paired
                // replica in the initial (p+1)%n layout); kill that too.
                cluster.kill_node(2).unwrap();
            }
        }
        cluster.run_until_drained(100_000);
        assert_eq!(cluster.results(), reference(&tuples));
        let st = cluster.stats();
        assert_eq!(st.lost_inflight, 0, "double fault must not lose data");
        assert!(cluster.fully_replicated());
    }

    #[test]
    fn kill_down_to_one_node_keeps_answers() {
        // Sequential kills down to a single survivor: each failover finds
        // a live replica, so the lone node ends up holding everything.
        let cfg = FluxConfig::uniform(3).with_replication();
        let mut cluster = FluxCluster::new(cfg, 0, 1).unwrap();
        let tuples = workload(1500, 29);
        for (i, tp) in tuples.iter().enumerate() {
            cluster.ingest(tp).unwrap();
            if i % 8 == 0 {
                cluster.tick();
            }
            if i == 500 {
                cluster.kill_node(0).unwrap();
            }
            if i == 1000 {
                cluster.kill_node(1).unwrap();
            }
        }
        cluster.run_until_drained(100_000);
        assert_eq!(cluster.results(), reference(&tuples));
        assert_eq!(cluster.stats().lost_inflight, 0);
        // pick_new_replica has nowhere to go: replicas are gone, primaries
        // all on the survivor.
        let stats = cluster.node_stats();
        assert!(!stats[0].alive && !stats[1].alive && stats[2].alive);
        assert_eq!(stats[2].primaries, 64);
    }

    #[test]
    fn loss_without_replication_equals_lost_inflight_exactly() {
        let mut cluster = FluxCluster::new(FluxConfig::uniform(4), 0, 1).unwrap();
        let tuples = workload(4000, 53);
        for (i, tp) in tuples.iter().enumerate() {
            cluster.ingest(tp).unwrap();
            if i % 16 == 0 {
                cluster.tick();
            }
            if i == 2000 {
                cluster.kill_node(2).unwrap();
            }
        }
        cluster.run_until_drained(100_000);
        let got_total: u64 = cluster.results().values().map(|(c, _)| c).sum();
        let st = cluster.stats();
        assert!(st.lost_inflight > 0);
        assert_eq!(
            got_total + st.lost_inflight,
            4000,
            "output shortfall must equal the accounted loss"
        );
    }

    #[test]
    fn restart_node_rejoins_as_replica_and_serves_after_next_failover() {
        let cfg = FluxConfig::uniform(3).with_replication();
        let mut cluster = FluxCluster::new(cfg, 0, 1).unwrap();
        let tuples = workload(3000, 31);
        for (i, tp) in tuples.iter().enumerate() {
            cluster.ingest(tp).unwrap();
            if i % 8 == 0 {
                cluster.tick();
            }
            if i == 500 {
                cluster.kill_node(0).unwrap();
            }
            if i == 1500 {
                cluster.restart_node(0).unwrap();
            }
            if i == 2500 {
                // The restarted node is a replica again; killing another
                // node must promote onto it without loss.
                cluster.kill_node(1).unwrap();
            }
        }
        cluster.run_until_drained(100_000);
        assert_eq!(cluster.results(), reference(&tuples));
        let st = cluster.stats();
        assert_eq!(st.restarts, 1);
        assert_eq!(st.lost_inflight, 0);
        assert!(cluster.fully_replicated());
        assert!(cluster.node_stats()[0].alive);
        // Restarting an alive node is rejected.
        assert!(cluster.restart_node(0).is_err());
    }

    #[test]
    fn rejoin_ships_delta_not_total_state() {
        // Two nodes: while one is down there is no spare to re-replicate
        // onto, so every partition stays degraded until the node rejoins.
        // With a pre-kill checkpoint the rejoin ships only the groups
        // dirtied since the snapshot epoch; without one it ships the full
        // state. Either way the answers survive.
        let run = |with_checkpoint: bool| {
            let mut cfg = FluxConfig::uniform(2).with_replication();
            cfg.partitions = 8;
            let mut cluster = FluxCluster::new(cfg, 0, 1).unwrap();
            let bulk = workload(4000, 2000);
            for (i, tp) in bulk.iter().enumerate() {
                cluster.ingest(tp).unwrap();
                if i % 8 == 0 {
                    cluster.tick();
                }
            }
            cluster.run_until_drained(100_000);
            if with_checkpoint {
                let ck = cluster.checkpoint();
                assert_eq!(ck.epoch, 1);
                assert!(ck.groups_copied > 0);
            }
            cluster.kill_node(0).unwrap();
            // Churn after the checkpoint touches only keys 0..100.
            let churn: Vec<Tuple> = (0..300).map(|i| t(i % 100, 1.0, 5000 + i)).collect();
            for (i, tp) in churn.iter().enumerate() {
                cluster.ingest(tp).unwrap();
                if i % 8 == 0 {
                    cluster.tick();
                }
            }
            cluster.run_until_drained(100_000);
            let report = cluster.restart_node(0).unwrap();
            cluster.run_until_drained(100_000);
            let mut all = bulk.clone();
            all.extend(churn);
            assert_eq!(cluster.results(), reference(&all));
            assert!(cluster.fully_replicated());
            assert_eq!(cluster.stats().lost_inflight, 0);
            report
        };
        let full = run(false);
        let delta = run(true);
        assert_eq!(full.snapshot_epoch, 0);
        assert_eq!(delta.snapshot_epoch, 1);
        assert_eq!(full.partitions_rejoined, 8);
        assert_eq!(
            full.groups_shipped, 2000,
            "no snapshot: every group travels"
        );
        assert_eq!(
            delta.groups_shipped, 100,
            "snapshot: only churned groups travel"
        );
        assert!(delta.bytes_shipped > 0 && delta.bytes_shipped < full.bytes_shipped);
    }

    #[test]
    fn double_restart_stats_accounting_is_exact() {
        // Repeated kill/restart cycles of the same node: shipping stats
        // must equal the sum of the per-rejoin reports (a two-node
        // cluster has no spare to mirror onto, so rejoins are the only
        // shipping), each restart counts once, a rejected restart counts
        // zero, and no data is lost.
        fn feed(cluster: &mut FluxCluster, tuples: &[Tuple]) {
            for (i, tp) in tuples.iter().enumerate() {
                cluster.ingest(tp).unwrap();
                if i % 8 == 0 {
                    cluster.tick();
                }
            }
            cluster.run_until_drained(100_000);
        }
        let mut cfg = FluxConfig::uniform(2).with_replication();
        cfg.partitions = 8;
        let mut cluster = FluxCluster::new(cfg, 0, 1).unwrap();
        let mut all: Vec<Tuple> = Vec::new();

        let bulk = workload(1000, 500);
        feed(&mut cluster, &bulk);
        all.extend(bulk);
        cluster.checkpoint();
        cluster.kill_node(0).unwrap();
        let churn_a: Vec<Tuple> = (0..150).map(|i| t(i % 50, 1.0, 2000 + i)).collect();
        feed(&mut cluster, &churn_a);
        all.extend(churn_a);
        let r1 = cluster.restart_node(0).unwrap();
        assert_eq!(r1.snapshot_epoch, 1);
        assert_eq!(r1.groups_shipped, 50);

        cluster.checkpoint();
        cluster.kill_node(0).unwrap();
        let churn_b: Vec<Tuple> = (0..90).map(|i| t(500 + i % 30, 1.0, 3000 + i)).collect();
        feed(&mut cluster, &churn_b);
        all.extend(churn_b);
        let r2 = cluster.restart_node(0).unwrap();
        assert_eq!(r2.snapshot_epoch, 2);
        assert_eq!(
            r2.groups_shipped, 30,
            "second rejoin ships its own delta only"
        );

        cluster.run_until_drained(100_000);
        let st = cluster.stats();
        assert_eq!(st.restarts, 2);
        assert_eq!(st.groups_shipped, r1.groups_shipped + r2.groups_shipped);
        assert_eq!(st.bytes_shipped, r1.bytes_shipped + r2.bytes_shipped);
        assert_eq!(st.lost_inflight, 0);
        assert_eq!(cluster.results(), reference(&all));
        assert!(cluster.fully_replicated());
        assert!(cluster.restart_node(0).is_err());
        assert_eq!(
            cluster.stats().restarts,
            2,
            "a rejected restart must not drift the counter"
        );
    }

    #[test]
    fn kill_during_move_with_state_in_flight_is_lossless() {
        use tcq_common::{FaultAction, FaultPlan, FaultPoint};
        // Destination dies with the state in flight: the move aborts and
        // reinstalls at the source.
        let mut cluster =
            FluxCluster::new(FluxConfig::uniform(3).with_replication(), 0, 1).unwrap();
        let tuples = workload(600, 19);
        for tp in &tuples {
            cluster.ingest(tp).unwrap();
        }
        cluster.attach_injector(
            FaultPlan::new(11)
                .at(FaultPoint::StateMove, 1, FaultAction::KillNode(2))
                .build_shared(),
        );
        // Find a partition owned by node 0 and push it toward node 2.
        let p = (0..64u32).find(|&p| cluster.primary_of(p) == 0).unwrap();
        cluster.move_partition(p, 2).unwrap();
        assert!(!cluster.node_stats()[2].alive, "injected kill must land");
        cluster.run_until_drained(100_000);
        assert_eq!(cluster.results(), reference(&tuples));
        assert_eq!(cluster.stats().lost_inflight, 0);

        // Source dies mid-move: the state already travelled, dst serves it.
        let mut cluster =
            FluxCluster::new(FluxConfig::uniform(3).with_replication(), 0, 1).unwrap();
        for tp in &tuples {
            cluster.ingest(tp).unwrap();
        }
        cluster.attach_injector(
            FaultPlan::new(12)
                .at(FaultPoint::StateMove, 1, FaultAction::KillNode(0))
                .build_shared(),
        );
        let p = (0..64u32).find(|&p| cluster.primary_of(p) == 0).unwrap();
        cluster.move_partition(p, 2).unwrap();
        assert!(!cluster.node_stats()[0].alive);
        assert_eq!(
            cluster.primary_of(p),
            2,
            "install must land before the kill"
        );
        cluster.run_until_drained(100_000);
        assert_eq!(cluster.results(), reference(&tuples));
        assert_eq!(cluster.stats().lost_inflight, 0);
    }

    #[test]
    fn rebalance_survives_state_move_fault_in_same_tick() {
        use tcq_common::{FaultAction, FaultPlan, FaultPoint};
        // The balancer itself triggers the faulted move: a slow node builds
        // backlog, tick() fires rebalance(), rebalance() calls
        // move_partition(), and the injected StateMove kill lands inside
        // that same tick with the state in flight. The pass must neither
        // lose data nor wedge: remaining moves in the pass see the updated
        // alive set, failover promotes replicas, and the drained answers
        // still match the reference.
        let cfg = FluxConfig::uniform(3)
            .with_speeds(vec![1, 8, 8])
            .with_rebalancing(8)
            .with_replication();
        let mut cluster = FluxCluster::new(cfg, 0, 1).unwrap();
        let injector = FaultPlan::new(17)
            .at(FaultPoint::StateMove, 1, FaultAction::KillNode(2))
            .build_shared();
        cluster.attach_injector(injector.clone());
        let tuples = workload(6000, 101);
        for tp in &tuples {
            cluster.ingest(tp).unwrap();
        }
        cluster.run_until_drained(100_000);
        assert_eq!(
            injector.log().len(),
            1,
            "the StateMove fault must fire during a balancer-driven move"
        );
        assert!(!cluster.node_stats()[2].alive, "injected kill must land");
        let st = cluster.stats();
        assert!(st.partitions_moved > 0, "balancer did move partitions");
        assert!(st.failovers > 0, "the kill forced failovers");
        assert_eq!(st.lost_inflight, 0, "replicated move+kill is lossless");
        assert_eq!(cluster.results(), reference(&tuples));
        assert!(
            cluster.fully_replicated(),
            "replication factor restored on the two survivors"
        );
    }

    #[test]
    fn injected_overflow_and_malformed_tuples_are_accounted() {
        use tcq_common::{FaultAction, FaultPlan, FaultPoint};
        let mut cluster = FluxCluster::new(FluxConfig::uniform(2), 0, 1).unwrap();
        cluster.attach_injector(
            FaultPlan::new(5)
                .at(FaultPoint::Ingest, 3, FaultAction::Overflow)
                .at(
                    FaultPoint::Ingest,
                    7,
                    FaultAction::Error("queue wedged".into()),
                )
                .build_shared(),
        );
        let mut accepted = 0u64;
        let mut errors = 0u64;
        for i in 0..10 {
            match cluster.ingest(&t(i % 3, 1.0, i)) {
                Ok(()) => accepted += 1,
                Err(_) => errors += 1,
            }
        }
        // Poll 3 dropped (counted, Ok), poll 7 errored.
        assert_eq!(errors, 1);
        assert_eq!(accepted, 9);
        assert_eq!(cluster.stats().overflow_dropped, 1);
        cluster.run_until_drained(10_000);
        let total: u64 = cluster.results().values().map(|(c, _)| c).sum();
        assert_eq!(total + cluster.stats().overflow_dropped + errors, 10);

        // Malformed (narrow) tuple rejected without panicking.
        let narrow = Schema::new(vec![Field::new("only", DataType::Int)]).into_ref();
        let bad = TupleBuilder::new(narrow)
            .push(1i64)
            .at(Timestamp::logical(1))
            .build()
            .unwrap();
        assert!(cluster.ingest(&bad).is_err());
    }
}
