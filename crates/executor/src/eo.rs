//! Execution Objects and the executor that hosts them.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use tcq_common::sync::{Condvar, Mutex};

use tcq_common::{FaultAction, FaultPoint, Result, SharedInjector, TcqError};
use tcq_fjords::ModuleStatus;

use crate::dispatch::{DispatchUnit, DuId};
use crate::watchdog::{DuDiag, StallDiagnosis, WatchdogConfig, WatchdogState, WatchdogStats};

/// Executor configuration.
#[derive(Debug, Clone)]
pub struct ExecutorConfig {
    /// Number of Execution Objects (OS threads).
    pub eos: usize,
    /// Work quantum granted per DU per scheduling round.
    pub quantum: usize,
    /// How long an EO parks when all of its DUs are idle.
    pub idle_park: Duration,
    /// Optional fault injector polled at [`FaultPoint::OperatorRun`]
    /// before each DU quantum (chaos testing).
    pub injector: Option<SharedInjector>,
    /// Optional liveness watchdog: EO 0 runs stall detection once per
    /// scheduling round against the config's progress registry; every EO
    /// applies the recovery ladder (nudge, then escalate) to its DUs.
    pub watchdog: Option<WatchdogConfig>,
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        ExecutorConfig {
            eos: 2,
            quantum: 64,
            idle_park: Duration::from_micros(200),
            injector: None,
            watchdog: None,
        }
    }
}

/// Point-in-time executor statistics.
#[derive(Debug, Clone)]
pub struct ExecutorStats {
    /// Per-EO: number of hosted DUs.
    pub dus_per_eo: Vec<usize>,
    /// Per-EO: scheduling rounds executed.
    pub rounds_per_eo: Vec<u64>,
    /// Per-EO: nanoseconds spent inside DU quanta (the EO's useful work).
    pub busy_ns_per_eo: Vec<u64>,
    /// Per-EO: nanoseconds spent parked waiting for work. Utilization is
    /// `busy / (busy + idle)`; comparing it across EOs exposes placement
    /// skew that `rounds_per_eo` alone cannot (a round may be all-idle).
    pub idle_ns_per_eo: Vec<u64>,
    /// Quanta granted per DU (including already-retired DUs), aggregated
    /// across EOs. The per-DU load signal behind the exp_scaling skew
    /// column.
    pub quanta_per_du: Vec<(DuId, u64)>,
    /// DUs that ran to completion.
    pub completed: u64,
    /// DUs retired because they errored, panicked, or had a fault
    /// injected (subset of `completed`).
    pub faulted: u64,
    /// Liveness watchdog counters (all zero when no watchdog is
    /// configured — and on any healthy run).
    pub watchdog: WatchdogStats,
}

impl ExecutorStats {
    /// Per-EO utilization in `[0, 1]`: busy time over busy + parked time.
    /// EOs that have done neither report 0.
    pub fn utilization_per_eo(&self) -> Vec<f64> {
        self.busy_ns_per_eo
            .iter()
            .zip(&self.idle_ns_per_eo)
            .map(|(&b, &i)| {
                let total = b + i;
                if total == 0 {
                    0.0
                } else {
                    b as f64 / total as f64
                }
            })
            .collect()
    }
}

struct EoShared {
    /// Freshly submitted DUs (the EO folds them in at the next round).
    inbox: Mutex<Vec<(DuId, Box<dyn DispatchUnit>)>>,
    /// DUs asked to be cancelled.
    cancels: Mutex<Vec<DuId>>,
    wake: Condvar,
    wake_lock: Mutex<()>,
    rounds: AtomicU64,
    du_count: AtomicU64,
    completed: AtomicU64,
    faulted: AtomicU64,
    busy_ns: AtomicU64,
    idle_ns: AtomicU64,
    /// Quanta granted per DU hosted on this EO (retired DUs keep their
    /// final count). Flushed once per round, not per quantum.
    quanta: Mutex<HashMap<DuId, u64>>,
}

struct Registry {
    /// footprint class -> EO index ("we create query classes for disjoint
    /// sets of footprints", §4.2.2).
    class_to_eo: HashMap<u64, usize>,
    /// du -> EO index (for cancellation).
    du_to_eo: HashMap<DuId, usize>,
}

/// The multi-threaded executor: a pool of Execution Objects.
pub struct Executor {
    config: ExecutorConfig,
    shared: Vec<Arc<EoShared>>,
    handles: Vec<JoinHandle<()>>,
    registry: Mutex<Registry>,
    next_du: AtomicU64,
    stop: Arc<AtomicBool>,
    watchdog: Option<Arc<WatchdogState>>,
}

impl Executor {
    /// Start an executor with the given configuration.
    pub fn start(config: ExecutorConfig) -> Result<Self> {
        if config.eos == 0 {
            return Err(TcqError::Executor("need at least one EO".into()));
        }
        let stop = Arc::new(AtomicBool::new(false));
        let watchdog = config
            .watchdog
            .clone()
            .map(|cfg| Arc::new(WatchdogState::new(cfg, config.eos)));
        let mut shared = Vec::with_capacity(config.eos);
        let mut handles = Vec::with_capacity(config.eos);
        for eo_idx in 0..config.eos {
            let sh = Arc::new(EoShared {
                inbox: Mutex::new(Vec::new()),
                cancels: Mutex::new(Vec::new()),
                wake: Condvar::new(),
                wake_lock: Mutex::new(()),
                rounds: AtomicU64::new(0),
                du_count: AtomicU64::new(0),
                completed: AtomicU64::new(0),
                faulted: AtomicU64::new(0),
                busy_ns: AtomicU64::new(0),
                idle_ns: AtomicU64::new(0),
                quanta: Mutex::new(HashMap::new()),
            });
            shared.push(Arc::clone(&sh));
            let stop2 = Arc::clone(&stop);
            let cfg = config.clone();
            let wd = watchdog.clone();
            handles.push(
                std::thread::Builder::new()
                    .name(format!("tcq-eo-{eo_idx}"))
                    .spawn(move || eo_loop(sh, cfg, stop2, eo_idx, wd))
                    .map_err(|e| TcqError::Executor(format!("spawn EO: {e}")))?,
            );
        }
        Ok(Executor {
            config,
            shared,
            handles,
            registry: Mutex::new(Registry {
                class_to_eo: HashMap::new(),
                du_to_eo: HashMap::new(),
            }),
            next_du: AtomicU64::new(1),
            stop,
            watchdog,
        })
    }

    /// Submit a DU under a footprint class. DUs of one class always share
    /// an EO; a new class is placed on the least-loaded EO.
    pub fn submit(&self, class: u64, du: Box<dyn DispatchUnit>) -> Result<DuId> {
        if self.stop.load(Ordering::Acquire) {
            return Err(TcqError::Executor("executor is shut down".into()));
        }
        let id = self.next_du.fetch_add(1, Ordering::Relaxed);
        let eo_idx = {
            let mut reg = self.registry.lock();
            let idx = match reg.class_to_eo.get(&class) {
                Some(&i) => i,
                None => {
                    let i = self.least_loaded_eo();
                    reg.class_to_eo.insert(class, i);
                    i
                }
            };
            reg.du_to_eo.insert(id, idx);
            idx
        };
        let sh = &self.shared[eo_idx];
        sh.inbox.lock().push((id, du));
        sh.du_count.fetch_add(1, Ordering::Relaxed);
        sh.wake.notify_one();
        Ok(id)
    }

    fn least_loaded_eo(&self) -> usize {
        (0..self.shared.len())
            .min_by_key(|&i| self.shared[i].du_count.load(Ordering::Relaxed))
            .expect("at least one EO")
    }

    /// Cancel a DU; it is dropped at its EO's next round. Unknown ids error.
    pub fn cancel(&self, id: DuId) -> Result<()> {
        let eo_idx = {
            let reg = self.registry.lock();
            *reg.du_to_eo
                .get(&id)
                .ok_or_else(|| TcqError::Executor(format!("unknown DU {id}")))?
        };
        let sh = &self.shared[eo_idx];
        sh.cancels.lock().push(id);
        sh.wake.notify_one();
        Ok(())
    }

    /// Which EO a DU landed on (tests: class affinity).
    pub fn eo_of(&self, id: DuId) -> Option<usize> {
        self.registry.lock().du_to_eo.get(&id).copied()
    }

    /// Snapshot statistics.
    pub fn stats(&self) -> ExecutorStats {
        ExecutorStats {
            dus_per_eo: self
                .shared
                .iter()
                .map(|s| s.du_count.load(Ordering::Relaxed) as usize)
                .collect(),
            rounds_per_eo: self
                .shared
                .iter()
                .map(|s| s.rounds.load(Ordering::Relaxed))
                .collect(),
            busy_ns_per_eo: self
                .shared
                .iter()
                .map(|s| s.busy_ns.load(Ordering::Relaxed))
                .collect(),
            idle_ns_per_eo: self
                .shared
                .iter()
                .map(|s| s.idle_ns.load(Ordering::Relaxed))
                .collect(),
            quanta_per_du: {
                let mut all: Vec<(DuId, u64)> = self
                    .shared
                    .iter()
                    .flat_map(|s| {
                        s.quanta
                            .lock()
                            .iter()
                            .map(|(&id, &n)| (id, n))
                            .collect::<Vec<_>>()
                    })
                    .collect();
                all.sort_unstable();
                all
            },
            completed: self
                .shared
                .iter()
                .map(|s| s.completed.load(Ordering::Relaxed))
                .sum(),
            faulted: self
                .shared
                .iter()
                .map(|s| s.faulted.load(Ordering::Relaxed))
                .sum(),
            watchdog: self
                .watchdog
                .as_ref()
                .map(|w| w.stats())
                .unwrap_or_default(),
        }
    }

    /// The most recent stall diagnosis, if the watchdog has declared one.
    pub fn last_stall(&self) -> Option<StallDiagnosis> {
        self.watchdog.as_ref().and_then(|w| w.last_stall())
    }

    /// Number of EOs.
    pub fn eo_count(&self) -> usize {
        self.shared.len()
    }

    /// The configured quantum.
    pub fn quantum(&self) -> usize {
        self.config.quantum
    }

    /// Stop all EOs and join their threads. Running DUs are dropped.
    pub fn shutdown(mut self) -> Result<()> {
        self.stop.store(true, Ordering::Release);
        for sh in &self.shared {
            sh.wake.notify_all();
        }
        for h in self.handles.drain(..) {
            h.join()
                .map_err(|_| TcqError::Executor("EO thread panicked".into()))?;
        }
        Ok(())
    }
}

impl Drop for Executor {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        for sh in &self.shared {
            sh.wake.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn eo_loop(
    shared: Arc<EoShared>,
    config: ExecutorConfig,
    stop: Arc<AtomicBool>,
    eo_idx: usize,
    watchdog: Option<Arc<WatchdogState>>,
) {
    let mut dus: Vec<(DuId, Box<dyn DispatchUnit>)> = Vec::new();
    let mut statuses: Vec<&'static str> = Vec::new();
    let mut applied_nudge: u64 = 0;
    let mut applied_escalate: u64 = 0;
    loop {
        if stop.load(Ordering::Acquire) {
            return;
        }
        // Fold in fresh queries; apply cancellations.
        {
            let mut inbox = shared.inbox.lock();
            dus.append(&mut inbox);
        }
        {
            let mut cancels = shared.cancels.lock();
            if !cancels.is_empty() {
                let before = dus.len();
                dus.retain(|(id, _)| !cancels.contains(id));
                let removed = (before - dus.len()) as u64;
                shared.du_count.fetch_sub(removed, Ordering::Relaxed);
                cancels.clear();
            }
        }
        // Apply any pending recovery rungs before granting quanta, so a
        // nudged DU gets to act on it this round.
        if let Some(wd) = &watchdog {
            let gen = wd.pending_nudge();
            if gen > applied_nudge {
                applied_nudge = gen;
                let mut worked = false;
                for (_, du) in dus.iter_mut() {
                    worked |= du.nudge();
                }
                if worked {
                    wd.note_nudge_worked();
                }
            }
            let gen = wd.pending_escalate();
            if gen > applied_escalate {
                applied_escalate = gen;
                let mut worked = false;
                for (_, du) in dus.iter_mut() {
                    worked |= du.escalate();
                }
                if worked {
                    wd.note_escalate_worked();
                }
            }
        }
        if dus.is_empty() {
            if let Some(wd) = &watchdog {
                watchdog_round(wd, eo_idx, &shared, &dus, &[]);
            }
            let parked = std::time::Instant::now();
            let mut guard = shared.wake_lock.lock();
            shared
                .wake
                .wait_for(&mut guard, config.idle_park.max(Duration::from_micros(50)));
            drop(guard);
            shared
                .idle_ns
                .fetch_add(parked.elapsed().as_nanos() as u64, Ordering::Relaxed);
            continue;
        }
        // One round-robin scheduling round.
        shared.rounds.fetch_add(1, Ordering::Relaxed);
        let round_started = std::time::Instant::now();
        let mut any_ready = false;
        let mut finished: Vec<usize> = Vec::new();
        let mut faulted: u64 = 0;
        let mut ran: Vec<DuId> = Vec::with_capacity(dus.len());
        statuses.clear();
        for (i, (id, du)) in dus.iter_mut().enumerate() {
            // Chaos hook: an injected fault stands in for the operator
            // itself misbehaving.
            match config
                .injector
                .as_ref()
                .and_then(|inj| inj.poll(FaultPoint::OperatorRun))
            {
                Some(FaultAction::Error(_)) => {
                    finished.push(i);
                    faulted += 1;
                    statuses.push("injected-error");
                    continue;
                }
                Some(FaultAction::Panic(msg)) => {
                    // Simulated operator panic: isolated exactly like a
                    // real one below.
                    let _ = catch_unwind(AssertUnwindSafe(|| panic!("{msg}")));
                    finished.push(i);
                    faulted += 1;
                    statuses.push("injected-panic");
                    continue;
                }
                Some(FaultAction::Stall { .. }) => {
                    statuses.push("injected-stall");
                    continue; // skip this quantum
                }
                _ => {}
            }
            // A panicking DU is retired like an erroring one; the engine
            // must not wedge the whole EO ("degrade in a controlled
            // fashion").
            ran.push(*id);
            match catch_unwind(AssertUnwindSafe(|| du.run(config.quantum))) {
                Ok(Ok(ModuleStatus::Ready)) => {
                    any_ready = true;
                    statuses.push("ready");
                }
                Ok(Ok(ModuleStatus::Idle)) => statuses.push("idle"),
                Ok(Ok(ModuleStatus::Done)) => {
                    finished.push(i);
                    statuses.push("done");
                }
                Ok(Err(_)) | Err(_) => {
                    finished.push(i);
                    faulted += 1;
                    statuses.push("faulted");
                }
            }
        }
        shared
            .busy_ns
            .fetch_add(round_started.elapsed().as_nanos() as u64, Ordering::Relaxed);
        if let Some(wd) = &watchdog {
            watchdog_round(wd, eo_idx, &shared, &dus, &statuses);
        }
        if !ran.is_empty() {
            // One bookkeeping lock per round, not per quantum. DUs skipped
            // by an injected stall (or retired before running) drew no
            // quantum and are absent from `ran`.
            let mut q = shared.quanta.lock();
            for id in &ran {
                *q.entry(*id).or_insert(0) += 1;
            }
        }
        for &i in finished.iter().rev() {
            dus.swap_remove(i);
            shared.du_count.fetch_sub(1, Ordering::Relaxed);
            shared.completed.fetch_add(1, Ordering::Relaxed);
        }
        shared.faulted.fetch_add(faulted, Ordering::Relaxed);
        if !any_ready {
            // Everyone idle: park briefly instead of spinning.
            let parked = std::time::Instant::now();
            let mut guard = shared.wake_lock.lock();
            shared.wake.wait_for(&mut guard, config.idle_park);
            drop(guard);
            shared
                .idle_ns
                .fetch_add(parked.elapsed().as_nanos() as u64, Ordering::Relaxed);
        }
    }
}

/// Per-round watchdog bookkeeping for one EO: publish how much data its
/// DUs are holding (plus per-DU detail while a stall is suspected), and —
/// on the detector EO — advance the stall detector one engine tick.
fn watchdog_round(
    wd: &Arc<WatchdogState>,
    eo_idx: usize,
    shared: &EoShared,
    dus: &[(DuId, Box<dyn DispatchUnit>)],
    statuses: &[&'static str],
) {
    let buffered: usize = dus.iter().map(|(_, du)| du.buffered()).sum();
    let details = if wd.publishing_details() {
        let quanta = shared.quanta.lock();
        Some(
            dus.iter()
                .enumerate()
                .map(|(i, (id, du))| DuDiag {
                    id: *id,
                    name: du.name().to_string(),
                    buffered: du.buffered(),
                    last_status: statuses.get(i).copied().unwrap_or("not-run"),
                    quanta: quanta.get(id).copied().unwrap_or(0),
                })
                .collect(),
        )
    } else {
        None
    };
    wd.publish(eo_idx, buffered, details);
    if eo_idx == 0 {
        wd.tick();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dispatch::FnDu;
    use std::sync::atomic::AtomicUsize;

    fn counting_du(target: usize, counter: Arc<AtomicUsize>) -> Box<dyn DispatchUnit> {
        Box::new(FnDu::new("count", move |q| {
            let before = counter.load(Ordering::Relaxed);
            if before >= target {
                return Ok(ModuleStatus::Done);
            }
            let step = q.min(target - before);
            counter.fetch_add(step, Ordering::Relaxed);
            Ok(if before + step >= target {
                ModuleStatus::Done
            } else {
                ModuleStatus::Ready
            })
        }))
    }

    fn wait_for(cond: impl Fn() -> bool, millis: u64) -> bool {
        let deadline = std::time::Instant::now() + Duration::from_millis(millis);
        while std::time::Instant::now() < deadline {
            if cond() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        cond()
    }

    #[test]
    fn dus_run_to_completion() {
        let ex = Executor::start(ExecutorConfig::default()).unwrap();
        let counters: Vec<Arc<AtomicUsize>> =
            (0..8).map(|_| Arc::new(AtomicUsize::new(0))).collect();
        for (i, c) in counters.iter().enumerate() {
            ex.submit(i as u64, counting_du(10_000, Arc::clone(c)))
                .unwrap();
        }
        assert!(wait_for(
            || counters.iter().all(|c| c.load(Ordering::Relaxed) == 10_000),
            5000
        ));
        assert!(wait_for(|| ex.stats().completed == 8, 5000));
        ex.shutdown().unwrap();
    }

    #[test]
    fn same_class_shares_an_eo_and_new_classes_spread() {
        let ex = Executor::start(ExecutorConfig {
            eos: 3,
            ..Default::default()
        })
        .unwrap();
        let c = Arc::new(AtomicUsize::new(0));
        let a1 = ex
            .submit(7, counting_du(usize::MAX, Arc::clone(&c)))
            .unwrap();
        let a2 = ex
            .submit(7, counting_du(usize::MAX, Arc::clone(&c)))
            .unwrap();
        let b = ex
            .submit(8, counting_du(usize::MAX, Arc::clone(&c)))
            .unwrap();
        let d = ex
            .submit(9, counting_du(usize::MAX, Arc::clone(&c)))
            .unwrap();
        assert_eq!(
            ex.eo_of(a1),
            ex.eo_of(a2),
            "same footprint class -> same EO"
        );
        let eos: std::collections::HashSet<_> =
            [a1, b, d].iter().map(|&id| ex.eo_of(id).unwrap()).collect();
        assert_eq!(eos.len(), 3, "three classes spread over three EOs");
        ex.shutdown().unwrap();
    }

    #[test]
    fn cancellation_removes_running_du() {
        let ex = Executor::start(ExecutorConfig::default()).unwrap();
        let c = Arc::new(AtomicUsize::new(0));
        let id = ex
            .submit(1, counting_du(usize::MAX, Arc::clone(&c)))
            .unwrap();
        assert!(wait_for(|| c.load(Ordering::Relaxed) > 0, 2000));
        ex.cancel(id).unwrap();
        assert!(wait_for(
            || ex.stats().dus_per_eo.iter().sum::<usize>() == 0,
            2000
        ));
        let frozen = c.load(Ordering::Relaxed);
        std::thread::sleep(Duration::from_millis(20));
        // Allow one in-flight round after the cancel observation.
        assert!(c.load(Ordering::Relaxed) <= frozen + ex.quantum());
        assert!(ex.cancel(9999).is_err());
        ex.shutdown().unwrap();
    }

    #[test]
    fn dynamic_submission_while_running() {
        let ex = Executor::start(ExecutorConfig {
            eos: 2,
            ..Default::default()
        })
        .unwrap();
        let mut counters = Vec::new();
        for wave in 0..4 {
            for i in 0..4 {
                let c = Arc::new(AtomicUsize::new(0));
                ex.submit(wave * 4 + i, counting_du(5_000, Arc::clone(&c)))
                    .unwrap();
                counters.push(c);
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(wait_for(
            || counters.iter().all(|c| c.load(Ordering::Relaxed) == 5_000),
            5000
        ));
        ex.shutdown().unwrap();
    }

    #[test]
    fn erroring_du_is_retired_not_fatal() {
        let ex = Executor::start(ExecutorConfig::default()).unwrap();
        ex.submit(
            1,
            Box::new(FnDu::new("bad", |_| Err(TcqError::Executor("boom".into())))),
        )
        .unwrap();
        let c = Arc::new(AtomicUsize::new(0));
        ex.submit(2, counting_du(1000, Arc::clone(&c))).unwrap();
        assert!(wait_for(|| c.load(Ordering::Relaxed) == 1000, 2000));
        ex.shutdown().unwrap();
    }

    #[test]
    fn panicking_du_is_isolated_and_counted() {
        let ex = Executor::start(ExecutorConfig {
            eos: 1,
            ..Default::default()
        })
        .unwrap();
        ex.submit(
            1,
            Box::new(FnDu::new("explode", |_| panic!("operator blew up"))),
        )
        .unwrap();
        let c = Arc::new(AtomicUsize::new(0));
        ex.submit(2, counting_du(1000, Arc::clone(&c))).unwrap();
        assert!(wait_for(|| c.load(Ordering::Relaxed) == 1000, 2000));
        assert!(wait_for(|| ex.stats().faulted == 1, 2000));
        ex.shutdown().unwrap();
    }

    #[test]
    fn injected_operator_fault_retires_one_du() {
        use tcq_common::{FaultAction, FaultPlan, FaultPoint};
        let injector = FaultPlan::new(7)
            .at(
                FaultPoint::OperatorRun,
                1,
                FaultAction::Error("injected operator fault".into()),
            )
            .build_shared();
        let ex = Executor::start(ExecutorConfig {
            eos: 1,
            injector: Some(injector),
            ..Default::default()
        })
        .unwrap();
        // The first DU quantum polled draws the fault and is retired; the
        // second DU still runs to completion.
        let c1 = Arc::new(AtomicUsize::new(0));
        let c2 = Arc::new(AtomicUsize::new(0));
        ex.submit(1, counting_du(usize::MAX, Arc::clone(&c1)))
            .unwrap();
        ex.submit(2, counting_du(2000, Arc::clone(&c2))).unwrap();
        assert!(wait_for(|| c2.load(Ordering::Relaxed) == 2000, 2000));
        assert!(wait_for(|| ex.stats().faulted == 1, 2000));
        assert_eq!(c1.load(Ordering::Relaxed), 0, "faulted DU never ran");
        ex.shutdown().unwrap();
    }

    #[test]
    fn stats_track_busy_idle_time_and_quanta_per_du() {
        let ex = Executor::start(ExecutorConfig {
            eos: 1,
            ..Default::default()
        })
        .unwrap();
        let c = Arc::new(AtomicUsize::new(0));
        let id = ex.submit(1, counting_du(10_000, Arc::clone(&c))).unwrap();
        assert!(wait_for(|| ex.stats().completed == 1, 5000));
        // Let the EO park at least once after the DU retires.
        std::thread::sleep(Duration::from_millis(10));
        let st = ex.stats();
        assert!(st.busy_ns_per_eo[0] > 0, "quanta ran, busy time recorded");
        assert!(st.idle_ns_per_eo[0] > 0, "EO parked, idle time recorded");
        let quanta = st
            .quanta_per_du
            .iter()
            .find(|&&(d, _)| d == id)
            .map(|&(_, n)| n)
            .expect("retired DU keeps its quanta count");
        // 10_000 units at the default quantum of 64 needs many grants.
        assert!(quanta >= 10_000 / 64, "quanta={quanta}");
        let util = st.utilization_per_eo();
        assert!(util[0] > 0.0 && util[0] <= 1.0);
        ex.shutdown().unwrap();
    }

    #[test]
    fn submit_after_shutdown_fails() {
        let ex = Executor::start(ExecutorConfig::default()).unwrap();
        let stats0 = ex.stats();
        assert_eq!(stats0.completed, 0);
        ex.shutdown().unwrap();
        // (can't call submit on moved value; construct another and drop it)
        let ex2 = Executor::start(ExecutorConfig {
            eos: 1,
            ..Default::default()
        })
        .unwrap();
        drop(ex2); // Drop path also joins threads cleanly.
    }

    #[test]
    fn zero_eos_rejected() {
        assert!(Executor::start(ExecutorConfig {
            eos: 0,
            ..Default::default()
        })
        .is_err());
    }
}
