//! Dispatch Units: the executor's unit of scheduling.

use tcq_common::Result;
use tcq_fjords::ModuleStatus;

/// Identifies a submitted dispatch unit.
pub type DuId = u64;

/// A non-preemptive unit of work, scheduled cooperatively by an Execution
/// Object. "DUs are non-preemptive, but they follow the Fjords model …
/// which gives us control over their scheduling" (§4.2.2): `run` must do at
/// most `quantum` units of work using only non-blocking operations, then
/// return control.
pub trait DispatchUnit: Send {
    /// Diagnostic name.
    fn name(&self) -> &str;

    /// Do up to `quantum` units of work.
    fn run(&mut self, quantum: usize) -> Result<ModuleStatus>;

    /// Messages the DU is holding internally (outboxes, run buffers,
    /// staged batches). The liveness watchdog counts these toward the
    /// in-flight total so data parked inside a DU — invisible to the
    /// fjord probes — still keeps stall detection honest.
    fn buffered(&self) -> usize {
        0
    }

    /// Liveness recovery, first rung: make any forward progress the DU
    /// has been withholding (re-emit a pending punctuation, close an
    /// open run, retry a refused enqueue). Must preserve the DU's output
    /// contract exactly — a nudge may only *reschedule* work, never
    /// change what is eventually produced. Returns true if it did
    /// anything.
    fn nudge(&mut self) -> bool {
        false
    }

    /// Liveness recovery, final rung: controlled failover — force-drain
    /// buffered state along the DU's ordered-outbox path even if the
    /// normal protocol cannot complete. Returns true if it did anything.
    fn escalate(&mut self) -> bool {
        false
    }
}

/// Wrap a closure as a DU (tests, ad hoc dataflows).
pub struct FnDu<F> {
    name: String,
    f: F,
}

impl<F> FnDu<F>
where
    F: FnMut(usize) -> Result<ModuleStatus> + Send,
{
    /// Create a closure-backed DU.
    pub fn new(name: impl Into<String>, f: F) -> Self {
        FnDu {
            name: name.into(),
            f,
        }
    }
}

impl<F> DispatchUnit for FnDu<F>
where
    F: FnMut(usize) -> Result<ModuleStatus> + Send,
{
    fn name(&self) -> &str {
        &self.name
    }

    fn run(&mut self, quantum: usize) -> Result<ModuleStatus> {
        (self.f)(quantum)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fn_du_delegates() {
        let mut calls = 0;
        {
            let mut du = FnDu::new("counter", |q| {
                calls += q;
                Ok(if calls >= 10 {
                    ModuleStatus::Done
                } else {
                    ModuleStatus::Ready
                })
            });
            assert_eq!(du.name(), "counter");
            assert_eq!(du.run(4).unwrap(), ModuleStatus::Ready);
            assert_eq!(du.run(6).unwrap(), ModuleStatus::Done);
        }
        assert_eq!(calls, 10);
    }
}
