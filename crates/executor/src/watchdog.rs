//! Deterministic liveness watchdog: stall detection, diagnosis, recovery.
//!
//! The dataflow's liveness invariant is "while messages are in flight,
//! the progress frontier keeps advancing". The watchdog checks exactly
//! that: EO 0 ticks the detector once per scheduling round (an **engine**
//! tick, not wall clock — a seeded chaos replay that runs at different
//! real speed still detects against the same dataflow state, and a
//! healthy run detects nothing, so watchdog on/off stays byte-identical).
//!
//! When the global frontier has not advanced for [`WatchdogConfig::stall_ticks`]
//! rounds while messages are in flight, the watchdog:
//!
//! 1. records a structured [`StallDiagnosis`] (per-fjord depths and EOF
//!    state, per-DU buffered counts and last-run status, pending
//!    punctuation runs, blocked producer/consumer sets), and
//! 2. escalates through the recovery ladder: **nudge** — every EO asks
//!    each of its DUs to make withheld progress ([`crate::DispatchUnit::nudge`]:
//!    re-emit pending punctuation, close an open run); then after
//!    [`WatchdogConfig::escalate_ticks`] more frozen rounds, **failover**
//!    ([`crate::DispatchUnit::escalate`]: force-drain buffered state along
//!    the ordered-outbox path).
//!
//! A stall that clears after a rung reported doing work counts as a
//! `recovery`; one that clears with no rung having done anything counts
//! as a `false_positive` (the system was merely slow).

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

use tcq_common::progress::{ChannelSnapshot, ProgressRegistry};
use tcq_common::sync::Mutex;

use crate::dispatch::DuId;

/// Watchdog tuning. Ticks are detector-EO scheduling rounds.
#[derive(Debug, Clone)]
pub struct WatchdogConfig {
    /// The progress registry the engine's channels report into.
    pub registry: ProgressRegistry,
    /// Frozen-frontier rounds (with work in flight) before a stall is
    /// declared, diagnosed, and nudged.
    pub stall_ticks: u64,
    /// Further frozen rounds after the nudge before escalating to the
    /// outbox-drain failover.
    pub escalate_ticks: u64,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            registry: ProgressRegistry::new(),
            // ~100 ms of fully-parked rounds at the default 200 µs
            // idle_park; far longer when the engine is busy (rounds are
            // then microseconds apart but the frontier is also moving).
            stall_ticks: 512,
            escalate_ticks: 512,
        }
    }
}

/// Per-DU slice of a stall diagnosis.
#[derive(Debug, Clone)]
pub struct DuDiag {
    /// The DU's executor id.
    pub id: DuId,
    /// Diagnostic name.
    pub name: String,
    /// Messages parked inside the DU (outboxes, run buffers).
    pub buffered: usize,
    /// Outcome of the DU's most recent quantum.
    pub last_status: &'static str,
    /// Total quanta granted to the DU so far.
    pub quanta: u64,
}

/// Structured dump of a detected stall.
#[derive(Debug, Clone, Default)]
pub struct StallDiagnosis {
    /// Detector tick at which the stall was declared.
    pub tick: u64,
    /// The frozen frontier value.
    pub frontier: u64,
    /// Messages in flight (channel depths + DU buffers).
    pub in_flight: u64,
    /// Every registered channel at detection time.
    pub channels: Vec<ChannelSnapshot>,
    /// Every DU the EOs published during the suspicion window.
    pub dus: Vec<DuDiag>,
    /// Channels holding messages behind an un-consumed punctuation run.
    pub pending_punct_channels: Vec<String>,
    /// Channels with messages nobody is draining.
    pub blocked_consumers: Vec<String>,
    /// Channels whose producers have been refused (full) and that still
    /// hold messages — the back-pressure cycle suspects.
    pub blocked_producers: Vec<String>,
}

impl StallDiagnosis {
    /// Human-readable multi-line dump.
    pub fn render(&self) -> String {
        let mut s = format!(
            "stall @tick {}: frontier {} frozen with {} in flight\n",
            self.tick, self.frontier, self.in_flight
        );
        for c in &self.channels {
            if c.depth > 0 || !c.eof_out {
                s.push_str(&format!(
                    "  fjord {}: depth={} enq={} deq={} puncts={} eof_in={} eof_out={}\n",
                    c.name, c.depth, c.enqueued, c.dequeued, c.puncts, c.eof_in, c.eof_out
                ));
            }
        }
        for d in &self.dus {
            s.push_str(&format!(
                "  du {} ({}): buffered={} last={} quanta={}\n",
                d.id, d.name, d.buffered, d.last_status, d.quanta
            ));
        }
        if !self.blocked_consumers.is_empty() {
            s.push_str(&format!(
                "  blocked consumers: {:?}\n",
                self.blocked_consumers
            ));
        }
        if !self.blocked_producers.is_empty() {
            s.push_str(&format!(
                "  blocked producers: {:?}\n",
                self.blocked_producers
            ));
        }
        if !self.pending_punct_channels.is_empty() {
            s.push_str(&format!(
                "  pending punctuation runs: {:?}\n",
                self.pending_punct_channels
            ));
        }
        s
    }
}

struct DetectState {
    tick: u64,
    last_frontier: u64,
    frozen: u64,
    stalled: bool,
}

/// Shared watchdog state: EO 0 detects, every EO applies recovery rungs
/// and publishes its DUs' buffered counts.
pub(crate) struct WatchdogState {
    cfg: WatchdogConfig,
    detect: Mutex<DetectState>,
    nudge_gen: AtomicU64,
    escalate_gen: AtomicU64,
    nudge_worked: AtomicBool,
    escalate_worked: AtomicBool,
    publish_details: AtomicBool,
    buffered_per_eo: Vec<AtomicUsize>,
    dus_per_eo: Vec<Mutex<Vec<DuDiag>>>,
    stalls: AtomicU64,
    nudges: AtomicU64,
    escalations: AtomicU64,
    recoveries: AtomicU64,
    false_positives: AtomicU64,
    last: Mutex<Option<StallDiagnosis>>,
}

/// Watchdog counter snapshot, merged into [`crate::ExecutorStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WatchdogStats {
    /// Stalls declared (frontier frozen `stall_ticks` rounds with work
    /// in flight).
    pub stalls_detected: u64,
    /// Nudge rungs issued.
    pub nudges: u64,
    /// Failover rungs issued.
    pub escalations: u64,
    /// Stalls cleared after a recovery rung reported doing work.
    pub recoveries: u64,
    /// Stalls that cleared on their own (detection was premature).
    pub false_positives: u64,
}

impl WatchdogState {
    pub(crate) fn new(cfg: WatchdogConfig, eos: usize) -> Self {
        WatchdogState {
            cfg,
            detect: Mutex::new(DetectState {
                tick: 0,
                last_frontier: 0,
                frozen: 0,
                stalled: false,
            }),
            nudge_gen: AtomicU64::new(0),
            escalate_gen: AtomicU64::new(0),
            nudge_worked: AtomicBool::new(false),
            escalate_worked: AtomicBool::new(false),
            publish_details: AtomicBool::new(false),
            buffered_per_eo: (0..eos).map(|_| AtomicUsize::new(0)).collect(),
            dus_per_eo: (0..eos).map(|_| Mutex::new(Vec::new())).collect(),
            stalls: AtomicU64::new(0),
            nudges: AtomicU64::new(0),
            escalations: AtomicU64::new(0),
            recoveries: AtomicU64::new(0),
            false_positives: AtomicU64::new(0),
            last: Mutex::new(None),
        }
    }

    pub(crate) fn pending_nudge(&self) -> u64 {
        self.nudge_gen.load(Ordering::Acquire)
    }

    pub(crate) fn pending_escalate(&self) -> u64 {
        self.escalate_gen.load(Ordering::Acquire)
    }

    pub(crate) fn note_nudge_worked(&self) {
        self.nudge_worked.store(true, Ordering::Release);
    }

    pub(crate) fn note_escalate_worked(&self) {
        self.escalate_worked.store(true, Ordering::Release);
    }

    pub(crate) fn publishing_details(&self) -> bool {
        self.publish_details.load(Ordering::Acquire)
    }

    pub(crate) fn publish(&self, eo_idx: usize, buffered: usize, details: Option<Vec<DuDiag>>) {
        self.buffered_per_eo[eo_idx].store(buffered, Ordering::Release);
        if let Some(d) = details {
            *self.dus_per_eo[eo_idx].lock() = d;
        }
    }

    fn in_flight(&self) -> u64 {
        let du_buffered: usize = self
            .buffered_per_eo
            .iter()
            .map(|b| b.load(Ordering::Acquire))
            .sum();
        self.cfg.registry.in_flight() + du_buffered as u64
    }

    /// One detector tick (EO 0, once per scheduling round).
    pub(crate) fn tick(&self) {
        let mut st = self.detect.lock();
        st.tick += 1;
        let frontier = self.cfg.registry.frontier();
        let in_flight = self.in_flight();
        if frontier != st.last_frontier || in_flight == 0 {
            st.last_frontier = frontier;
            st.frozen = 0;
            if st.stalled {
                st.stalled = false;
                if self.nudge_worked.load(Ordering::Acquire)
                    || self.escalate_worked.load(Ordering::Acquire)
                {
                    self.recoveries.fetch_add(1, Ordering::Relaxed);
                } else {
                    self.false_positives.fetch_add(1, Ordering::Relaxed);
                }
            }
            self.publish_details.store(false, Ordering::Release);
            return;
        }
        st.frozen += 1;
        // Ask EOs to publish per-DU detail half-way to the stall
        // threshold, so the diagnosis at detection time has data.
        if st.frozen == (self.cfg.stall_ticks / 2).max(1) {
            self.publish_details.store(true, Ordering::Release);
        }
        if st.frozen == self.cfg.stall_ticks {
            st.stalled = true;
            self.nudge_worked.store(false, Ordering::Release);
            self.escalate_worked.store(false, Ordering::Release);
            self.stalls.fetch_add(1, Ordering::Relaxed);
            *self.last.lock() = Some(self.diagnose(st.tick, frontier, in_flight));
            self.nudges.fetch_add(1, Ordering::Relaxed);
            self.nudge_gen.fetch_add(1, Ordering::Release);
        } else if st.frozen == self.cfg.stall_ticks + self.cfg.escalate_ticks {
            self.escalations.fetch_add(1, Ordering::Relaxed);
            self.escalate_gen.fetch_add(1, Ordering::Release);
        }
    }

    fn diagnose(&self, tick: u64, frontier: u64, in_flight: u64) -> StallDiagnosis {
        let snap = self.cfg.registry.snapshot();
        let dus: Vec<DuDiag> = self
            .dus_per_eo
            .iter()
            .flat_map(|m| m.lock().clone())
            .collect();
        let pending_punct_channels = snap
            .channels
            .iter()
            .filter(|c| c.puncts > 0 && c.depth > 0)
            .map(|c| c.name.clone())
            .collect();
        let blocked_consumers = snap
            .channels
            .iter()
            .filter(|c| c.depth > 0)
            .map(|c| c.name.clone())
            .collect();
        let blocked_producers = snap
            .channels
            .iter()
            .filter(|c| c.rejections > 0 && c.depth > 0)
            .map(|c| c.name.clone())
            .collect();
        StallDiagnosis {
            tick,
            frontier,
            in_flight,
            channels: snap.channels,
            dus,
            pending_punct_channels,
            blocked_consumers,
            blocked_producers,
        }
    }

    pub(crate) fn stats(&self) -> WatchdogStats {
        WatchdogStats {
            stalls_detected: self.stalls.load(Ordering::Relaxed),
            nudges: self.nudges.load(Ordering::Relaxed),
            escalations: self.escalations.load(Ordering::Relaxed),
            recoveries: self.recoveries.load(Ordering::Relaxed),
            false_positives: self.false_positives.load(Ordering::Relaxed),
        }
    }

    pub(crate) fn last_stall(&self) -> Option<StallDiagnosis> {
        self.last.lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wd(stall: u64, escalate: u64) -> (WatchdogState, ProgressRegistry) {
        let registry = ProgressRegistry::new();
        let state = WatchdogState::new(
            WatchdogConfig {
                registry: registry.clone(),
                stall_ticks: stall,
                escalate_ticks: escalate,
            },
            1,
        );
        (state, registry)
    }

    #[test]
    fn healthy_progress_never_stalls() {
        let (w, reg) = wd(3, 3);
        let ch = reg.channel("c");
        for _ in 0..50 {
            ch.note_enqueue(1); // frontier moves every tick
            w.tick();
        }
        assert_eq!(w.stats(), WatchdogStats::default());
    }

    #[test]
    fn idle_engine_never_stalls() {
        let (w, _reg) = wd(3, 3);
        for _ in 0..50 {
            w.tick(); // frontier frozen but nothing in flight
        }
        assert_eq!(w.stats().stalls_detected, 0);
    }

    #[test]
    fn frozen_frontier_with_in_flight_detects_then_escalates() {
        let (w, reg) = wd(3, 2);
        let ch = reg.channel("c");
        ch.note_enqueue(5); // 5 in flight, then silence
                            // The first tick absorbs the frontier change; detection needs
                            // stall_ticks frozen ticks after it.
        for _ in 0..4 {
            w.tick();
        }
        assert_eq!(w.stats().stalls_detected, 1);
        assert_eq!(w.stats().nudges, 1);
        assert_eq!(w.pending_nudge(), 1);
        assert_eq!(w.stats().escalations, 0);
        for _ in 0..2 {
            w.tick();
        }
        assert_eq!(w.stats().escalations, 1);
        assert_eq!(w.pending_escalate(), 1);
        let diag = w.last_stall().expect("diagnosis recorded");
        assert_eq!(diag.in_flight, 5);
        assert_eq!(diag.blocked_consumers, vec!["c".to_string()]);
        assert!(diag.render().contains("fjord c"));
    }

    #[test]
    fn recovery_vs_false_positive_classification() {
        // Stall that clears after the nudge reported work -> recovery.
        let (w, reg) = wd(2, 10);
        let ch = reg.channel("c");
        ch.note_enqueue(1);
        w.tick(); // absorbs the frontier change
        w.tick();
        w.tick();
        assert_eq!(w.stats().stalls_detected, 1);
        w.note_nudge_worked();
        ch.note_dequeue(1);
        w.tick();
        assert_eq!(w.stats().recoveries, 1);
        assert_eq!(w.stats().false_positives, 0);

        // Stall that clears on its own -> false positive.
        ch.note_enqueue(1);
        w.tick();
        w.tick();
        w.tick();
        assert_eq!(w.stats().stalls_detected, 2);
        ch.note_dequeue(1);
        w.tick();
        assert_eq!(w.stats().false_positives, 1);
    }
}
