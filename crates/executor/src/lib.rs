//! The TelegraphCQ executor (§4.2.2).
//!
//! > "The TelegraphCQ executor is being developed using a multi-threaded
//! > approach in which the threads provide execution context for multiple
//! > queries encoded using a non-preemptive, state machine-based
//! > programming model. We use the term 'Execution Object' (EO) to describe
//! > the threads of control … An EO consists of a scheduler, one or more
//! > event queues, and a set of non-preemptive Dispatch Units (DUs) that
//! > can be executed based on some scheduling policy."
//!
//! * [`DispatchUnit`] — the non-preemptive state machine: given a quantum,
//!   do bounded work, report Ready/Idle/Done. Eddies, window drivers, and
//!   traditional plans all run as DUs (the three modes of §4.2.2).
//! * [`Executor`] — owns N Execution Objects (OS threads). Queries are
//!   grouped into **classes by footprint** ("the set of streams and tables
//!   over which the queries are defined"); DUs of the same class are pinned
//!   to the same EO so they can share state without synchronization, and
//!   new classes go to the least-loaded EO.
//! * The **QPQueue** of Figure 5 is the submission channel: the front-end
//!   enqueues plans; EOs "continually pick up fresh queries … dynamically
//!   folded into the running queries".

#![warn(missing_docs)]

pub mod dispatch;
pub mod eo;
pub mod watchdog;

pub use dispatch::{DispatchUnit, DuId, FnDu};
pub use eo::{Executor, ExecutorConfig, ExecutorStats};
pub use tcq_fjords::ModuleStatus;
pub use watchdog::{DuDiag, StallDiagnosis, WatchdogConfig, WatchdogStats};
