//! PSoup: streaming queries over streaming data (§3.2, \[CF02\]).
//!
//! > "The key innovation in PSoup is that it treats data and queries
//! > symmetrically, thereby allowing new queries to be applied to old data
//! > and new data to be applied to old queries. … PSoup also supports
//! > intermittent connectivity by separating the computation of query
//! > results from the delivery of those results."
//!
//! The [`PSoup`] engine is the symmetric join of paper Figure 3:
//!
//! * **new data** (`push`) is inserted into the Data SteM and probed
//!   against the Query SteM; matches are *materialized* into per-query
//!   [`ResultsStructure`]s;
//! * **new queries** (`register`) are inserted into the Query SteM and
//!   probed against the Data SteM — historical matches materialize
//!   immediately, so queries over past data work;
//! * **invocation** (`invoke`) imposes the query's time window on the
//!   Results Structure and returns the current answer set without any
//!   recomputation — this is what makes disconnected operation cheap.
//!
//! [`PSoup::recompute`] is the non-materialized baseline (re-run the
//! predicate over the Data SteM at invocation time); experiment E5
//! reproduces \[CF02\]'s materialization-vs-recompute comparison with it.
//!
//! # Example
//!
//! ```
//! use tcq_common::{CmpOp, DataType, Expr, Field, Schema, Timestamp, TupleBuilder};
//! use tcq_psoup::PSoup;
//!
//! let schema = Schema::new(vec![Field::new("v", DataType::Int)]).into_ref();
//! let mut psoup = PSoup::new(schema.clone(), 100);
//!
//! // Old data...
//! for ts in 1..=20i64 {
//!     let t = TupleBuilder::new(schema.clone())
//!         .push(ts)
//!         .at(Timestamp::logical(ts))
//!         .build()
//!         .unwrap();
//!     psoup.push(t).unwrap();
//! }
//! // ...meets a NEW query over a 10-unit window: history answers instantly.
//! psoup
//!     .register(0, Some(&Expr::col("v").cmp(CmpOp::Gt, Expr::lit(15i64))), 10)
//!     .unwrap();
//! let answer = psoup.invoke(0).unwrap();
//! assert_eq!(answer.len(), 5); // v in {16..=20} within window [11, 20]
//! ```

#![warn(missing_docs)]

use std::collections::{BTreeMap, HashMap, VecDeque};

use tcq_common::{BoundExpr, Expr, Result, SchemaRef, TcqError, Tuple};
use tcq_stems::{MatchScratch, QueryId, QueryStem};

/// Per-query materialized results, ordered by logical time.
#[derive(Default)]
pub struct ResultsStructure {
    /// seq -> matches at that time.
    by_time: BTreeMap<i64, Vec<Tuple>>,
    len: usize,
}

impl ResultsStructure {
    /// Record a match.
    fn insert(&mut self, tuple: Tuple) {
        self.by_time
            .entry(tuple.timestamp().seq())
            .or_default()
            .push(tuple);
        self.len += 1;
    }

    /// All matches within `[left, right]`, oldest first.
    pub fn window(&self, left: i64, right: i64) -> Vec<Tuple> {
        let mut out = Vec::new();
        for (_, v) in self.by_time.range(left..=right) {
            out.extend(v.iter().cloned());
        }
        out
    }

    /// Drop results older than `seq`.
    fn evict_before(&mut self, seq: i64) {
        let keep = self.by_time.split_off(&seq);
        let dropped: usize = self.by_time.values().map(Vec::len).sum();
        self.by_time = keep;
        self.len -= dropped;
    }

    /// Materialized match count.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no match is materialized.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

struct RegisteredQuery {
    /// Sliding window width imposed at invocation.
    window_width: i64,
    /// Bound predicate kept for the recompute baseline.
    pred: Option<BoundExpr>,
    results: ResultsStructure,
}

/// Counters for PSoup experiments.
#[derive(Debug, Clone, Copy, Default)]
pub struct PSoupStats {
    /// Data tuples pushed.
    pub data_in: u64,
    /// Matches materialized (data × query).
    pub materialized: u64,
    /// Invocations served from the Results Structure.
    pub invocations: u64,
    /// Tuples scanned by `recompute` calls (the baseline's work).
    pub recompute_scans: u64,
}

/// The PSoup engine over one stream.
pub struct PSoup {
    schema: SchemaRef,
    query_stem: QueryStem,
    /// Reused per-push probe state: the hot path allocates nothing.
    scratch: MatchScratch,
    /// The Data SteM: retained history, arrival order.
    data: VecDeque<Tuple>,
    /// History retention in logical time units (must cover the largest
    /// query window).
    history_width: i64,
    queries: HashMap<QueryId, RegisteredQuery>,
    latest_seq: i64,
    stats: PSoupStats,
}

impl PSoup {
    /// An engine retaining `history_width` logical time units of data.
    pub fn new(schema: SchemaRef, history_width: i64) -> Self {
        PSoup {
            schema: schema.clone(),
            query_stem: QueryStem::new(schema),
            scratch: MatchScratch::new(),
            data: VecDeque::new(),
            history_width: history_width.max(1),
            queries: HashMap::new(),
            latest_seq: 0,
            stats: PSoupStats::default(),
        }
    }

    /// The stream schema.
    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    /// Register a standing query: SELECT * WHERE `pred` over a sliding
    /// window of `window_width`. Historical data already in the Data SteM
    /// is matched immediately ("applying 'new' queries to 'old' data").
    pub fn register(&mut self, id: QueryId, pred: Option<&Expr>, window_width: i64) -> Result<()> {
        if self.queries.contains_key(&id) {
            return Err(TcqError::Capacity(format!("query {id} already registered")));
        }
        if window_width < 1 {
            return Err(TcqError::InvalidWindow(format!(
                "window width {window_width} must be >= 1"
            )));
        }
        if window_width > self.history_width {
            return Err(TcqError::InvalidWindow(format!(
                "window width {window_width} exceeds retained history {}",
                self.history_width
            )));
        }
        self.query_stem.insert_query(id, pred)?;
        let bound = match pred {
            Some(p) => Some(p.bind(&self.schema)?),
            None => None,
        };
        let mut rq = RegisteredQuery {
            window_width,
            pred: bound,
            results: ResultsStructure::default(),
        };
        // New query ⋈ old data.
        for t in &self.data {
            let matches = match &rq.pred {
                Some(p) => p.eval_pred(t)?,
                None => true,
            };
            if matches {
                rq.results.insert(t.clone());
                self.stats.materialized += 1;
            }
        }
        self.queries.insert(id, rq);
        Ok(())
    }

    /// Remove a standing query.
    pub fn remove(&mut self, id: QueryId) -> Result<()> {
        self.query_stem.remove_query(id)?;
        self.queries.remove(&id);
        Ok(())
    }

    /// New data ⋈ old queries: insert, match, materialize, evict.
    pub fn push(&mut self, tuple: Tuple) -> Result<()> {
        let seq = tuple.timestamp().seq();
        self.latest_seq = self.latest_seq.max(seq);
        self.stats.data_in += 1;
        self.query_stem.matching_into(&tuple, &mut self.scratch)?;
        for &qid in self.scratch.matches() {
            if let Some(rq) = self.queries.get_mut(&qid) {
                rq.results.insert(tuple.clone());
                self.stats.materialized += 1;
            }
        }
        self.data.push_back(tuple);
        // Evict history and results beyond the retention horizon.
        let horizon = self.latest_seq - self.history_width + 1;
        while let Some(front) = self.data.front() {
            if front.timestamp().seq() >= horizon {
                break;
            }
            self.data.pop_front();
        }
        for rq in self.queries.values_mut() {
            rq.results
                .evict_before(self.latest_seq - rq.window_width + 1);
        }
        Ok(())
    }

    /// Invoke a standing query: impose its window on the Results Structure
    /// and return the current answer — no recomputation.
    pub fn invoke(&mut self, id: QueryId) -> Result<Vec<Tuple>> {
        let rq = self
            .queries
            .get(&id)
            .ok_or_else(|| TcqError::Executor(format!("query {id} not registered")))?;
        self.stats.invocations += 1;
        let left = self.latest_seq - rq.window_width + 1;
        Ok(rq.results.window(left, self.latest_seq))
    }

    /// The non-materialized baseline: answer by re-scanning the Data SteM
    /// and re-evaluating the predicate at invocation time.
    pub fn recompute(&mut self, id: QueryId) -> Result<Vec<Tuple>> {
        let rq = self
            .queries
            .get(&id)
            .ok_or_else(|| TcqError::Executor(format!("query {id} not registered")))?;
        let left = self.latest_seq - rq.window_width + 1;
        let mut out = Vec::new();
        for t in &self.data {
            self.stats.recompute_scans += 1;
            let seq = t.timestamp().seq();
            if seq < left || seq > self.latest_seq {
                continue;
            }
            let ok = match &rq.pred {
                Some(p) => p.eval_pred(t)?,
                None => true,
            };
            if ok {
                out.push(t.clone());
            }
        }
        Ok(out)
    }

    /// Standing query count.
    pub fn query_count(&self) -> usize {
        self.queries.len()
    }

    /// Retained data tuples.
    pub fn data_len(&self) -> usize {
        self.data.len()
    }

    /// Counters.
    pub fn stats(&self) -> PSoupStats {
        self.stats
    }

    /// Latest stream time seen.
    pub fn now(&self) -> i64 {
        self.latest_seq
    }

    /// Approximate heap footprint of the Query SteM and probe scratch in
    /// bytes (excludes the retained data history and materialized results).
    pub fn index_approx_bytes(&self) -> usize {
        self.query_stem.approx_bytes() + self.scratch.approx_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcq_common::{CmpOp, DataType, Field, Schema, Timestamp, TupleBuilder};

    fn schema() -> SchemaRef {
        Schema::qualified(
            "s",
            vec![
                Field::new("ts", DataType::Int),
                Field::new("sym", DataType::Str),
                Field::new("price", DataType::Float),
            ],
        )
        .into_ref()
    }

    fn tick(ts: i64, sym: &str, price: f64) -> Tuple {
        TupleBuilder::new(schema())
            .push(ts)
            .push(sym)
            .push(price)
            .at(Timestamp::logical(ts))
            .build()
            .unwrap()
    }

    fn over(p: f64) -> Expr {
        Expr::col("price").cmp(CmpOp::Gt, Expr::lit(p))
    }

    #[test]
    fn new_data_applied_to_old_queries() {
        let mut ps = PSoup::new(schema(), 100);
        ps.register(0, Some(&over(50.0)), 10).unwrap();
        for ts in 1..=20 {
            ps.push(tick(ts, "A", ts as f64 * 5.0)).unwrap();
        }
        // window [11, 20], matches where 5*ts > 50 → ts >= 11
        let ans = ps.invoke(0).unwrap();
        assert_eq!(ans.len(), 10);
        assert!(ans.iter().all(|t| t.timestamp().seq() >= 11));
    }

    #[test]
    fn new_queries_applied_to_old_data() {
        let mut ps = PSoup::new(schema(), 100);
        for ts in 1..=30 {
            ps.push(tick(ts, "A", ts as f64)).unwrap();
        }
        // Register AFTER data arrived: historical matches materialize.
        ps.register(1, Some(&over(25.0)), 20).unwrap();
        let ans = ps.invoke(1).unwrap();
        // window [11, 30]; price > 25 → ts in [26, 30]
        assert_eq!(ans.len(), 5);
    }

    #[test]
    fn invoke_matches_recompute_exactly() {
        let mut ps = PSoup::new(schema(), 50);
        ps.register(0, Some(&over(10.0)), 25).unwrap();
        ps.register(1, None, 15).unwrap();
        for ts in 1..=200 {
            ps.push(tick(
                ts,
                if ts % 2 == 0 { "A" } else { "B" },
                (ts % 30) as f64,
            ))
            .unwrap();
            if ts % 17 == 0 {
                for q in [0usize, 1] {
                    let fast = ps.invoke(q).unwrap();
                    let slow = ps.recompute(q).unwrap();
                    assert_eq!(fast, slow, "divergence at ts={ts} q={q}");
                }
            }
        }
    }

    #[test]
    fn disconnected_client_pattern() {
        // Client registers, disconnects, returns much later: answer is the
        // CURRENT window, computed while away.
        let mut ps = PSoup::new(schema(), 100);
        ps.register(0, Some(&over(0.0)), 5).unwrap();
        for ts in 1..=50 {
            ps.push(tick(ts, "A", 1.0)).unwrap();
        }
        let ans = ps.invoke(0).unwrap();
        let seqs: Vec<i64> = ans.iter().map(|t| t.timestamp().seq()).collect();
        assert_eq!(seqs, vec![46, 47, 48, 49, 50]);
        assert_eq!(ps.stats().invocations, 1);
    }

    #[test]
    fn history_and_results_are_bounded() {
        let mut ps = PSoup::new(schema(), 20);
        ps.register(0, None, 10).unwrap();
        for ts in 1..=500 {
            ps.push(tick(ts, "A", 1.0)).unwrap();
        }
        assert!(ps.data_len() <= 20);
        let ans = ps.invoke(0).unwrap();
        assert_eq!(ans.len(), 10);
    }

    #[test]
    fn window_wider_than_history_rejected() {
        let mut ps = PSoup::new(schema(), 10);
        assert!(ps.register(0, None, 50).is_err());
        assert!(ps.register(0, None, 0).is_err());
    }

    #[test]
    fn remove_query_stops_materialization() {
        let mut ps = PSoup::new(schema(), 50);
        ps.register(0, None, 10).unwrap();
        ps.push(tick(1, "A", 1.0)).unwrap();
        ps.remove(0).unwrap();
        assert!(ps.invoke(0).is_err());
        assert_eq!(ps.query_count(), 0);
        // pushing more data is fine
        ps.push(tick(2, "A", 1.0)).unwrap();
        assert!(ps.remove(0).is_err());
    }

    #[test]
    fn shared_matching_via_query_stem() {
        // Many queries, one pass per tuple: stats.materialized counts only
        // actual matches.
        let mut ps = PSoup::new(schema(), 100);
        for q in 0..10usize {
            ps.register(q, Some(&over(q as f64 * 10.0)), 50).unwrap();
        }
        ps.push(tick(1, "A", 35.0)).unwrap();
        // matches queries with threshold < 35: q0..q3 (0,10,20,30)
        assert_eq!(ps.stats().materialized, 4);
    }
}
