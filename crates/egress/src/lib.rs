//! Egress operators: result delivery to clients (§4.3).
//!
//! > "Push-based egress operators support interaction where clients are
//! > continually streamed query results, while pull-based egress operators
//! > may log data and support intermittent retrieval of results."
//!
//! The [`EgressRouter`] owns per-client output queues (Figure 5's
//! client-specific output queues in shared memory) and a subscription map
//! from query ids to clients:
//!
//! * **push clients** get a bounded channel streamed to them; when a slow
//!   client's queue fills, results are shed and counted (the paper's QoS
//!   stance: degrade in a controlled, observable fashion);
//! * **pull clients** get a bounded ring of recent results they can fetch
//!   on reconnect — the PSoup-style "disconnected operation" mode, where
//!   computation is separated from delivery.
//!
//! Slow-client resilience: an [`EgressPolicy`] bounds how long the router
//! humours a stuck client — a full push channel gets `max_retries` extra
//! immediate attempts, and after `disconnect_after` consecutive failed
//! deliveries the client is forcibly disconnected and counted, so one dead
//! client can never wedge a shared eddy. Every delivery offer is accounted
//! in [`EgressStats`]: `delivered + shed + displaced + disconnected_loss ==
//! offered`, always.

#![warn(missing_docs)]

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};

use std::sync::Arc;
use tcq_common::sync::Mutex;

use tcq_common::{
    CkptReader, CkptWriter, ColumnBatch, FaultAction, FaultPoint, Result, SharedInjector, TcqError,
    Tuple,
};

/// Client identifier.
pub type ClientId = u64;
/// Query identifier (matches the executor's query ids).
pub type QueryId = usize;

/// A result delivered to a client: which query it answers, and the tuple.
pub type Delivery = (QueryId, Tuple);

/// A batched result delivered to a column client: which query it answers,
/// and a columnar batch of result rows ([`EgressRouter::register_column_client`]).
pub type ColumnDelivery = (QueryId, ColumnBatch);

/// Slow-client handling knobs (§4.3's QoS stance applied at the egress
/// boundary).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EgressPolicy {
    /// Extra immediate retries (with a scheduler yield between attempts)
    /// when a push client's channel is full, before the copy is shed.
    pub max_retries: u32,
    /// After this many *consecutive* failed deliveries a push client is
    /// declared stuck and forcibly disconnected. `0` disables forced
    /// disconnection (the default: shed-and-keep, the pre-policy
    /// behaviour).
    pub disconnect_after: u32,
}

/// Exact per-router delivery accounting. Invariant (checked by
/// [`EgressStats::accounted`]): every offer ends in exactly one bucket,
/// `delivered + shed + displaced + disconnected_loss == offered`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EgressStats {
    /// Delivery offers made: one per (tuple, subscribed client) pair.
    pub offered: u64,
    /// Offers currently delivered (buffered or streamed). A pull-buffer
    /// victim later rotated out moves from here to `displaced`.
    pub delivered: u64,
    /// Push copies dropped after the retry budget (full channel or
    /// injected delivery fault).
    pub shed: u64,
    /// Pull/prioritized buffer entries rotated out to make room.
    pub displaced: u64,
    /// Retry attempts made against full push channels.
    pub retried: u64,
    /// Clients forcibly disconnected (stuck past `disconnect_after`, or
    /// found dead mid-delivery).
    pub disconnected: u64,
    /// Offers lost because the client was dead or declared stuck.
    pub disconnected_loss: u64,
}

impl EgressStats {
    /// True when every offer is accounted for — the router's core
    /// invariant.
    pub fn accounted(&self) -> bool {
        self.delivered + self.shed + self.displaced + self.disconnected_loss == self.offered
    }

    /// Checkpoint-codec encoding of the ledger (see
    /// [`EgressStats::decode`]).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = CkptWriter::new();
        w.put_u64(self.offered);
        w.put_u64(self.delivered);
        w.put_u64(self.shed);
        w.put_u64(self.displaced);
        w.put_u64(self.retried);
        w.put_u64(self.disconnected);
        w.put_u64(self.disconnected_loss);
        w.into_bytes()
    }

    /// Decode a ledger encoded by [`EgressStats::encode`].
    pub fn decode(bytes: &[u8]) -> Result<EgressStats> {
        let mut r = CkptReader::new(bytes);
        Ok(EgressStats {
            offered: r.get_u64("egress offered")?,
            delivered: r.get_u64("egress delivered")?,
            shed: r.get_u64("egress shed")?,
            displaced: r.get_u64("egress displaced")?,
            retried: r.get_u64("egress retried")?,
            disconnected: r.get_u64("egress disconnected")?,
            disconnected_loss: r.get_u64("egress disconnected_loss")?,
        })
    }
}

enum ClientState {
    Push {
        tx: SyncSender<Delivery>,
        /// Consecutive failed deliveries (reset on success).
        failures: u32,
    },
    /// A push client that receives whole [`ColumnBatch`]es instead of
    /// per-row [`Delivery`] messages. Offers are still made (and faults
    /// polled) per row, in the same order row clients see them, but
    /// surviving rows accumulate into one pending batch per delivery
    /// session and hit the channel once — the columnar hot path never
    /// materializes per-row tuples for these clients.
    ColumnPush {
        tx: SyncSender<ColumnDelivery>,
        /// Consecutive failed deliveries (reset on success).
        failures: u32,
    },
    Pull {
        buffer: VecDeque<Delivery>,
        capacity: usize,
    },
    /// A pull client with Juggle-style prioritized retrieval (\[RRH99\]):
    /// fetch returns the most *interesting* buffered results first, and
    /// overflow sheds the least interesting — user preferences pushed down
    /// into result delivery (§4.3).
    Prioritized { buffer: PriorityBuffer },
}

/// Monotone map from f64 to u64 (IEEE-754 total-order trick), so floats can
/// key a BTreeMap.
fn f64_order_key(f: f64) -> u64 {
    let bits = f.to_bits();
    if bits >> 63 == 1 {
        !bits
    } else {
        bits | (1 << 63)
    }
}

/// Bounded best-first buffer: keeps the `capacity` highest-priority
/// deliveries, fetches best-first, sheds worst-first on overflow.
struct PriorityBuffer {
    priority: Box<dyn Fn(&Tuple) -> f64 + Send>,
    /// (priority key, arrival) -> delivery; iteration order = worst..best.
    entries: std::collections::BTreeMap<(u64, u64), Delivery>,
    capacity: usize,
    next_arrival: u64,
}

impl PriorityBuffer {
    fn new(capacity: usize, priority: Box<dyn Fn(&Tuple) -> f64 + Send>) -> Self {
        PriorityBuffer {
            priority,
            entries: std::collections::BTreeMap::new(),
            capacity: capacity.max(1),
            next_arrival: 0,
        }
    }

    /// Insert; returns true if something (the incoming delivery or a worse
    /// buffered one) was shed.
    fn insert(&mut self, delivery: Delivery) -> bool {
        let p = f64_order_key((self.priority)(&delivery.1));
        // Later arrivals sort below earlier ones at equal priority, so
        // fetch is FIFO within a priority level.
        let arrival = u64::MAX - self.next_arrival;
        self.next_arrival += 1;
        self.entries.insert((p, arrival), delivery);
        if self.entries.len() > self.capacity {
            self.entries.pop_first();
            true
        } else {
            false
        }
    }

    /// Drop the worst buffered delivery; true if one existed.
    fn evict_worst(&mut self) -> bool {
        self.entries.pop_first().is_some()
    }

    /// Remove and return up to `max` deliveries, best first.
    fn fetch(&mut self, max: usize) -> Vec<Delivery> {
        let mut out = Vec::with_capacity(self.entries.len().min(max));
        while out.len() < max {
            match self.entries.pop_last() {
                Some((_, d)) => out.push(d),
                None => break,
            }
        }
        out
    }
}

/// One delivery offer's payload: a materialized row, or one row of a
/// columnar batch. `Col` carries an optional pre-materialized tuple —
/// filled once per row by the caller when at least one subscribed client
/// needs rows, so row clients never pay a per-(row, client)
/// materialization and column-only fan-outs pay none at all.
enum Offer<'a> {
    Row(&'a Tuple),
    Col {
        batch: &'a ColumnBatch,
        row: usize,
        tuple: Option<&'a Tuple>,
    },
}

impl Offer<'_> {
    /// The row as a tuple, for clients that consume rows.
    fn to_tuple(&self) -> Tuple {
        match self {
            Offer::Row(t) => (*t).clone(),
            Offer::Col { tuple: Some(t), .. } => (*t).clone(),
            Offer::Col {
                batch,
                row,
                tuple: None,
            } => batch.tuple_at(*row),
        }
    }
}

/// Rows accumulated for one column client during a delivery session,
/// flushed as a single channel message when the session ends (or earlier,
/// if a row-shaped chunk or a schema change forces the order to be kept).
struct PendingColumns {
    client: ClientId,
    query: QueryId,
    batch: ColumnBatch,
}

struct RouterInner {
    clients: HashMap<ClientId, ClientState>,
    by_query: HashMap<QueryId, Vec<ClientId>>,
    stats: EgressStats,
    policy: EgressPolicy,
    injector: Option<SharedInjector>,
    /// Monotone progress counter bumped once per delivery offer, so a
    /// liveness watchdog sees egress activity as frontier advancement
    /// (offers resolve even when the copy is shed — the router never
    /// wedges, and the counter proves it).
    progress: Option<Arc<AtomicU64>>,
    /// Reusable subscriber snapshot for [`RouterInner::deliver_locked`]:
    /// fanning out borrows `clients` mutably, so the subscriber list is
    /// copied here first — into a recycled buffer rather than a fresh
    /// `Vec` per offer (one offer per *row* on the hot path).
    subs_scratch: Vec<ClientId>,
}

impl RouterInner {
    /// Remove a client and its subscriptions; true if it existed.
    fn drop_client(&mut self, client: ClientId) -> bool {
        let existed = self.clients.remove(&client).is_some();
        self.by_query.retain(|_, subs| {
            subs.retain(|&c| c != client);
            !subs.is_empty()
        });
        existed
    }

    /// One tuple's full fan-out, under an already-held router lock. This is
    /// the single definition of delivery semantics: both the per-tuple and
    /// the batched entry points replay it tuple by tuple, so fault-poll
    /// order, per-offer outcomes, and disconnection timing are
    /// byte-identical whichever entry point a caller uses.
    ///
    /// `stalled` carries fairness state across one caller invocation: a
    /// push client that exhausts its retry budget lands in it, and its
    /// later offers in the same batch skip the retry-yield loop — the shed
    /// is charged to the slow client immediately instead of taxing every
    /// remaining subscriber with `max_retries` scheduler yields per tuple.
    /// A successful send removes the client again. The per-tuple entry
    /// point passes a fresh set each call, so its retry behaviour is
    /// unchanged.
    fn deliver_locked<I: IntoIterator<Item = QueryId>>(
        &mut self,
        queries: I,
        offer: Offer<'_>,
        stalled: &mut Vec<ClientId>,
        pending: &mut Vec<PendingColumns>,
    ) {
        let policy = self.policy;
        // Clients found dead or stuck during this fan-out; removed after
        // the loop so accounting stays per-offer.
        let mut dead: Vec<ClientId> = Vec::new();
        let mut subs = std::mem::take(&mut self.subs_scratch);
        for q in queries {
            let Some(s) = self.by_query.get(&q) else {
                continue;
            };
            subs.clear();
            subs.extend_from_slice(s);
            for &cid in &subs {
                let Some(state) = self.clients.get_mut(&cid) else {
                    continue;
                };
                self.stats.offered += 1;
                if let Some(p) = &self.progress {
                    p.fetch_add(1, Ordering::Relaxed);
                }
                let fault = self
                    .injector
                    .as_ref()
                    .and_then(|i| i.poll(FaultPoint::EgressDeliver));
                match fault {
                    Some(FaultAction::Stall { .. }) => {
                        // The client is stuck. With disconnection enabled it
                        // is dropped immediately; otherwise the copy sheds.
                        if policy.disconnect_after > 0 {
                            self.stats.disconnected_loss += 1;
                            dead.push(cid);
                        } else {
                            self.stats.shed += 1;
                        }
                        continue;
                    }
                    Some(FaultAction::Error(_)) | Some(FaultAction::Overflow) => {
                        // The offer fails as if the client's buffer were
                        // full; failure streaks still count toward
                        // disconnection.
                        self.stats.shed += 1;
                        if let ClientState::Push { failures, .. }
                        | ClientState::ColumnPush { failures, .. } = state
                        {
                            *failures += 1;
                            if policy.disconnect_after > 0 && *failures >= policy.disconnect_after {
                                dead.push(cid);
                            }
                        }
                        continue;
                    }
                    _ => {}
                }
                if matches!(state, ClientState::ColumnPush { .. }) {
                    self.offer_column(cid, q, &offer, stalled, pending, &mut dead);
                    continue;
                }
                match state {
                    ClientState::Push { tx, failures } => {
                        // A client already marked stalled this batch gets
                        // exactly one non-blocking attempt.
                        let budget = if stalled.contains(&cid) {
                            0
                        } else {
                            policy.max_retries
                        };
                        let mut attempt = 0u32;
                        loop {
                            match tx.try_send((q, offer.to_tuple())) {
                                Ok(()) => {
                                    self.stats.delivered += 1;
                                    *failures = 0;
                                    stalled.retain(|&c| c != cid);
                                    break;
                                }
                                Err(TrySendError::Full(_)) => {
                                    if attempt < budget {
                                        attempt += 1;
                                        self.stats.retried += 1;
                                        std::thread::yield_now();
                                        continue;
                                    }
                                    self.stats.shed += 1;
                                    *failures += 1;
                                    if !stalled.contains(&cid) {
                                        stalled.push(cid);
                                    }
                                    if policy.disconnect_after > 0
                                        && *failures >= policy.disconnect_after
                                    {
                                        dead.push(cid);
                                    }
                                    break;
                                }
                                Err(TrySendError::Disconnected(_)) => {
                                    self.stats.disconnected_loss += 1;
                                    dead.push(cid);
                                    break;
                                }
                            }
                        }
                    }
                    ClientState::ColumnPush { .. } => unreachable!("handled above"),
                    ClientState::Pull { buffer, capacity } => {
                        let forced = self.injector.as_ref().is_some_and(|i| {
                            matches!(
                                i.poll(FaultPoint::FjordEnqueue),
                                Some(FaultAction::Overflow)
                            )
                        });
                        if buffer.len() >= *capacity || (forced && !buffer.is_empty()) {
                            buffer.pop_front();
                            // The victim moves from delivered to displaced.
                            self.stats.displaced += 1;
                            self.stats.delivered -= 1;
                        }
                        buffer.push_back((q, offer.to_tuple()));
                        self.stats.delivered += 1;
                    }
                    ClientState::Prioritized { buffer } => {
                        let forced = self.injector.as_ref().is_some_and(|i| {
                            matches!(
                                i.poll(FaultPoint::FjordEnqueue),
                                Some(FaultAction::Overflow)
                            )
                        });
                        if forced && buffer.evict_worst() {
                            self.stats.displaced += 1;
                            self.stats.delivered -= 1;
                        }
                        if buffer.insert((q, offer.to_tuple())) {
                            self.stats.displaced += 1;
                            self.stats.delivered -= 1;
                        }
                        self.stats.delivered += 1;
                    }
                }
            }
        }
        self.subs_scratch = subs;
        for cid in dead {
            if self.drop_client(cid) {
                self.stats.disconnected += 1;
            }
        }
    }

    /// One already-offered row for a column client: append it to the
    /// client's pending batch (started lazily, flushed when the session
    /// ends). A row-shaped offer, or a columnar offer whose schema differs
    /// from the pending batch, flushes first so the client's stream stays
    /// in delivery order.
    fn offer_column(
        &mut self,
        cid: ClientId,
        q: QueryId,
        offer: &Offer<'_>,
        stalled: &mut Vec<ClientId>,
        pending: &mut Vec<PendingColumns>,
        dead: &mut Vec<ClientId>,
    ) {
        let slot = pending.iter().position(|p| p.client == cid && p.query == q);
        match offer {
            Offer::Col { batch, row, .. } => {
                if let Some(i) = slot {
                    if Arc::ptr_eq(pending[i].batch.schema(), batch.schema()) {
                        pending[i].batch.push_row_from(batch, *row);
                        return;
                    }
                    let done = pending.remove(i);
                    self.flush_one(done, stalled, dead);
                }
                // Sized for the rest of the source batch: the session
                // feeds rows in order, so at most `len - row` more
                // appends land here before the flush.
                let mut b = ColumnBatch::with_capacity(batch.schema().clone(), batch.len() - *row);
                b.push_row_from(batch, *row);
                pending.push(PendingColumns {
                    client: cid,
                    query: q,
                    batch: b,
                });
            }
            Offer::Row(_) => {
                if let Some(i) = slot {
                    let done = pending.remove(i);
                    self.flush_one(done, stalled, dead);
                }
                let tuple = offer.to_tuple();
                let batch = ColumnBatch::from_tuples(
                    tuple.schema().clone(),
                    std::slice::from_ref(&tuple),
                    None,
                );
                self.flush_one(
                    PendingColumns {
                        client: cid,
                        query: q,
                        batch,
                    },
                    stalled,
                    dead,
                );
            }
        }
    }

    /// Send one pending columnar batch to its client, charging every row
    /// in it to exactly one ledger bucket (the rows were already counted
    /// as offered). Retry/stall/disconnect semantics mirror the row push
    /// client's, scaled to the batch's row count.
    fn flush_one(
        &mut self,
        p: PendingColumns,
        stalled: &mut Vec<ClientId>,
        dead: &mut Vec<ClientId>,
    ) {
        let n = p.batch.len() as u64;
        if n == 0 {
            return;
        }
        let policy = self.policy;
        let cid = p.client;
        let Some(ClientState::ColumnPush { tx, failures }) = self.clients.get_mut(&cid) else {
            // The client vanished mid-session (disconnected by an earlier
            // chunk, or dropped by the user); its buffered rows are lost.
            self.stats.disconnected_loss += n;
            return;
        };
        let budget = if stalled.contains(&cid) {
            0
        } else {
            policy.max_retries
        };
        let mut attempt = 0u32;
        let mut msg = (p.query, p.batch);
        loop {
            match tx.try_send(msg) {
                Ok(()) => {
                    self.stats.delivered += n;
                    *failures = 0;
                    stalled.retain(|&c| c != cid);
                    break;
                }
                Err(TrySendError::Full(m)) => {
                    if attempt < budget {
                        attempt += 1;
                        self.stats.retried += 1;
                        std::thread::yield_now();
                        msg = m;
                        continue;
                    }
                    self.stats.shed += n;
                    *failures += 1;
                    if !stalled.contains(&cid) {
                        stalled.push(cid);
                    }
                    if policy.disconnect_after > 0 && *failures >= policy.disconnect_after {
                        dead.push(cid);
                    }
                    break;
                }
                Err(TrySendError::Disconnected(_)) => {
                    self.stats.disconnected_loss += n;
                    dead.push(cid);
                    break;
                }
            }
        }
    }

    /// Flush every pending columnar batch and drop clients found dead
    /// while flushing. Called when a delivery session (or a single
    /// deliver/deliver_batch call) ends.
    fn flush_session(&mut self, pending: &mut Vec<PendingColumns>, stalled: &mut Vec<ClientId>) {
        let mut dead: Vec<ClientId> = Vec::new();
        for p in pending.drain(..) {
            self.flush_one(p, stalled, &mut dead);
        }
        for cid in dead {
            if self.drop_client(cid) {
                self.stats.disconnected += 1;
            }
        }
    }
}

/// Routes `(tuple, query ids)` outputs to subscribed clients.
///
/// Clonable handle; clones share the router (listener thread and executor
/// thread both touch it, as in Figure 5).
#[derive(Clone)]
pub struct EgressRouter {
    inner: Arc<Mutex<RouterInner>>,
}

impl Default for EgressRouter {
    fn default() -> Self {
        Self::new()
    }
}

impl EgressRouter {
    /// An empty router with the default (never-disconnect) policy.
    pub fn new() -> Self {
        EgressRouter {
            inner: Arc::new(Mutex::new(RouterInner {
                clients: HashMap::new(),
                by_query: HashMap::new(),
                subs_scratch: Vec::new(),
                stats: EgressStats::default(),
                policy: EgressPolicy::default(),
                injector: None,
                progress: None,
            })),
        }
    }

    /// Set the slow-client policy (builder form).
    pub fn with_policy(self, policy: EgressPolicy) -> Self {
        self.inner.lock().policy = policy;
        self
    }

    /// Set the slow-client policy on a running router.
    pub fn set_policy(&self, policy: EgressPolicy) {
        self.inner.lock().policy = policy;
    }

    /// Attach a chaos injector: every delivery offer polls
    /// [`FaultPoint::EgressDeliver`], and every pull/prioritized buffer
    /// insert polls [`FaultPoint::FjordEnqueue`].
    pub fn attach_injector(&self, injector: SharedInjector) {
        self.inner.lock().injector = Some(injector);
    }

    /// Attach a monotone progress counter bumped once per delivery offer
    /// (see `tcq_common::progress`: registered counters advance the
    /// liveness frontier without contributing to in-flight depth).
    pub fn attach_progress(&self, counter: Arc<AtomicU64>) {
        self.inner.lock().progress = Some(counter);
    }

    /// Register a push client with a bounded stream of `capacity` results.
    /// Returns the receiving end.
    pub fn register_push_client(
        &self,
        id: ClientId,
        capacity: usize,
    ) -> Result<Receiver<Delivery>> {
        let (tx, rx) = sync_channel(capacity.max(1));
        let mut inner = self.inner.lock();
        if inner.clients.contains_key(&id) {
            return Err(TcqError::Capacity(format!(
                "client {id} already registered"
            )));
        }
        inner
            .clients
            .insert(id, ClientState::Push { tx, failures: 0 });
        Ok(rx)
    }

    /// Register a column push client: a bounded stream of whole
    /// [`ColumnBatch`]es. Delivery offers (and fault polls, and the
    /// ledger) are still per row — identical to a row push client's — but
    /// surviving rows reach the channel as one batch per delivery session
    /// instead of one message per row, and no per-row [`Tuple`] is ever
    /// materialized for this client. The columnar hot path's terminal
    /// stage.
    pub fn register_column_client(
        &self,
        id: ClientId,
        capacity: usize,
    ) -> Result<Receiver<ColumnDelivery>> {
        let (tx, rx) = sync_channel(capacity.max(1));
        let mut inner = self.inner.lock();
        if inner.clients.contains_key(&id) {
            return Err(TcqError::Capacity(format!(
                "client {id} already registered"
            )));
        }
        inner
            .clients
            .insert(id, ClientState::ColumnPush { tx, failures: 0 });
        Ok(rx)
    }

    /// Register a pull client whose results are *prioritized* rather than
    /// FIFO: `priority` scores each tuple, and [`EgressRouter::fetch`]
    /// returns the highest-scoring buffered results first. This is the
    /// Juggle operator (\[RRH99\]) applied at the egress boundary — "pushing
    /// user preferences down into the query execution process" (§4.3).
    pub fn register_prioritized_client(
        &self,
        id: ClientId,
        capacity: usize,
        priority: Box<dyn Fn(&Tuple) -> f64 + Send>,
    ) -> Result<()> {
        let mut inner = self.inner.lock();
        if inner.clients.contains_key(&id) {
            return Err(TcqError::Capacity(format!(
                "client {id} already registered"
            )));
        }
        inner.clients.insert(
            id,
            ClientState::Prioritized {
                buffer: PriorityBuffer::new(capacity, priority),
            },
        );
        Ok(())
    }

    /// Register a pull client buffering up to `capacity` recent results.
    pub fn register_pull_client(&self, id: ClientId, capacity: usize) -> Result<()> {
        let mut inner = self.inner.lock();
        if inner.clients.contains_key(&id) {
            return Err(TcqError::Capacity(format!(
                "client {id} already registered"
            )));
        }
        inner.clients.insert(
            id,
            ClientState::Pull {
                buffer: VecDeque::new(),
                capacity: capacity.max(1),
            },
        );
        Ok(())
    }

    /// Subscribe a client to a query's results.
    pub fn subscribe(&self, client: ClientId, query: QueryId) -> Result<()> {
        let mut inner = self.inner.lock();
        if !inner.clients.contains_key(&client) {
            return Err(TcqError::Executor(format!("unknown client {client}")));
        }
        let subs = inner.by_query.entry(query).or_default();
        if !subs.contains(&client) {
            subs.push(client);
        }
        Ok(())
    }

    /// Remove a subscription (no-op if absent).
    pub fn unsubscribe(&self, client: ClientId, query: QueryId) {
        let mut inner = self.inner.lock();
        if let Some(subs) = inner.by_query.get_mut(&query) {
            subs.retain(|&c| c != client);
            if subs.is_empty() {
                inner.by_query.remove(&query);
            }
        }
    }

    /// Drop a client and all its subscriptions.
    pub fn disconnect(&self, client: ClientId) {
        self.inner.lock().drop_client(client);
    }

    /// Drop a client whose transport died with `undrained` results still
    /// buffered in its delivery queue. Those rows were counted `delivered`
    /// when they entered the channel, but the peer never read them — a TCP
    /// socket that drops mid-batch takes its queued backlog with it. This
    /// reclassifies exactly those offers from `delivered` to
    /// `disconnected_loss`, so the ledger invariant
    /// `delivered + shed + displaced + disconnected_loss == offered` keeps
    /// describing what the client actually *received*, not what the router
    /// enqueued. `undrained` is clamped to the delivered count so a buggy
    /// caller can never break the invariant.
    pub fn disconnect_with_loss(&self, client: ClientId, undrained: u64) {
        let mut inner = self.inner.lock();
        if inner.drop_client(client) {
            inner.stats.disconnected += 1;
        }
        let lost = undrained.min(inner.stats.delivered);
        inner.stats.delivered -= lost;
        inner.stats.disconnected_loss += lost;
    }

    /// Deliver `tuple` as an answer to each query in `queries`, fanning out
    /// to all subscribed clients. Slow/absent clients shed (push, after the
    /// policy's bounded retry) or rotate (pull) — delivery never blocks the
    /// executor — and a client stuck past `disconnect_after` consecutive
    /// failures is forcibly disconnected and counted.
    pub fn deliver<I: IntoIterator<Item = QueryId>>(&self, queries: I, tuple: &Tuple) {
        let mut inner = self.inner.lock();
        let mut stalled = Vec::new();
        let mut pending = Vec::new();
        inner.deliver_locked(queries, Offer::Row(tuple), &mut stalled, &mut pending);
        inner.flush_session(&mut pending, &mut stalled);
    }

    /// Deliver a whole batch of result tuples for the queries in `queries`,
    /// taking the router lock once for the batch instead of once per
    /// tuple. The per-client ledger is still charged per (tuple, client)
    /// offer, in the exact order `N` successive [`EgressRouter::deliver`]
    /// calls would charge it — including fault polls, per-offer outcomes,
    /// and stuck-client disconnection timing — so batched and unbatched
    /// runs of the same seed are byte-identical.
    ///
    /// Fairness: retry-yields are a per-client, per-batch budget. Once a
    /// push client exhausts `max_retries` on one tuple, its later offers
    /// in this batch are charged as shed after a single non-blocking
    /// attempt, so one stalled client cannot add `max_retries` scheduler
    /// yields to every remaining tuple's latency for the healthy clients
    /// behind it. (Only the `retried` counter can differ from the
    /// per-tuple path, and only for clients that were full anyway.)
    pub fn deliver_batch<I>(&self, queries: I, tuples: &[Tuple])
    where
        I: IntoIterator<Item = QueryId>,
        I::IntoIter: Clone,
    {
        if tuples.is_empty() {
            return;
        }
        let queries = queries.into_iter();
        let mut stalled = Vec::new();
        let mut pending = Vec::new();
        let mut guard = self.inner.lock();
        for tuple in tuples {
            guard.deliver_locked(
                queries.clone(),
                Offer::Row(tuple),
                &mut stalled,
                &mut pending,
            );
        }
        guard.flush_session(&mut pending, &mut stalled);
    }

    /// Begin a multi-chunk delivery session: the router lock is taken
    /// once and held for the session's lifetime, the per-batch fairness
    /// state (see [`EgressRouter::deliver_batch`]) spans every chunk, and
    /// column clients' rows accumulate across chunks into one channel
    /// message, flushed when the session drops. A session delivering the
    /// same rows as one `deliver_batch` call charges the ledger
    /// identically, whether the rows arrive as row chunks, columnar
    /// chunks, or a mix.
    pub fn session(&self) -> DeliverySession<'_> {
        DeliverySession {
            inner: self.inner.lock(),
            stalled: Vec::new(),
            pending: Vec::new(),
        }
    }

    /// Pull client: fetch up to `max` buffered results (oldest first).
    pub fn fetch(&self, client: ClientId, max: usize) -> Result<Vec<Delivery>> {
        let mut inner = self.inner.lock();
        match inner.clients.get_mut(&client) {
            Some(ClientState::Pull { buffer, .. }) => {
                let n = buffer.len().min(max);
                Ok(buffer.drain(..n).collect())
            }
            Some(ClientState::Prioritized { buffer, .. }) => Ok(buffer.fetch(max)),
            Some(ClientState::Push { .. }) | Some(ClientState::ColumnPush { .. }) => {
                Err(TcqError::Executor(format!(
                    "client {client} is a push client; fetch is for pull clients"
                )))
            }
            None => Err(TcqError::Executor(format!("unknown client {client}"))),
        }
    }

    /// (delivered, lost) counters — the legacy compact view; `lost` is
    /// `shed + displaced + disconnected_loss`.
    pub fn stats(&self) -> (u64, u64) {
        let s = self.inner.lock().stats;
        (s.delivered, s.shed + s.displaced + s.disconnected_loss)
    }

    /// Full delivery accounting.
    pub fn egress_stats(&self) -> EgressStats {
        self.inner.lock().stats
    }

    /// Seed the delivery ledger from a checkpoint. A restored server
    /// starts its router from the pre-crash ledger, so the accounting
    /// invariant (`delivered + shed + displaced + disconnected_loss ==
    /// offered`) spans the outage instead of resetting to zero.
    pub fn seed_stats(&self, stats: EgressStats) {
        self.inner.lock().stats = stats;
    }

    /// Number of registered clients.
    pub fn client_count(&self) -> usize {
        self.inner.lock().clients.len()
    }
}

/// A multi-chunk delivery session ([`EgressRouter::session`]): one router
/// lock, one per-batch fairness state, and per-column-client pending
/// batches spanning every chunk delivered through it. Dropping the
/// session flushes pending columnar batches to their clients.
pub struct DeliverySession<'a> {
    inner: tcq_common::sync::MutexGuard<'a, RouterInner>,
    stalled: Vec<ClientId>,
    pending: Vec<PendingColumns>,
}

impl DeliverySession<'_> {
    /// Deliver a chunk of row results, exactly as
    /// [`EgressRouter::deliver_batch`] would.
    pub fn deliver_rows<I>(&mut self, queries: I, tuples: &[Tuple])
    where
        I: IntoIterator<Item = QueryId>,
        I::IntoIter: Clone,
    {
        let queries = queries.into_iter();
        for tuple in tuples {
            self.inner.deliver_locked(
                queries.clone(),
                Offer::Row(tuple),
                &mut self.stalled,
                &mut self.pending,
            );
        }
    }

    /// Deliver a columnar chunk. The ledger is charged per (row, client)
    /// offer in the exact order delivering `batch.tuple_at(row)` one row
    /// at a time would charge it; row clients receive materialized
    /// tuples (built once per row, shared across clients), and column
    /// clients receive the rows batched. When every subscribed client is
    /// a column client, no per-row tuple is materialized at all.
    pub fn deliver_columns<I>(&mut self, queries: I, batch: &ColumnBatch)
    where
        I: IntoIterator<Item = QueryId>,
        I::IntoIter: Clone,
    {
        if batch.is_empty() {
            return;
        }
        let queries = queries.into_iter();
        let needs_rows = queries.clone().any(|q| {
            self.inner.by_query.get(&q).is_some_and(|subs| {
                subs.iter().any(|cid| {
                    !matches!(
                        self.inner.clients.get(cid),
                        Some(ClientState::ColumnPush { .. }) | None
                    )
                })
            })
        });
        for row in 0..batch.len() {
            let tuple = if needs_rows {
                Some(batch.tuple_at(row))
            } else {
                None
            };
            self.inner.deliver_locked(
                queries.clone(),
                Offer::Col {
                    batch,
                    row,
                    tuple: tuple.as_ref(),
                },
                &mut self.stalled,
                &mut self.pending,
            );
        }
    }
}

impl Drop for DeliverySession<'_> {
    fn drop(&mut self) {
        let mut pending = std::mem::take(&mut self.pending);
        self.inner.flush_session(&mut pending, &mut self.stalled);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcq_common::{DataType, Field, Schema, SchemaRef, Timestamp, TupleBuilder};

    fn schema() -> SchemaRef {
        Schema::new(vec![Field::new("x", DataType::Int)]).into_ref()
    }

    fn t(x: i64) -> Tuple {
        TupleBuilder::new(schema())
            .push(x)
            .at(Timestamp::logical(x))
            .build()
            .unwrap()
    }

    #[test]
    fn push_delivery_fans_out_by_subscription() {
        let r = EgressRouter::new();
        let rx1 = r.register_push_client(1, 16).unwrap();
        let rx2 = r.register_push_client(2, 16).unwrap();
        r.subscribe(1, 100).unwrap();
        r.subscribe(2, 200).unwrap();
        r.deliver([100usize], &t(1));
        r.deliver([200usize], &t(2));
        r.deliver([100usize, 200], &t(3));
        let got1: Vec<_> = rx1.try_iter().collect();
        let got2: Vec<_> = rx2.try_iter().collect();
        assert_eq!(got1.len(), 2);
        assert!(got1.iter().all(|(q, _)| *q == 100));
        assert_eq!(got2.len(), 2);
    }

    #[test]
    fn slow_push_client_sheds_not_blocks() {
        let r = EgressRouter::new();
        let _rx = r.register_push_client(1, 2).unwrap();
        r.subscribe(1, 5).unwrap();
        for i in 0..10 {
            r.deliver([5usize], &t(i));
        }
        let (delivered, shed) = r.stats();
        assert_eq!(delivered, 2);
        assert_eq!(shed, 8);
    }

    #[test]
    fn pull_client_intermittent_fetch() {
        let r = EgressRouter::new();
        r.register_pull_client(7, 100).unwrap();
        r.subscribe(7, 1).unwrap();
        for i in 0..5 {
            r.deliver([1usize], &t(i));
        }
        // client reconnects and fetches
        let first = r.fetch(7, 3).unwrap();
        assert_eq!(first.len(), 3);
        assert_eq!(first[0].1, t(0));
        let rest = r.fetch(7, 100).unwrap();
        assert_eq!(rest.len(), 2);
        assert!(r.fetch(7, 10).unwrap().is_empty());
    }

    #[test]
    fn pull_buffer_rotates_oldest_out() {
        let r = EgressRouter::new();
        r.register_pull_client(7, 3).unwrap();
        r.subscribe(7, 1).unwrap();
        for i in 0..10 {
            r.deliver([1usize], &t(i));
        }
        let got = r.fetch(7, 10).unwrap();
        assert_eq!(got.len(), 3);
        assert_eq!(got[0].1, t(7), "oldest results rotated out");
        assert_eq!(r.stats().1, 7);
    }

    #[test]
    fn disconnect_cleans_subscriptions() {
        let r = EgressRouter::new();
        r.register_pull_client(1, 4).unwrap();
        r.subscribe(1, 9).unwrap();
        r.disconnect(1);
        assert_eq!(r.client_count(), 0);
        // delivering to the orphaned query is a no-op
        r.deliver([9usize], &t(0));
        assert!(r.fetch(1, 1).is_err());
    }

    #[test]
    fn duplicate_registration_and_wrong_mode_errors() {
        let r = EgressRouter::new();
        r.register_pull_client(1, 4).unwrap();
        assert!(r.register_pull_client(1, 4).is_err());
        assert!(r.register_push_client(1, 4).is_err());
        let _rx = r.register_push_client(2, 4).unwrap();
        assert!(r.fetch(2, 1).is_err());
        assert!(r.subscribe(99, 1).is_err());
    }

    #[test]
    fn unsubscribe_stops_delivery() {
        let r = EgressRouter::new();
        r.register_pull_client(1, 10).unwrap();
        r.subscribe(1, 5).unwrap();
        r.deliver([5usize], &t(1));
        r.unsubscribe(1, 5);
        r.deliver([5usize], &t(2));
        assert_eq!(r.fetch(1, 10).unwrap().len(), 1);
    }

    #[test]
    fn stuck_push_client_disconnected_after_threshold() {
        let r = EgressRouter::new().with_policy(EgressPolicy {
            max_retries: 1,
            disconnect_after: 3,
        });
        let _rx = r.register_push_client(1, 1).unwrap();
        r.subscribe(1, 5).unwrap();
        for i in 0..10 {
            r.deliver([5usize], &t(i));
        }
        let s = r.egress_stats();
        // Offer 1 fills the channel; offers 2-4 shed (failure streak 1..3);
        // the 4th offer trips disconnect_after=3; offers 5-10 find no
        // subscriber and are never offered.
        assert_eq!(s.offered, 4);
        assert_eq!(s.delivered, 1);
        assert_eq!(s.shed, 3);
        assert_eq!(s.disconnected, 1);
        assert!(
            s.retried >= 3,
            "each full offer retried once: {}",
            s.retried
        );
        assert!(s.accounted(), "every offer accounted: {s:?}");
        assert_eq!(r.client_count(), 0, "stuck client forcibly removed");
    }

    #[test]
    fn socket_drop_mid_batch_reclassifies_undrained_rows() {
        // A TCP client with a queue of 4 receives a 10-row batch: 4 rows
        // buffer (delivered), 6 shed. The client reads one row, then its
        // socket drops — the 3 rows still in the queue were never on the
        // wire. The transport drains them and reports the loss.
        let r = EgressRouter::new();
        let rx = r.register_push_client(1, 4).unwrap();
        r.subscribe(1, 5).unwrap();
        for i in 0..10 {
            r.deliver([5usize], &t(i));
        }
        let s = r.egress_stats();
        assert_eq!((s.delivered, s.shed), (4, 6));
        let _read = rx.recv().unwrap(); // one row reached the peer
        drop(rx);
        let undrained = 3; // what the transport counts while draining
        r.disconnect_with_loss(1, undrained);
        let s = r.egress_stats();
        assert_eq!(s.offered, 10);
        assert_eq!(s.delivered, 1, "only the row the peer actually read");
        assert_eq!(s.shed, 6);
        assert_eq!(s.disconnected_loss, 3, "undrained queue rows are loss");
        assert_eq!(s.disconnected, 1);
        assert!(s.accounted(), "invariant survives a mid-batch drop: {s:?}");
        assert_eq!(r.client_count(), 0);
    }

    #[test]
    fn disconnect_with_loss_clamps_to_delivered() {
        let r = EgressRouter::new();
        let _rx = r.register_push_client(1, 4).unwrap();
        r.subscribe(1, 5).unwrap();
        r.deliver([5usize], &t(1));
        // A caller over-reporting undrained rows cannot drive `delivered`
        // negative or break the invariant.
        r.disconnect_with_loss(1, 99);
        let s = r.egress_stats();
        assert_eq!(s.delivered, 0);
        assert_eq!(s.disconnected_loss, 1);
        assert!(s.accounted());
        // Disconnecting an unknown client is a no-op, not a panic.
        r.disconnect_with_loss(42, 7);
        assert_eq!(r.egress_stats().disconnected, 1);
    }

    #[test]
    fn dead_push_client_is_disconnected_and_counted() {
        let r = EgressRouter::new().with_policy(EgressPolicy {
            max_retries: 0,
            disconnect_after: 4,
        });
        let rx = r.register_push_client(1, 8).unwrap();
        r.subscribe(1, 5).unwrap();
        drop(rx);
        r.deliver([5usize], &t(1));
        let s = r.egress_stats();
        assert_eq!(s.disconnected_loss, 1);
        assert_eq!(s.disconnected, 1);
        assert!(s.accounted());
        assert_eq!(r.client_count(), 0, "dead client cleaned up eagerly");
        // Later deliveries are no-ops, not errors.
        r.deliver([5usize], &t(2));
        assert_eq!(r.egress_stats().offered, 1);
    }

    #[test]
    fn delivery_success_resets_failure_streak() {
        let r = EgressRouter::new().with_policy(EgressPolicy {
            max_retries: 0,
            disconnect_after: 3,
        });
        let rx = r.register_push_client(1, 1).unwrap();
        r.subscribe(1, 5).unwrap();
        // Alternate fill/drain: two consecutive failures max, never three.
        for round in 0..6 {
            r.deliver([5usize], &t(round * 3)); // delivered (channel empty)
            r.deliver([5usize], &t(round * 3 + 1)); // shed, streak 1
            r.deliver([5usize], &t(round * 3 + 2)); // shed, streak 2
            let _ = rx.try_iter().count(); // client catches up
        }
        let s = r.egress_stats();
        assert_eq!(s.disconnected, 0, "recovering client never disconnected");
        assert_eq!(s.delivered, 6);
        assert_eq!(s.shed, 12);
        assert!(s.accounted());
    }

    #[test]
    fn deliver_batch_matches_per_tuple_deliveries() {
        let mk = || {
            let r = EgressRouter::new().with_policy(EgressPolicy {
                max_retries: 0,
                disconnect_after: 2,
            });
            let rx = r.register_push_client(1, 3).unwrap();
            r.register_pull_client(2, 4).unwrap();
            r.subscribe(1, 9).unwrap();
            r.subscribe(2, 9).unwrap();
            (r, rx)
        };
        let tuples: Vec<Tuple> = (0..20).map(t).collect();
        let (per, per_rx) = mk();
        for tup in &tuples {
            per.deliver([9usize], tup);
        }
        let (bat, bat_rx) = mk();
        bat.deliver_batch([9usize], &tuples);
        assert_eq!(per.egress_stats(), bat.egress_stats());
        assert!(bat.egress_stats().accounted());
        let a: Vec<_> = per_rx.try_iter().collect();
        let b: Vec<_> = bat_rx.try_iter().collect();
        assert_eq!(a, b, "push stream identical");
        assert_eq!(
            per.fetch(2, 10).unwrap(),
            bat.fetch(2, 10).unwrap(),
            "pull ring identical"
        );
    }

    #[test]
    fn accounting_invariant_across_mixed_clients() {
        let r = EgressRouter::new().with_policy(EgressPolicy {
            max_retries: 1,
            disconnect_after: 2,
        });
        let _rx = r.register_push_client(1, 2).unwrap();
        r.register_pull_client(2, 3).unwrap();
        let rx_dead = r.register_push_client(3, 1).unwrap();
        drop(rx_dead);
        for c in 1..=3 {
            r.subscribe(c, 9).unwrap();
        }
        for i in 0..50 {
            r.deliver([9usize], &t(i));
        }
        let s = r.egress_stats();
        assert!(s.accounted(), "invariant must hold under churn: {s:?}");
        assert!(s.displaced > 0, "pull ring rotated");
        assert!(s.disconnected >= 2, "stuck + dead clients removed");
        // Pull client survives and holds the freshest results.
        assert_eq!(r.fetch(2, 10).unwrap().len(), 3);
    }

    #[test]
    fn column_client_receives_batched_rows_without_row_messages() {
        let r = EgressRouter::new();
        let rx = r.register_column_client(1, 8).unwrap();
        r.subscribe(1, 9).unwrap();
        let tuples: Vec<Tuple> = (0..5).map(t).collect();
        let batch = ColumnBatch::from_tuples(schema(), &tuples, None);
        {
            let mut session = r.session();
            session.deliver_columns([9usize], &batch);
        }
        let got: Vec<_> = rx.try_iter().collect();
        assert_eq!(got.len(), 1, "one channel message for the whole batch");
        let (q, b) = &got[0];
        assert_eq!(*q, 9);
        assert_eq!(b.len(), 5);
        for (row, want) in tuples.iter().enumerate() {
            assert_eq!(b.tuple_at(row), *want);
        }
        let s = r.egress_stats();
        assert_eq!(s.offered, 5, "ledger stays per-row");
        assert_eq!(s.delivered, 5);
        assert!(s.accounted());
    }

    #[test]
    fn column_and_row_clients_share_one_columnar_delivery() {
        let r = EgressRouter::new();
        let row_rx = r.register_push_client(1, 16).unwrap();
        let col_rx = r.register_column_client(2, 16).unwrap();
        r.subscribe(1, 9).unwrap();
        r.subscribe(2, 9).unwrap();
        let tuples: Vec<Tuple> = (0..4).map(t).collect();
        let batch = ColumnBatch::from_tuples(schema(), &tuples, None);
        {
            let mut session = r.session();
            session.deliver_columns([9usize], &batch);
        }
        let rows: Vec<_> = row_rx.try_iter().map(|(_, t)| t).collect();
        assert_eq!(rows, tuples, "row client sees materialized rows in order");
        let cols: Vec<_> = col_rx.try_iter().collect();
        assert_eq!(cols.len(), 1);
        assert_eq!(cols[0].1.len(), 4);
        let s = r.egress_stats();
        assert_eq!(s.offered, 8);
        assert_eq!(s.delivered, 8);
        assert!(s.accounted());
    }

    #[test]
    fn session_mixed_chunks_match_one_row_batch() {
        // The same rows, once as a single deliver_batch and once as a
        // session of columnar + row chunks, charge identical ledgers and
        // produce identical client streams.
        let mk = || {
            let r = EgressRouter::new().with_policy(EgressPolicy {
                max_retries: 1,
                disconnect_after: 2,
            });
            let rx = r.register_push_client(1, 6).unwrap();
            r.register_pull_client(2, 4).unwrap();
            r.subscribe(1, 9).unwrap();
            r.subscribe(2, 9).unwrap();
            (r, rx)
        };
        let tuples: Vec<Tuple> = (0..12).map(t).collect();
        let (plain, plain_rx) = mk();
        plain.deliver_batch([9usize], &tuples);
        let (ses, ses_rx) = mk();
        {
            let mut session = ses.session();
            let head = ColumnBatch::from_tuples(schema(), &tuples[..7], None);
            session.deliver_columns([9usize], &head);
            session.deliver_rows([9usize], &tuples[7..]);
        }
        assert_eq!(plain.egress_stats(), ses.egress_stats());
        let a: Vec<_> = plain_rx.try_iter().collect();
        let b: Vec<_> = ses_rx.try_iter().collect();
        assert_eq!(a, b, "push stream identical");
        assert_eq!(plain.fetch(2, 10).unwrap(), ses.fetch(2, 10).unwrap());
        assert!(ses.egress_stats().accounted());
    }

    #[test]
    fn column_client_full_channel_sheds_whole_batch() {
        let r = EgressRouter::new();
        let _rx = r.register_column_client(1, 1).unwrap();
        r.subscribe(1, 9).unwrap();
        let tuples: Vec<Tuple> = (0..3).map(t).collect();
        let batch = ColumnBatch::from_tuples(schema(), &tuples, None);
        {
            let mut session = r.session();
            session.deliver_columns([9usize], &batch);
        }
        // Channel (capacity 1, undrained) is now full: the next session's
        // flush sheds its rows, counted individually.
        {
            let mut session = r.session();
            session.deliver_columns([9usize], &batch);
        }
        let s = r.egress_stats();
        assert_eq!(s.offered, 6);
        assert_eq!(s.delivered, 3);
        assert_eq!(s.shed, 3);
        assert!(s.accounted());
    }

    #[test]
    fn stalled_client_pays_its_own_retry_budget_in_batches() {
        // One stalled push client and one healthy push client share a
        // query. Under the per-batch fairness rule the stalled client gets
        // `max_retries` yields *once*, not once per tuple, so it cannot
        // inflate the healthy client's tail latency across a large batch.
        const N: i64 = 100;
        const RETRIES: u32 = 10;
        let r = EgressRouter::new().with_policy(EgressPolicy {
            max_retries: RETRIES,
            disconnect_after: 0, // keep the stalled client subscribed
        });
        // Registered (and therefore offered) first, so every tuple would
        // pay its retries before the healthy client without the fix.
        let _stalled_rx = r.register_push_client(1, 1).unwrap();
        let healthy_rx = r.register_push_client(2, N as usize).unwrap();
        r.subscribe(1, 9).unwrap();
        r.subscribe(2, 9).unwrap();
        let tuples: Vec<Tuple> = (0..N).map(t).collect();
        r.deliver_batch([9usize], &tuples);

        let got: Vec<_> = healthy_rx.try_iter().collect();
        assert_eq!(got.len(), N as usize, "healthy client got every tuple");
        let s = r.egress_stats();
        // Tuple 0 fills the stalled channel; tuple 1 burns the full retry
        // budget and marks the client stalled; tuples 2..N shed with zero
        // retries. Without the batch-stall set this would be
        // (N-1) * RETRIES = 990 yields charged to the shared batch.
        assert_eq!(s.retried as u32, RETRIES, "retry budget spent once");
        assert_eq!(s.delivered, N as u64 + 1);
        assert_eq!(s.shed, N as u64 - 1);
        assert!(s.accounted(), "{s:?}");
    }
}

#[cfg(test)]
mod chaos_tests {
    use super::*;
    use tcq_common::{DataType, FaultPlan, Field, Schema, SchemaRef, Timestamp, TupleBuilder};

    fn schema() -> SchemaRef {
        Schema::new(vec![Field::new("x", DataType::Int)]).into_ref()
    }

    fn t(x: i64) -> Tuple {
        TupleBuilder::new(schema())
            .push(x)
            .at(Timestamp::logical(x))
            .build()
            .unwrap()
    }

    #[test]
    fn injected_stall_forces_disconnect() {
        let injector = FaultPlan::new(1)
            .at(
                FaultPoint::EgressDeliver,
                3,
                FaultAction::Stall { ticks: 5 },
            )
            .build_shared();
        let r = EgressRouter::new().with_policy(EgressPolicy {
            max_retries: 0,
            disconnect_after: 8,
        });
        r.attach_injector(injector.clone());
        let _rx = r.register_push_client(1, 16).unwrap();
        r.subscribe(1, 5).unwrap();
        for i in 0..10 {
            r.deliver([5usize], &t(i));
        }
        let s = r.egress_stats();
        assert_eq!(s.offered, 3, "client gone after the injected stall");
        assert_eq!(s.delivered, 2);
        assert_eq!(s.disconnected, 1);
        assert_eq!(s.disconnected_loss, 1);
        assert!(s.accounted());
        assert_eq!(injector.log().len(), 1);
    }

    #[test]
    fn injected_enqueue_overflow_displaces_pull_buffer() {
        let injector = FaultPlan::new(1)
            .at(FaultPoint::FjordEnqueue, 3, FaultAction::Overflow)
            .build_shared();
        let r = EgressRouter::new();
        r.attach_injector(injector);
        r.register_pull_client(1, 100).unwrap();
        r.subscribe(1, 5).unwrap();
        for i in 0..5 {
            r.deliver([5usize], &t(i));
        }
        let s = r.egress_stats();
        assert_eq!(s.displaced, 1, "forced rotation despite spare capacity");
        assert_eq!(s.delivered, 4);
        assert!(s.accounted());
        let got = r.fetch(1, 10).unwrap();
        assert_eq!(got.len(), 4);
        assert_eq!(got[0].1, t(1), "oldest entry was the displaced victim");
    }

    #[test]
    fn injected_delivery_error_sheds_copy() {
        let injector = FaultPlan::new(1)
            .at(
                FaultPoint::EgressDeliver,
                2,
                FaultAction::Error("wire".into()),
            )
            .build_shared();
        let r = EgressRouter::new();
        r.attach_injector(injector);
        let rx = r.register_push_client(1, 16).unwrap();
        r.subscribe(1, 5).unwrap();
        for i in 0..4 {
            r.deliver([5usize], &t(i));
        }
        let s = r.egress_stats();
        assert_eq!(s.delivered, 3);
        assert_eq!(s.shed, 1);
        assert!(s.accounted());
        assert_eq!(rx.try_iter().count(), 3);
        assert_eq!(r.client_count(), 1, "no disconnect with policy disabled");
    }
}

#[cfg(test)]
mod prioritized_tests {
    use super::*;
    use tcq_common::{DataType, Field, Schema, SchemaRef, Timestamp, TupleBuilder};

    fn schema() -> SchemaRef {
        Schema::new(vec![Field::new("x", DataType::Int)]).into_ref()
    }

    fn t(x: i64) -> Tuple {
        TupleBuilder::new(schema())
            .push(x)
            .at(Timestamp::logical(x))
            .build()
            .unwrap()
    }

    #[test]
    fn prioritized_client_fetches_best_first() {
        let r = EgressRouter::new();
        r.register_prioritized_client(
            1,
            16,
            Box::new(|t: &Tuple| t.value(0).as_int().unwrap_or(0) as f64),
        )
        .unwrap();
        r.subscribe(1, 7).unwrap();
        for x in [3, 9, 1, 5] {
            r.deliver([7usize], &t(x));
        }
        let got = r.fetch(1, 2).unwrap();
        let xs: Vec<i64> = got
            .iter()
            .map(|(_, t)| t.value(0).as_int().unwrap())
            .collect();
        assert_eq!(xs, vec![9, 5], "highest priority first");
        assert!(got.iter().all(|(q, _)| *q == 7));
        // Remaining entries still buffered in priority order.
        let rest = r.fetch(1, 10).unwrap();
        let xs: Vec<i64> = rest
            .iter()
            .map(|(_, t)| t.value(0).as_int().unwrap())
            .collect();
        assert_eq!(xs, vec![3, 1]);
    }

    #[test]
    fn prioritized_overflow_drops_and_counts() {
        let r = EgressRouter::new();
        r.register_prioritized_client(
            1,
            2,
            Box::new(|t: &Tuple| t.value(0).as_int().unwrap_or(0) as f64),
        )
        .unwrap();
        r.subscribe(1, 1).unwrap();
        for x in 0..10 {
            r.deliver([1usize], &t(x));
        }
        let (_, dropped) = r.stats();
        assert_eq!(dropped, 8);
        // The BEST two survive the shedding.
        let got = r.fetch(1, 10).unwrap();
        let xs: Vec<i64> = got
            .iter()
            .map(|(_, t)| t.value(0).as_int().unwrap())
            .collect();
        assert_eq!(xs, vec![9, 8]);
    }
}
