//! Egress operators: result delivery to clients (§4.3).
//!
//! > "Push-based egress operators support interaction where clients are
//! > continually streamed query results, while pull-based egress operators
//! > may log data and support intermittent retrieval of results."
//!
//! The [`EgressRouter`] owns per-client output queues (Figure 5's
//! client-specific output queues in shared memory) and a subscription map
//! from query ids to clients:
//!
//! * **push clients** get a bounded channel streamed to them; when a slow
//!   client's queue fills, results are shed and counted (the paper's QoS
//!   stance: degrade in a controlled, observable fashion);
//! * **pull clients** get a bounded ring of recent results they can fetch
//!   on reconnect — the PSoup-style "disconnected operation" mode, where
//!   computation is separated from delivery.

#![warn(missing_docs)]

use std::collections::{HashMap, VecDeque};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};

use std::sync::Arc;
use tcq_common::sync::Mutex;

use tcq_common::{Result, TcqError, Tuple};

/// Client identifier.
pub type ClientId = u64;
/// Query identifier (matches the executor's query ids).
pub type QueryId = usize;

/// A result delivered to a client: which query it answers, and the tuple.
pub type Delivery = (QueryId, Tuple);

enum ClientState {
    Push {
        tx: SyncSender<Delivery>,
        shed: u64,
    },
    Pull {
        buffer: VecDeque<Delivery>,
        capacity: usize,
        dropped: u64,
    },
    /// A pull client with Juggle-style prioritized retrieval (\[RRH99\]):
    /// fetch returns the most *interesting* buffered results first, and
    /// overflow sheds the least interesting — user preferences pushed down
    /// into result delivery (§4.3).
    Prioritized {
        buffer: PriorityBuffer,
        dropped: u64,
    },
}

/// Monotone map from f64 to u64 (IEEE-754 total-order trick), so floats can
/// key a BTreeMap.
fn f64_order_key(f: f64) -> u64 {
    let bits = f.to_bits();
    if bits >> 63 == 1 {
        !bits
    } else {
        bits | (1 << 63)
    }
}

/// Bounded best-first buffer: keeps the `capacity` highest-priority
/// deliveries, fetches best-first, sheds worst-first on overflow.
struct PriorityBuffer {
    priority: Box<dyn Fn(&Tuple) -> f64 + Send>,
    /// (priority key, arrival) -> delivery; iteration order = worst..best.
    entries: std::collections::BTreeMap<(u64, u64), Delivery>,
    capacity: usize,
    next_arrival: u64,
}

impl PriorityBuffer {
    fn new(capacity: usize, priority: Box<dyn Fn(&Tuple) -> f64 + Send>) -> Self {
        PriorityBuffer {
            priority,
            entries: std::collections::BTreeMap::new(),
            capacity: capacity.max(1),
            next_arrival: 0,
        }
    }

    /// Insert; returns true if something (the incoming delivery or a worse
    /// buffered one) was shed.
    fn insert(&mut self, delivery: Delivery) -> bool {
        let p = f64_order_key((self.priority)(&delivery.1));
        // Later arrivals sort below earlier ones at equal priority, so
        // fetch is FIFO within a priority level.
        let arrival = u64::MAX - self.next_arrival;
        self.next_arrival += 1;
        self.entries.insert((p, arrival), delivery);
        if self.entries.len() > self.capacity {
            self.entries.pop_first();
            true
        } else {
            false
        }
    }

    /// Remove and return up to `max` deliveries, best first.
    fn fetch(&mut self, max: usize) -> Vec<Delivery> {
        let mut out = Vec::with_capacity(self.entries.len().min(max));
        while out.len() < max {
            match self.entries.pop_last() {
                Some((_, d)) => out.push(d),
                None => break,
            }
        }
        out
    }
}

struct RouterInner {
    clients: HashMap<ClientId, ClientState>,
    by_query: HashMap<QueryId, Vec<ClientId>>,
    delivered: u64,
}

/// Routes `(tuple, query ids)` outputs to subscribed clients.
///
/// Clonable handle; clones share the router (listener thread and executor
/// thread both touch it, as in Figure 5).
#[derive(Clone)]
pub struct EgressRouter {
    inner: Arc<Mutex<RouterInner>>,
}

impl Default for EgressRouter {
    fn default() -> Self {
        Self::new()
    }
}

impl EgressRouter {
    /// An empty router.
    pub fn new() -> Self {
        EgressRouter {
            inner: Arc::new(Mutex::new(RouterInner {
                clients: HashMap::new(),
                by_query: HashMap::new(),
                delivered: 0,
            })),
        }
    }

    /// Register a push client with a bounded stream of `capacity` results.
    /// Returns the receiving end.
    pub fn register_push_client(
        &self,
        id: ClientId,
        capacity: usize,
    ) -> Result<Receiver<Delivery>> {
        let (tx, rx) = sync_channel(capacity.max(1));
        let mut inner = self.inner.lock();
        if inner.clients.contains_key(&id) {
            return Err(TcqError::Capacity(format!(
                "client {id} already registered"
            )));
        }
        inner.clients.insert(id, ClientState::Push { tx, shed: 0 });
        Ok(rx)
    }

    /// Register a pull client whose results are *prioritized* rather than
    /// FIFO: `priority` scores each tuple, and [`EgressRouter::fetch`]
    /// returns the highest-scoring buffered results first. This is the
    /// Juggle operator (\[RRH99\]) applied at the egress boundary — "pushing
    /// user preferences down into the query execution process" (§4.3).
    pub fn register_prioritized_client(
        &self,
        id: ClientId,
        capacity: usize,
        priority: Box<dyn Fn(&Tuple) -> f64 + Send>,
    ) -> Result<()> {
        let mut inner = self.inner.lock();
        if inner.clients.contains_key(&id) {
            return Err(TcqError::Capacity(format!(
                "client {id} already registered"
            )));
        }
        inner.clients.insert(
            id,
            ClientState::Prioritized {
                buffer: PriorityBuffer::new(capacity, priority),
                dropped: 0,
            },
        );
        Ok(())
    }

    /// Register a pull client buffering up to `capacity` recent results.
    pub fn register_pull_client(&self, id: ClientId, capacity: usize) -> Result<()> {
        let mut inner = self.inner.lock();
        if inner.clients.contains_key(&id) {
            return Err(TcqError::Capacity(format!(
                "client {id} already registered"
            )));
        }
        inner.clients.insert(
            id,
            ClientState::Pull {
                buffer: VecDeque::new(),
                capacity: capacity.max(1),
                dropped: 0,
            },
        );
        Ok(())
    }

    /// Subscribe a client to a query's results.
    pub fn subscribe(&self, client: ClientId, query: QueryId) -> Result<()> {
        let mut inner = self.inner.lock();
        if !inner.clients.contains_key(&client) {
            return Err(TcqError::Executor(format!("unknown client {client}")));
        }
        let subs = inner.by_query.entry(query).or_default();
        if !subs.contains(&client) {
            subs.push(client);
        }
        Ok(())
    }

    /// Remove a subscription (no-op if absent).
    pub fn unsubscribe(&self, client: ClientId, query: QueryId) {
        let mut inner = self.inner.lock();
        if let Some(subs) = inner.by_query.get_mut(&query) {
            subs.retain(|&c| c != client);
            if subs.is_empty() {
                inner.by_query.remove(&query);
            }
        }
    }

    /// Drop a client and all its subscriptions.
    pub fn disconnect(&self, client: ClientId) {
        let mut inner = self.inner.lock();
        inner.clients.remove(&client);
        inner.by_query.retain(|_, subs| {
            subs.retain(|&c| c != client);
            !subs.is_empty()
        });
    }

    /// Deliver `tuple` as an answer to each query in `queries`, fanning out
    /// to all subscribed clients. Slow/absent clients shed (push) or rotate
    /// (pull) — delivery never blocks the executor.
    pub fn deliver<I: IntoIterator<Item = QueryId>>(&self, queries: I, tuple: &Tuple) {
        let mut inner = self.inner.lock();
        for q in queries {
            let Some(subs) = inner.by_query.get(&q) else {
                continue;
            };
            let subs: Vec<ClientId> = subs.clone();
            for cid in subs {
                if let Some(state) = inner.clients.get_mut(&cid) {
                    match state {
                        ClientState::Push { tx, shed } => {
                            match tx.try_send((q, tuple.clone())) {
                                Ok(()) => inner.delivered += 1,
                                Err(TrySendError::Full(_)) => *shed += 1,
                                Err(TrySendError::Disconnected(_)) => {
                                    // Client went away; cleaned up lazily.
                                }
                            }
                        }
                        ClientState::Pull {
                            buffer,
                            capacity,
                            dropped,
                        } => {
                            if buffer.len() >= *capacity {
                                buffer.pop_front();
                                *dropped += 1;
                            }
                            buffer.push_back((q, tuple.clone()));
                            inner.delivered += 1;
                        }
                        ClientState::Prioritized { buffer, dropped } => {
                            if buffer.insert((q, tuple.clone())) {
                                *dropped += 1;
                            }
                            inner.delivered += 1;
                        }
                    }
                }
            }
        }
    }

    /// Pull client: fetch up to `max` buffered results (oldest first).
    pub fn fetch(&self, client: ClientId, max: usize) -> Result<Vec<Delivery>> {
        let mut inner = self.inner.lock();
        match inner.clients.get_mut(&client) {
            Some(ClientState::Pull { buffer, .. }) => {
                let n = buffer.len().min(max);
                Ok(buffer.drain(..n).collect())
            }
            Some(ClientState::Prioritized { buffer, .. }) => Ok(buffer.fetch(max)),
            Some(ClientState::Push { .. }) => Err(TcqError::Executor(format!(
                "client {client} is a push client; fetch is for pull clients"
            ))),
            None => Err(TcqError::Executor(format!("unknown client {client}"))),
        }
    }

    /// (delivered, shed-or-dropped) counters.
    pub fn stats(&self) -> (u64, u64) {
        let inner = self.inner.lock();
        let lost: u64 = inner
            .clients
            .values()
            .map(|c| match c {
                ClientState::Push { shed, .. } => *shed,
                ClientState::Pull { dropped, .. } => *dropped,
                ClientState::Prioritized { dropped, .. } => *dropped,
            })
            .sum();
        (inner.delivered, lost)
    }

    /// Number of registered clients.
    pub fn client_count(&self) -> usize {
        self.inner.lock().clients.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcq_common::{DataType, Field, Schema, SchemaRef, Timestamp, TupleBuilder};

    fn schema() -> SchemaRef {
        Schema::new(vec![Field::new("x", DataType::Int)]).into_ref()
    }

    fn t(x: i64) -> Tuple {
        TupleBuilder::new(schema())
            .push(x)
            .at(Timestamp::logical(x))
            .build()
            .unwrap()
    }

    #[test]
    fn push_delivery_fans_out_by_subscription() {
        let r = EgressRouter::new();
        let rx1 = r.register_push_client(1, 16).unwrap();
        let rx2 = r.register_push_client(2, 16).unwrap();
        r.subscribe(1, 100).unwrap();
        r.subscribe(2, 200).unwrap();
        r.deliver([100usize], &t(1));
        r.deliver([200usize], &t(2));
        r.deliver([100usize, 200], &t(3));
        let got1: Vec<_> = rx1.try_iter().collect();
        let got2: Vec<_> = rx2.try_iter().collect();
        assert_eq!(got1.len(), 2);
        assert!(got1.iter().all(|(q, _)| *q == 100));
        assert_eq!(got2.len(), 2);
    }

    #[test]
    fn slow_push_client_sheds_not_blocks() {
        let r = EgressRouter::new();
        let _rx = r.register_push_client(1, 2).unwrap();
        r.subscribe(1, 5).unwrap();
        for i in 0..10 {
            r.deliver([5usize], &t(i));
        }
        let (delivered, shed) = r.stats();
        assert_eq!(delivered, 2);
        assert_eq!(shed, 8);
    }

    #[test]
    fn pull_client_intermittent_fetch() {
        let r = EgressRouter::new();
        r.register_pull_client(7, 100).unwrap();
        r.subscribe(7, 1).unwrap();
        for i in 0..5 {
            r.deliver([1usize], &t(i));
        }
        // client reconnects and fetches
        let first = r.fetch(7, 3).unwrap();
        assert_eq!(first.len(), 3);
        assert_eq!(first[0].1, t(0));
        let rest = r.fetch(7, 100).unwrap();
        assert_eq!(rest.len(), 2);
        assert!(r.fetch(7, 10).unwrap().is_empty());
    }

    #[test]
    fn pull_buffer_rotates_oldest_out() {
        let r = EgressRouter::new();
        r.register_pull_client(7, 3).unwrap();
        r.subscribe(7, 1).unwrap();
        for i in 0..10 {
            r.deliver([1usize], &t(i));
        }
        let got = r.fetch(7, 10).unwrap();
        assert_eq!(got.len(), 3);
        assert_eq!(got[0].1, t(7), "oldest results rotated out");
        assert_eq!(r.stats().1, 7);
    }

    #[test]
    fn disconnect_cleans_subscriptions() {
        let r = EgressRouter::new();
        r.register_pull_client(1, 4).unwrap();
        r.subscribe(1, 9).unwrap();
        r.disconnect(1);
        assert_eq!(r.client_count(), 0);
        // delivering to the orphaned query is a no-op
        r.deliver([9usize], &t(0));
        assert!(r.fetch(1, 1).is_err());
    }

    #[test]
    fn duplicate_registration_and_wrong_mode_errors() {
        let r = EgressRouter::new();
        r.register_pull_client(1, 4).unwrap();
        assert!(r.register_pull_client(1, 4).is_err());
        assert!(r.register_push_client(1, 4).is_err());
        let _rx = r.register_push_client(2, 4).unwrap();
        assert!(r.fetch(2, 1).is_err());
        assert!(r.subscribe(99, 1).is_err());
    }

    #[test]
    fn unsubscribe_stops_delivery() {
        let r = EgressRouter::new();
        r.register_pull_client(1, 10).unwrap();
        r.subscribe(1, 5).unwrap();
        r.deliver([5usize], &t(1));
        r.unsubscribe(1, 5);
        r.deliver([5usize], &t(2));
        assert_eq!(r.fetch(1, 10).unwrap().len(), 1);
    }
}

#[cfg(test)]
mod prioritized_tests {
    use super::*;
    use tcq_common::{DataType, Field, Schema, SchemaRef, Timestamp, TupleBuilder};

    fn schema() -> SchemaRef {
        Schema::new(vec![Field::new("x", DataType::Int)]).into_ref()
    }

    fn t(x: i64) -> Tuple {
        TupleBuilder::new(schema())
            .push(x)
            .at(Timestamp::logical(x))
            .build()
            .unwrap()
    }

    #[test]
    fn prioritized_client_fetches_best_first() {
        let r = EgressRouter::new();
        r.register_prioritized_client(
            1,
            16,
            Box::new(|t: &Tuple| t.value(0).as_int().unwrap_or(0) as f64),
        )
        .unwrap();
        r.subscribe(1, 7).unwrap();
        for x in [3, 9, 1, 5] {
            r.deliver([7usize], &t(x));
        }
        let got = r.fetch(1, 2).unwrap();
        let xs: Vec<i64> = got
            .iter()
            .map(|(_, t)| t.value(0).as_int().unwrap())
            .collect();
        assert_eq!(xs, vec![9, 5], "highest priority first");
        assert!(got.iter().all(|(q, _)| *q == 7));
        // Remaining entries still buffered in priority order.
        let rest = r.fetch(1, 10).unwrap();
        let xs: Vec<i64> = rest
            .iter()
            .map(|(_, t)| t.value(0).as_int().unwrap())
            .collect();
        assert_eq!(xs, vec![3, 1]);
    }

    #[test]
    fn prioritized_overflow_drops_and_counts() {
        let r = EgressRouter::new();
        r.register_prioritized_client(
            1,
            2,
            Box::new(|t: &Tuple| t.value(0).as_int().unwrap_or(0) as f64),
        )
        .unwrap();
        r.subscribe(1, 1).unwrap();
        for x in 0..10 {
            r.deliver([1usize], &t(x));
        }
        let (_, dropped) = r.stats();
        assert_eq!(dropped, 8);
        // The BEST two survive the shedding.
        let got = r.fetch(1, 10).unwrap();
        let xs: Vec<i64> = got
            .iter()
            .map(|(_, t)| t.value(0).as_int().unwrap())
            .collect();
        assert_eq!(xs, vec![9, 8]);
    }
}
