//! Checkpoint codec: the byte-level vocabulary of durable engine state.
//!
//! Crash recovery serializes heterogeneous state — SteM groups, aggregate
//! partials, egress ledgers, ingress cursors — into opaque fragments that
//! a `CheckpointStore` (in `tcq_storage`) persists under checksummed
//! blocks. This module is the one encoding those fragments share, kept in
//! `tcq_common` so every layer (Flux, operators, the server) can speak it
//! without depending on storage.
//!
//! Encoding rules mirror the archive's tuple codec: little-endian
//! integers, tagged values, length-prefixed strings, and *every*
//! truncation is an error, never a panic — checkpoint bytes come off a
//! disk that may have torn mid-write. Floats travel as raw IEEE-754 bits,
//! so NaN payloads and signed zeros survive a round trip bit-exactly;
//! replaying a restored run must not be distinguishable from an
//! uncheckpointed one.

use crate::error::{Result, TcqError};
use crate::schema::SchemaRef;
use crate::time::Timestamp;
use crate::tuple::Tuple;
use crate::value::Value;

const TAG_NULL: u8 = 0;
const TAG_BOOL: u8 = 1;
const TAG_INT: u8 = 2;
const TAG_FLOAT: u8 = 3;
const TAG_STR: u8 = 4;

fn truncated(what: &str) -> TcqError {
    TcqError::Storage(format!("truncated checkpoint fragment: {what}"))
}

/// Append-only encoder for one checkpoint fragment.
#[derive(Debug, Default)]
pub struct CkptWriter {
    buf: Vec<u8>,
}

impl CkptWriter {
    /// A fresh, empty writer.
    pub fn new() -> Self {
        CkptWriter { buf: Vec::new() }
    }

    /// The bytes written so far.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Consume the writer, yielding the fragment bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Encoded length so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `i64`.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `f64` as its raw IEEE-754 bits (NaN-payload exact).
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Append a length-prefixed byte slice.
    pub fn put_bytes(&mut self, b: &[u8]) {
        self.put_u32(b.len() as u32);
        self.buf.extend_from_slice(b);
    }

    /// Append one tagged [`Value`].
    pub fn put_value(&mut self, v: &Value) {
        match v {
            Value::Null => self.put_u8(TAG_NULL),
            Value::Bool(b) => {
                self.put_u8(TAG_BOOL);
                self.put_u8(*b as u8);
            }
            Value::Int(i) => {
                self.put_u8(TAG_INT);
                self.put_i64(*i);
            }
            Value::Float(f) => {
                self.put_u8(TAG_FLOAT);
                self.put_f64(*f);
            }
            Value::Str(s) => {
                self.put_u8(TAG_STR);
                self.put_str(s);
            }
        }
    }

    /// Append one tuple: timestamp flags, timestamps, arity, tagged values.
    /// The schema travels out of band (the restoring site knows it).
    pub fn put_tuple(&mut self, t: &Tuple) {
        let ts = t.timestamp();
        let flags: u8 = (ts.logical.is_some() as u8) | ((ts.physical.is_some() as u8) << 1);
        self.put_u8(flags);
        if let Some(l) = ts.logical {
            self.put_i64(l);
        }
        if let Some(p) = ts.physical {
            self.put_i64(p);
        }
        self.put_u32(t.arity() as u32);
        for v in t.values() {
            self.put_value(v);
        }
    }
}

/// Bounds-checked decoder over a checkpoint fragment.
#[derive(Debug)]
pub struct CkptReader<'a> {
    buf: &'a [u8],
}

impl<'a> CkptReader<'a> {
    /// Read from `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        CkptReader { buf: bytes }
    }

    /// Bytes left to decode.
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }

    /// True when the fragment is fully consumed.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8]> {
        if self.buf.len() < n {
            return Err(truncated(what));
        }
        let (head, rest) = self.buf.split_at(n);
        self.buf = rest;
        Ok(head)
    }

    /// Read one byte.
    pub fn get_u8(&mut self, what: &str) -> Result<u8> {
        Ok(self.take(1, what)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn get_u32(&mut self, what: &str) -> Result<u32> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    /// Read a little-endian `u64`.
    pub fn get_u64(&mut self, what: &str) -> Result<u64> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Read a little-endian `i64`.
    pub fn get_i64(&mut self, what: &str) -> Result<i64> {
        let b = self.take(8, what)?;
        Ok(i64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Read an `f64` from its raw bits.
    pub fn get_f64(&mut self, what: &str) -> Result<f64> {
        Ok(f64::from_bits(self.get_u64(what)?))
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn get_str(&mut self, what: &str) -> Result<String> {
        let len = self.get_u32(what)? as usize;
        let b = self.take(len, what)?;
        std::str::from_utf8(b)
            .map(|s| s.to_string())
            .map_err(|_| TcqError::Storage(format!("invalid utf8 in checkpoint fragment: {what}")))
    }

    /// Read a length-prefixed byte slice.
    pub fn get_bytes(&mut self, what: &str) -> Result<Vec<u8>> {
        let len = self.get_u32(what)? as usize;
        Ok(self.take(len, what)?.to_vec())
    }

    /// Read one tagged [`Value`].
    pub fn get_value(&mut self) -> Result<Value> {
        Ok(match self.get_u8("value tag")? {
            TAG_NULL => Value::Null,
            TAG_BOOL => Value::Bool(self.get_u8("bool")? != 0),
            TAG_INT => Value::Int(self.get_i64("int")?),
            TAG_FLOAT => Value::Float(self.get_f64("float")?),
            TAG_STR => Value::Str(self.get_str("string")?.into()),
            tag => {
                return Err(TcqError::Storage(format!(
                    "unknown checkpoint value tag {tag}"
                )))
            }
        })
    }

    /// Read one tuple, rebuilt against `schema` (arity validated).
    pub fn get_tuple(&mut self, schema: &SchemaRef) -> Result<Tuple> {
        let flags = self.get_u8("tuple flags")?;
        let mut ts = Timestamp::unknown();
        if flags & 1 != 0 {
            ts.logical = Some(self.get_i64("logical ts")?);
        }
        if flags & 2 != 0 {
            ts.physical = Some(self.get_i64("physical ts")?);
        }
        let arity = self.get_u32("tuple arity")? as usize;
        if arity != schema.len() {
            return Err(TcqError::SchemaMismatch(format!(
                "checkpointed arity {arity} != schema arity {}",
                schema.len()
            )));
        }
        let mut values = Vec::with_capacity(arity);
        for _ in 0..arity {
            values.push(self.get_value()?);
        }
        Tuple::new(schema.clone(), values, ts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{DataType, Field, Schema};
    use crate::tuple::TupleBuilder;

    #[test]
    fn scalar_roundtrip() {
        let mut w = CkptWriter::new();
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX);
        w.put_i64(i64::MIN);
        w.put_f64(-0.0);
        w.put_str("héllo");
        w.put_bytes(&[1, 2, 3]);
        let bytes = w.into_bytes();
        let mut r = CkptReader::new(&bytes);
        assert_eq!(r.get_u8("a").unwrap(), 7);
        assert_eq!(r.get_u32("b").unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64("c").unwrap(), u64::MAX);
        assert_eq!(r.get_i64("d").unwrap(), i64::MIN);
        assert_eq!(r.get_f64("e").unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.get_str("f").unwrap(), "héllo");
        assert_eq!(r.get_bytes("g").unwrap(), vec![1, 2, 3]);
        assert!(r.is_empty());
    }

    #[test]
    fn value_roundtrip_is_bit_exact_for_nan() {
        let nan = f64::from_bits(0x7FF8_0000_0000_1234);
        let vals = [
            Value::Null,
            Value::Bool(true),
            Value::Int(-5),
            Value::Float(nan),
            Value::Str("x".into()),
        ];
        let mut w = CkptWriter::new();
        for v in &vals {
            w.put_value(v);
        }
        let bytes = w.into_bytes();
        let mut r = CkptReader::new(&bytes);
        for v in &vals {
            let back = r.get_value().unwrap();
            if let (Value::Float(a), Value::Float(b)) = (&back, v) {
                assert_eq!(a.to_bits(), b.to_bits(), "NaN payload preserved");
            } else {
                assert_eq!(&back, v);
            }
        }
    }

    #[test]
    fn tuple_roundtrip_and_truncation_errors() {
        let schema = Schema::qualified(
            "s",
            vec![
                Field::new("a", DataType::Int),
                Field::new("b", DataType::Str),
            ],
        )
        .into_ref();
        let t = TupleBuilder::new(schema.clone())
            .push(42i64)
            .push("hi")
            .at(Timestamp::both(9, 99))
            .build()
            .unwrap();
        let mut w = CkptWriter::new();
        w.put_tuple(&t);
        let bytes = w.into_bytes();
        let back = CkptReader::new(&bytes).get_tuple(&schema).unwrap();
        assert_eq!(back, t);
        assert_eq!(back.timestamp(), t.timestamp());
        for cut in 0..bytes.len() {
            assert!(
                CkptReader::new(&bytes[..cut]).get_tuple(&schema).is_err(),
                "cut at {cut} must error"
            );
        }
    }
}
