//! Columnar batches: one typed contiguous buffer per column.
//!
//! The row path moves `Vec<Tuple>` — an `Arc<[Value]>` per row — so every
//! kernel loop pays per-tuple `Value` enum dispatch and every operator
//! output allocates per row. [`ColumnBatch`] is the columnar alternative:
//! each column is one flat buffer ([`ColumnData`]) plus a validity bitmap,
//! strings live in a shared offsets+bytes arena, and per-batch metadata
//! (stream stamps, memoized join-key hashes, lineage signature) rides in
//! parallel vectors. Conversion to and from rows is lossless — including
//! NaN bit patterns, `-0.0`, NULLs, and empty strings — and carries the
//! [`Tuple::key_hash`] memo across the boundary so a join key is still
//! hashed exactly once per tuple.
//!
//! Representation is chosen from the *values*, not the schema: a FLOAT
//! column that happens to hold `Value::Int` (legal under the numeric
//! widening rule) is stored as [`ColumnData::Int`] if homogeneous, or
//! [`ColumnData::Mixed`] otherwise, so the original variant of every cell
//! survives the round trip. Kernels decide per batch whether a column's
//! representation supports the vectorized path and fall back to rows when
//! it does not (see `Kernel::eval_columns`).

use crate::bitset::BitSet;
use crate::schema::{DataType, SchemaRef};
use crate::time::Timestamp;
use crate::tuple::Tuple;
use crate::value::Value;

/// The typed storage behind one [`Column`].
#[derive(Debug, Clone)]
pub enum ColumnData {
    /// Flat `i64` buffer. NULL rows hold `0`; consult the column's bitmap.
    Int(Vec<i64>),
    /// Flat `f64` buffer, bit-exact: NaN payloads and `-0.0` survive.
    Float(Vec<f64>),
    /// Flat `bool` buffer.
    Bool(Vec<bool>),
    /// String arena: row `i` is `bytes[offsets[i] as usize..offsets[i + 1] as usize]`.
    Str {
        /// Row boundaries into `bytes`; always `rows + 1` entries.
        offsets: Vec<u32>,
        /// Concatenated UTF-8 payloads.
        bytes: Vec<u8>,
    },
    /// Fallback for heterogeneous columns: one [`Value`] per row.
    Mixed(Vec<Value>),
}

/// One column of a [`ColumnBatch`]: a typed buffer plus a validity bitmap.
#[derive(Debug, Clone)]
pub struct Column {
    data: ColumnData,
    nulls: BitSet,
    len: usize,
}

impl Column {
    /// An empty column typed for `dt`.
    pub fn new(dt: DataType) -> Column {
        Column::with_capacity(dt, 0)
    }

    /// An empty column typed for `dt` with room for `rows` appends before
    /// the buffer reallocates. Hot-path output columns (probe concats,
    /// egress batching) size themselves from their input batch so the
    /// per-row append loop stays allocation-free.
    pub fn with_capacity(dt: DataType, rows: usize) -> Column {
        let data = match dt {
            DataType::Int => ColumnData::Int(Vec::with_capacity(rows)),
            DataType::Float => ColumnData::Float(Vec::with_capacity(rows)),
            DataType::Bool => ColumnData::Bool(Vec::with_capacity(rows)),
            DataType::Str => {
                let mut offsets = Vec::with_capacity(rows + 1);
                offsets.push(0);
                ColumnData::Str {
                    offsets,
                    bytes: Vec::new(),
                }
            }
        };
        Column {
            data,
            nulls: BitSet::new(),
            len: 0,
        }
    }

    /// Reserve room for `rows` more appends in the typed buffer.
    pub fn reserve(&mut self, rows: usize) {
        match &mut self.data {
            ColumnData::Int(b) => b.reserve(rows),
            ColumnData::Float(b) => b.reserve(rows),
            ColumnData::Bool(b) => b.reserve(rows),
            ColumnData::Str { offsets, .. } => offsets.reserve(rows),
            ColumnData::Mixed(b) => b.reserve(rows),
        }
    }

    /// An empty column in the heterogeneous fallback representation.
    pub fn new_mixed() -> Column {
        Column {
            data: ColumnData::Mixed(Vec::new()),
            nulls: BitSet::new(),
            len: 0,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The typed buffer (kernels match on this to pick a vectorized loop).
    pub fn data(&self) -> &ColumnData {
        &self.data
    }

    /// The validity bitmap: set bits are NULL rows.
    pub fn nulls(&self) -> &BitSet {
        &self.nulls
    }

    /// True when the cell at `row` is NULL.
    pub fn is_null(&self, row: usize) -> bool {
        self.nulls.contains(row)
    }

    /// Materialize the cell at `row` as a [`Value`] (allocates only for
    /// string cells).
    pub fn value(&self, row: usize) -> Value {
        debug_assert!(row < self.len);
        if self.nulls.contains(row) {
            return Value::Null;
        }
        match &self.data {
            ColumnData::Int(b) => Value::Int(b[row]),
            ColumnData::Float(b) => Value::Float(b[row]),
            ColumnData::Bool(b) => Value::Bool(b[row]),
            ColumnData::Str { offsets, bytes } => {
                let s = &bytes[offsets[row] as usize..offsets[row + 1] as usize];
                Value::str(std::str::from_utf8(s).expect("column arena holds UTF-8"))
            }
            ColumnData::Mixed(b) => b[row].clone(),
        }
    }

    /// Append one value, degrading to [`ColumnData::Mixed`] when the value's
    /// variant does not match the typed buffer.
    pub fn push_value(&mut self, v: &Value) {
        match (&mut self.data, v) {
            (_, Value::Null) => {
                self.nulls.insert(self.len);
                self.push_null_slot();
            }
            (ColumnData::Int(b), Value::Int(i)) => b.push(*i),
            (ColumnData::Float(b), Value::Float(f)) => b.push(*f),
            (ColumnData::Bool(b), Value::Bool(x)) => b.push(*x),
            (ColumnData::Str { offsets, bytes }, Value::Str(s)) => {
                bytes.extend_from_slice(s.as_bytes());
                debug_assert!(bytes.len() <= u32::MAX as usize);
                offsets.push(bytes.len() as u32);
            }
            (ColumnData::Mixed(b), v) => b.push(v.clone()),
            (_, v) => {
                self.degrade_to_mixed();
                if let ColumnData::Mixed(b) = &mut self.data {
                    b.push(v.clone());
                }
            }
        }
        self.len += 1;
    }

    /// Append row `row` of `src`. When both sides share a typed
    /// representation this is a flat-buffer copy with no `Value`
    /// materialization.
    pub fn push_from(&mut self, src: &Column, row: usize) {
        debug_assert!(row < src.len);
        if src.nulls.contains(row) {
            self.nulls.insert(self.len);
            self.push_null_slot();
            self.len += 1;
            return;
        }
        match (&mut self.data, &src.data) {
            (ColumnData::Int(a), ColumnData::Int(b)) => a.push(b[row]),
            (ColumnData::Float(a), ColumnData::Float(b)) => a.push(b[row]),
            (ColumnData::Bool(a), ColumnData::Bool(b)) => a.push(b[row]),
            (
                ColumnData::Str { offsets, bytes },
                ColumnData::Str {
                    offsets: so,
                    bytes: sb,
                },
            ) => {
                bytes.extend_from_slice(&sb[so[row] as usize..so[row + 1] as usize]);
                debug_assert!(bytes.len() <= u32::MAX as usize);
                offsets.push(bytes.len() as u32);
            }
            _ => {
                self.push_value(&src.value(row));
                return;
            }
        }
        self.len += 1;
    }

    /// Placeholder slot for a NULL row (bitmap already set by the caller).
    fn push_null_slot(&mut self) {
        match &mut self.data {
            ColumnData::Int(b) => b.push(0),
            ColumnData::Float(b) => b.push(0.0),
            ColumnData::Bool(b) => b.push(false),
            ColumnData::Str { offsets, bytes } => offsets.push(bytes.len() as u32),
            ColumnData::Mixed(b) => b.push(Value::Null),
        }
    }

    /// Rebuild the typed buffer as [`ColumnData::Mixed`], preserving every
    /// cell (rare: only heterogeneous incremental pushes land here).
    fn degrade_to_mixed(&mut self) {
        let values: Vec<Value> = (0..self.len).map(|i| self.value(i)).collect();
        self.data = ColumnData::Mixed(values);
    }

    /// Keep only rows where `keep[row]` is true, compacting in place.
    pub fn retain(&mut self, keep: &[bool]) {
        debug_assert_eq!(keep.len(), self.len);
        let mut nulls = BitSet::new();
        let mut w = 0usize;
        match &mut self.data {
            ColumnData::Int(b) => {
                for (i, &k) in keep.iter().enumerate() {
                    if k {
                        b[w] = b[i];
                        if self.nulls.contains(i) {
                            nulls.insert(w);
                        }
                        w += 1;
                    }
                }
                b.truncate(w);
            }
            ColumnData::Float(b) => {
                for (i, &k) in keep.iter().enumerate() {
                    if k {
                        b[w] = b[i];
                        if self.nulls.contains(i) {
                            nulls.insert(w);
                        }
                        w += 1;
                    }
                }
                b.truncate(w);
            }
            ColumnData::Bool(b) => {
                for (i, &k) in keep.iter().enumerate() {
                    if k {
                        b[w] = b[i];
                        if self.nulls.contains(i) {
                            nulls.insert(w);
                        }
                        w += 1;
                    }
                }
                b.truncate(w);
            }
            ColumnData::Str { offsets, bytes } => {
                let mut bw = 0usize;
                for (i, &k) in keep.iter().enumerate() {
                    if k {
                        let (s, e) = (offsets[i] as usize, offsets[i + 1] as usize);
                        bytes.copy_within(s..e, bw);
                        bw += e - s;
                        offsets[w + 1] = bw as u32;
                        if self.nulls.contains(i) {
                            nulls.insert(w);
                        }
                        w += 1;
                    }
                }
                offsets.truncate(w + 1);
                bytes.truncate(bw);
            }
            ColumnData::Mixed(b) => {
                for (i, &k) in keep.iter().enumerate() {
                    if k {
                        b.swap(w, i);
                        if self.nulls.contains(i) {
                            nulls.insert(w);
                        }
                        w += 1;
                    }
                }
                b.truncate(w);
            }
        }
        self.nulls = nulls;
        self.len = w;
    }
}

/// A batch of rows in columnar layout, with per-batch metadata: one
/// [`Column`] per schema field, a stream [`Timestamp`] per row, the
/// memoized join-key hash column (when one was designated), and the
/// lineage signature the eddy routes the batch under.
#[derive(Debug, Clone)]
pub struct ColumnBatch {
    schema: SchemaRef,
    columns: Vec<Column>,
    stamps: Vec<Timestamp>,
    /// `(key column index, one FNV-1a hash per row)`.
    key_hashes: Option<(u32, Vec<u64>)>,
    sig: u64,
}

impl ColumnBatch {
    /// An empty batch whose columns are typed from the schema.
    pub fn empty(schema: SchemaRef) -> ColumnBatch {
        ColumnBatch::with_capacity(schema, 0)
    }

    /// An empty batch whose columns are typed from the schema, with room
    /// for `rows` appends per column before any buffer reallocates.
    pub fn with_capacity(schema: SchemaRef, rows: usize) -> ColumnBatch {
        let columns = schema
            .fields()
            .iter()
            .map(|f| Column::with_capacity(f.data_type, rows))
            .collect();
        ColumnBatch {
            schema,
            columns,
            stamps: Vec::with_capacity(rows),
            key_hashes: None,
            sig: 0,
        }
    }

    /// Convert rows to columns. Representation per column is chosen by
    /// scanning the actual values (homogeneous non-NULL variant → typed
    /// buffer, otherwise [`ColumnData::Mixed`]); an all-NULL or empty
    /// column falls back to the schema type.
    ///
    /// When `key_col` is given, the batch's hash column is filled via
    /// [`Tuple::key_hash`] — memoizing the hash *on the source rows as a
    /// side effect*, so a later SteM build of those same rows is a memo
    /// hit and each key is hashed exactly once per tuple.
    pub fn from_tuples(schema: SchemaRef, tuples: &[Tuple], key_col: Option<usize>) -> ColumnBatch {
        let mut columns = Vec::with_capacity(schema.len());
        for c in 0..schema.len() {
            let mut dt: Option<DataType> = None;
            let mut mixed = false;
            for t in tuples {
                if let Some(d) = t.value(c).data_type() {
                    match dt {
                        None => dt = Some(d),
                        Some(prev) if prev != d => {
                            mixed = true;
                            break;
                        }
                        Some(_) => {}
                    }
                }
            }
            let mut col = if mixed {
                let mut c = Column::new_mixed();
                c.reserve(tuples.len());
                c
            } else {
                Column::with_capacity(dt.unwrap_or(schema.field(c).data_type), tuples.len())
            };
            for t in tuples {
                col.push_value(t.value(c));
            }
            columns.push(col);
        }
        let stamps = tuples.iter().map(|t| t.timestamp()).collect();
        let key_hashes = key_col.map(|c| {
            (
                c as u32,
                tuples.iter().map(|t| t.key_hash(c)).collect::<Vec<u64>>(),
            )
        });
        ColumnBatch {
            schema,
            columns,
            stamps,
            key_hashes,
            sig: 0,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.stamps.len()
    }

    /// True when the batch has no rows.
    pub fn is_empty(&self) -> bool {
        self.stamps.is_empty()
    }

    /// The batch schema.
    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    /// The column at index `idx`.
    pub fn column(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    /// All columns in schema order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// The stream timestamp of `row`.
    pub fn stamp(&self, row: usize) -> Timestamp {
        self.stamps[row]
    }

    /// All row timestamps.
    pub fn stamps(&self) -> &[Timestamp] {
        &self.stamps
    }

    /// The memoized join-key hash column, if one was designated at
    /// conversion: `(key column index, one hash per row)`.
    pub fn key_hashes(&self) -> Option<(usize, &[u64])> {
        self.key_hashes
            .as_ref()
            .map(|(c, h)| (*c as usize, h.as_slice()))
    }

    /// The lineage signature (the eddy's `SourceSet` word) this batch
    /// routes under; `0` until [`ColumnBatch::set_sig`] assigns one.
    pub fn sig(&self) -> u64 {
        self.sig
    }

    /// Assign the lineage signature.
    pub fn set_sig(&mut self, sig: u64) {
        self.sig = sig;
    }

    /// Materialize row `row` as a [`Tuple`], seeding its key-hash memo
    /// from the batch's hash column when present.
    pub fn tuple_at(&self, row: usize) -> Tuple {
        let mut values = Vec::with_capacity(self.columns.len());
        for col in &self.columns {
            values.push(col.value(row));
        }
        let t = Tuple::new_unchecked(self.schema.clone(), values, self.stamps[row]);
        if let Some((c, hashes)) = &self.key_hashes {
            t.prime_key_hash(*c as usize, hashes[row]);
        }
        t
    }

    /// Materialize every row (the lossless inverse of
    /// [`ColumnBatch::from_tuples`]); key-hash memos carry over.
    pub fn to_tuples(&self) -> Vec<Tuple> {
        (0..self.len()).map(|row| self.tuple_at(row)).collect()
    }

    /// Keep only rows where `keep[row]` is true, compacting every column,
    /// the stamps, and the hash column in place.
    pub fn retain(&mut self, keep: &[bool]) {
        debug_assert_eq!(keep.len(), self.len());
        for col in &mut self.columns {
            col.retain(keep);
        }
        retain_vec(&mut self.stamps, keep);
        if let Some((_, hashes)) = &mut self.key_hashes {
            retain_vec(hashes, keep);
        }
    }

    /// Project columns by index onto a pre-computed projected schema:
    /// whole-column clones, no per-row work. The hash column is dropped
    /// (indexes shift), mirroring [`Tuple::project`]'s memo behaviour.
    pub fn project(&self, indices: &[usize], out_schema: SchemaRef) -> ColumnBatch {
        debug_assert_eq!(indices.len(), out_schema.len());
        ColumnBatch {
            schema: out_schema,
            columns: indices.iter().map(|&i| self.columns[i].clone()).collect(),
            stamps: self.stamps.clone(),
            key_hashes: None,
            sig: self.sig,
        }
    }

    /// Append one join output row: row `row` of `left` concatenated with
    /// the values of `right`. The stamp is the partial-order max of the
    /// parents, exactly like [`Tuple::concat`]. `self`'s schema must be
    /// the concatenation of `left`'s schema and `right`'s.
    pub fn push_joined(&mut self, left: &ColumnBatch, row: usize, right: &Tuple) {
        debug_assert_eq!(self.columns.len(), left.columns.len() + right.arity());
        for (dst, src) in self.columns.iter_mut().zip(left.columns.iter()) {
            dst.push_from(src, row);
        }
        for (dst, v) in self.columns[left.columns.len()..]
            .iter_mut()
            .zip(right.values().iter())
        {
            dst.push_value(v);
        }
        self.stamps
            .push(left.stamps[row].join_max(&right.timestamp()));
    }

    /// Append one row copied from `src` (same schema arity assumed).
    pub fn push_row_from(&mut self, src: &ColumnBatch, row: usize) {
        debug_assert_eq!(self.columns.len(), src.columns.len());
        for (dst, s) in self.columns.iter_mut().zip(src.columns.iter()) {
            dst.push_from(s, row);
        }
        self.stamps.push(src.stamps[row]);
        if let (Some((c, hashes)), Some((sc, shashes))) = (&mut self.key_hashes, &src.key_hashes) {
            if c == sc {
                hashes.push(shashes[row]);
            }
        }
    }
}

/// In-place `retain` over a parallel metadata vector.
fn retain_vec<T: Copy>(v: &mut Vec<T>, keep: &[bool]) {
    debug_assert_eq!(keep.len(), v.len());
    let mut w = 0usize;
    for (i, &k) in keep.iter().enumerate() {
        if k {
            v[w] = v[i];
            w += 1;
        }
    }
    v.truncate(w);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{derive_seed, seeded, TcqRng};
    use crate::schema::{Field, Schema};

    /// Exact (bit-level) value identity — stricter than `Value`'s
    /// `PartialEq`, which treats `Int(7) == Float(7.0)`: a lossless round
    /// trip must preserve the variant and, for floats, the bit pattern.
    fn identical(a: &Value, b: &Value) -> bool {
        match (a, b) {
            (Value::Null, Value::Null) => true,
            (Value::Bool(x), Value::Bool(y)) => x == y,
            (Value::Int(x), Value::Int(y)) => x == y,
            (Value::Float(x), Value::Float(y)) => x.to_bits() == y.to_bits(),
            (Value::Str(x), Value::Str(y)) => x == y,
            _ => false,
        }
    }

    fn gen_value(rng: &mut TcqRng) -> Value {
        match rng.gen_range(0usize..10) {
            0 => Value::Null,
            1 => Value::Bool(rng.gen()),
            2 => Value::Int(rng.gen_range(-100i64..100)),
            3 => Value::Int(rng.gen()),
            4 => Value::Float(rng.gen_range(-100.0..100.0)),
            5 => Value::Float(match rng.gen_range(0usize..4) {
                0 => f64::NAN,
                1 => -f64::NAN,
                2 => f64::from_bits(f64::NAN.to_bits() | (rng.gen::<u64>() & 0xFFFF)),
                _ => -0.0,
            }),
            6 => Value::str(""),
            7 => Value::str("a"),
            8 => Value::str("stream-tuple-with-a-longer-payload"),
            _ => Value::Int(rng.gen_range(0i64..8)),
        }
    }

    fn gen_schema(rng: &mut TcqRng) -> SchemaRef {
        let types = [
            DataType::Int,
            DataType::Float,
            DataType::Bool,
            DataType::Str,
        ];
        let n = rng.gen_range(1usize..6);
        let fields = (0..n)
            .map(|i| Field::new(format!("c{i}"), types[rng.gen_range(0usize..4)]))
            .collect();
        Schema::qualified("s", fields).into_ref()
    }

    /// Seeded roundtrip property: arbitrary values (NaN payloads, nulls,
    /// empty strings, variant/schema mismatches) survive
    /// rows → columns → rows bit-identically, with timestamps intact.
    #[test]
    fn roundtrip_is_lossless_on_random_batches() {
        let mut rng = seeded(derive_seed(0xC01_BA7C4, 0));
        for case in 0..200 {
            let schema = gen_schema(&mut rng);
            let n = rng.gen_range(0usize..40);
            let tuples: Vec<Tuple> = (0..n)
                .map(|i| {
                    let values = (0..schema.len()).map(|_| gen_value(&mut rng)).collect();
                    Tuple::new_unchecked(schema.clone(), values, Timestamp::logical(i as i64))
                })
                .collect();
            let batch = ColumnBatch::from_tuples(schema.clone(), &tuples, None);
            assert_eq!(batch.len(), n, "case {case}");
            let back = batch.to_tuples();
            assert_eq!(back.len(), tuples.len());
            for (orig, got) in tuples.iter().zip(back.iter()) {
                assert_eq!(orig.timestamp(), got.timestamp(), "case {case}");
                for (a, b) in orig.values().iter().zip(got.values().iter()) {
                    assert!(identical(a, b), "case {case}: {a:?} != {b:?}");
                }
            }
        }
    }

    #[test]
    fn empty_batch_roundtrips() {
        let schema = Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::new("b", DataType::Str),
        ])
        .into_ref();
        let batch = ColumnBatch::from_tuples(schema.clone(), &[], Some(0));
        assert!(batch.is_empty());
        assert_eq!(batch.to_tuples(), Vec::<Tuple>::new());
        let empty = ColumnBatch::empty(schema);
        assert!(empty.is_empty() && empty.to_tuples().is_empty());
    }

    #[test]
    fn key_hashes_memoize_source_rows_and_carry_back() {
        let schema = Schema::new(vec![
            Field::new("k", DataType::Int),
            Field::new("v", DataType::Str),
        ])
        .into_ref();
        let tuples: Vec<Tuple> = (0..8)
            .map(|i| {
                Tuple::new_unchecked(
                    schema.clone(),
                    vec![Value::Int(i % 3), Value::str("x")],
                    Timestamp::logical(i),
                )
            })
            .collect();
        assert!(tuples.iter().all(|t| t.cached_key_hash(0).is_none()));
        let batch = ColumnBatch::from_tuples(schema, &tuples, Some(0));
        // Side effect: the source rows now carry the memo (a later SteM
        // build of these same rows will not hash again).
        for t in &tuples {
            assert_eq!(
                t.cached_key_hash(0),
                Some(crate::hash::hash_value(t.value(0)))
            );
        }
        // And materialized rows get the memo seeded without recomputing.
        let (col, hashes) = batch.key_hashes().unwrap();
        assert_eq!(col, 0);
        for (row, t) in batch.to_tuples().iter().enumerate() {
            assert_eq!(t.cached_key_hash(0), Some(hashes[row]));
        }
    }

    #[test]
    fn retain_compacts_all_reprs_and_metadata() {
        let schema = Schema::new(vec![
            Field::new("i", DataType::Int),
            Field::new("s", DataType::Str),
            Field::new("f", DataType::Float),
        ])
        .into_ref();
        let vals = [
            (Value::Int(1), Value::str("aa"), Value::Null),
            (Value::Null, Value::str(""), Value::Float(2.5)),
            (Value::Int(3), Value::Null, Value::Float(f64::NAN)),
            (Value::Int(4), Value::str("dddd"), Value::Null),
        ];
        let tuples: Vec<Tuple> = vals
            .iter()
            .enumerate()
            .map(|(i, (a, b, c))| {
                Tuple::new_unchecked(
                    schema.clone(),
                    vec![a.clone(), b.clone(), c.clone()],
                    Timestamp::logical(i as i64),
                )
            })
            .collect();
        let mut batch = ColumnBatch::from_tuples(schema, &tuples, Some(0));
        batch.retain(&[false, true, false, true]);
        assert_eq!(batch.len(), 2);
        let back = batch.to_tuples();
        assert_eq!(back[0], tuples[1]);
        assert_eq!(back[1], tuples[3]);
        assert_eq!(back[0].timestamp().seq(), 1);
        assert_eq!(back[1].timestamp().seq(), 3);
        assert_eq!(
            back[1].cached_key_hash(0),
            Some(crate::hash::hash_value(&Value::Int(4)))
        );
    }

    #[test]
    fn project_matches_row_projection() {
        let schema = Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::new("b", DataType::Str),
            Field::new("c", DataType::Float),
        ])
        .into_ref();
        let tuples: Vec<Tuple> = (0..5)
            .map(|i| {
                Tuple::new_unchecked(
                    schema.clone(),
                    vec![
                        Value::Int(i),
                        Value::str(format!("s{i}")),
                        Value::Float(i as f64 / 2.0),
                    ],
                    Timestamp::logical(i),
                )
            })
            .collect();
        let indices = [2usize, 0];
        let out_schema = schema.project(&indices).into_ref();
        let batch = ColumnBatch::from_tuples(schema, &tuples, None);
        let projected = batch.project(&indices, out_schema.clone());
        for (row, t) in tuples.iter().enumerate() {
            let expect = t.project(&indices, out_schema.clone());
            assert_eq!(projected.tuple_at(row), expect);
            assert_eq!(projected.stamp(row), t.timestamp());
        }
    }

    #[test]
    fn push_joined_matches_tuple_concat() {
        let left_schema = Schema::qualified(
            "l",
            vec![
                Field::new("k", DataType::Int),
                Field::new("x", DataType::Str),
            ],
        )
        .into_ref();
        let right_schema = Schema::qualified(
            "r",
            vec![
                Field::new("k", DataType::Int),
                Field::new("y", DataType::Float),
            ],
        )
        .into_ref();
        let joined = left_schema.concat(&right_schema).into_ref();
        let lefts: Vec<Tuple> = (0..4)
            .map(|i| {
                Tuple::new_unchecked(
                    left_schema.clone(),
                    vec![Value::Int(i), Value::str(format!("L{i}"))],
                    Timestamp::logical(i),
                )
            })
            .collect();
        let right = Tuple::new_unchecked(
            right_schema,
            vec![Value::Int(2), Value::Float(9.5)],
            Timestamp::logical(10),
        );
        let left_batch = ColumnBatch::from_tuples(left_schema, &lefts, Some(0));
        let mut out = ColumnBatch::empty(joined.clone());
        out.push_joined(&left_batch, 1, &right);
        out.push_joined(&left_batch, 3, &right);
        assert_eq!(out.tuple_at(0), lefts[1].concat(&right, joined.clone()));
        assert_eq!(out.tuple_at(1), lefts[3].concat(&right, joined.clone()));
        assert_eq!(out.stamp(0).seq(), 10);
    }

    #[test]
    fn heterogeneous_push_degrades_to_mixed_losslessly() {
        let mut col = Column::new(DataType::Int);
        col.push_value(&Value::Int(1));
        col.push_value(&Value::Null);
        col.push_value(&Value::str("surprise"));
        col.push_value(&Value::Float(-0.0));
        assert!(matches!(col.data(), ColumnData::Mixed(_)));
        assert!(identical(&col.value(0), &Value::Int(1)));
        assert!(identical(&col.value(1), &Value::Null));
        assert!(identical(&col.value(2), &Value::str("surprise")));
        assert!(identical(&col.value(3), &Value::Float(-0.0)));
    }

    #[test]
    fn float_schema_holding_ints_stays_lossless() {
        // Numeric widening lets a FLOAT column hold Value::Int; the round
        // trip must return Value::Int, not Value::Float.
        let schema = Schema::new(vec![Field::new("f", DataType::Float)]).into_ref();
        let tuples: Vec<Tuple> = (0..3)
            .map(|i| {
                Tuple::new_unchecked(schema.clone(), vec![Value::Int(i)], Timestamp::logical(i))
            })
            .collect();
        let batch = ColumnBatch::from_tuples(schema, &tuples, None);
        assert!(matches!(batch.column(0).data(), ColumnData::Int(_)));
        for (i, t) in batch.to_tuples().iter().enumerate() {
            assert!(identical(t.value(0), &Value::Int(i as i64)));
        }
    }
}
