//! Tuples: immutable, cheaply clonable rows.
//!
//! A [`Tuple`] pairs a shared value vector with its [`SchemaRef`] and a
//! [`Timestamp`]. Cloning a tuple is two `Arc` bumps — essential because
//! eddies route the *same* tuple through many modules and CACQ shares one
//! tuple across many queries.

use std::fmt;
use std::sync::{Arc, OnceLock};

use crate::error::{Result, TcqError};
use crate::hash::hash_value;
use crate::schema::SchemaRef;
use crate::time::Timestamp;
use crate::value::Value;

/// A memoized join-key hash: the FNV-1a hash of the value at column
/// `col`, computed once and carried with the tuple so partition routing,
/// SteM build, and SteM probe all reuse one computation.
#[derive(Debug, Clone, Copy)]
struct KeyHashMemo {
    col: u32,
    hash: u64,
}

/// An immutable row flowing through the dataflow.
#[derive(Clone)]
pub struct Tuple {
    values: Arc<[Value]>,
    schema: SchemaRef,
    ts: Timestamp,
    /// Lazily-filled join-key hash memo. Carried by [`Tuple::clone`],
    /// [`Tuple::with_timestamp`], and [`Tuple::with_schema`] (column
    /// indexes are unchanged there); dropped by [`Tuple::concat`] and
    /// [`Tuple::project`] (indexes shift). Excluded from `PartialEq`.
    key_hash: OnceLock<KeyHashMemo>,
}

impl Tuple {
    /// Build a tuple, checking arity against the schema.
    pub fn new(schema: SchemaRef, values: Vec<Value>, ts: Timestamp) -> Result<Self> {
        if values.len() != schema.len() {
            return Err(TcqError::SchemaMismatch(format!(
                "tuple has {} values but schema {} has {} columns",
                values.len(),
                schema,
                schema.len()
            )));
        }
        Ok(Tuple {
            values: values.into(),
            schema,
            ts,
            key_hash: OnceLock::new(),
        })
    }

    /// Build without the arity check (hot path; used by operators that have
    /// already validated shapes at plan time).
    pub fn new_unchecked(schema: SchemaRef, values: Vec<Value>, ts: Timestamp) -> Self {
        debug_assert_eq!(values.len(), schema.len());
        Tuple {
            values: values.into(),
            schema,
            ts,
            key_hash: OnceLock::new(),
        }
    }

    /// The values in column order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// The value at column `idx`.
    pub fn value(&self, idx: usize) -> &Value {
        &self.values[idx]
    }

    /// The tuple's schema.
    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    /// The tuple's timestamp.
    pub fn timestamp(&self) -> Timestamp {
        self.ts
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// Replace the timestamp (used by ingress when stamping arrival order).
    pub fn with_timestamp(&self, ts: Timestamp) -> Tuple {
        Tuple {
            values: Arc::clone(&self.values),
            schema: Arc::clone(&self.schema),
            ts,
            key_hash: self.key_hash.clone(),
        }
    }

    /// The memoized key hash for column `col`, if one was computed — no
    /// hashing happens here (SteM counters use this to bill only real
    /// computations).
    pub fn cached_key_hash(&self, col: usize) -> Option<u64> {
        self.key_hash
            .get()
            .filter(|m| m.col as usize == col)
            .map(|m| m.hash)
    }

    /// The FNV-1a hash of the value at column `col`, memoized: the first
    /// call computes and caches, later calls for the same column return
    /// the cached word. A call for a *different* column recomputes
    /// without touching the memo (one memo slot covers the one join key
    /// a tuple is routed on).
    pub fn key_hash(&self, col: usize) -> u64 {
        if let Some(h) = self.cached_key_hash(col) {
            return h;
        }
        let hash = hash_value(&self.values[col]);
        let _ = self.key_hash.set(KeyHashMemo {
            col: col as u32,
            hash,
        });
        hash
    }

    /// Seed the key-hash memo with an externally computed hash of the
    /// value at column `col`. Used when rows are materialized out of a
    /// columnar batch whose hash column was filled (via
    /// [`Tuple::key_hash`]) on the way in — carrying the word back means
    /// the row→columnar→row boundary never hashes a key twice. No-op if a
    /// memo is already present.
    pub fn prime_key_hash(&self, col: usize, hash: u64) {
        debug_assert_eq!(hash, hash_value(&self.values[col]));
        let _ = self.key_hash.set(KeyHashMemo {
            col: col as u32,
            hash,
        });
    }

    /// Re-schema the tuple (used when a stream tuple enters a query under
    /// an alias — e.g. the paper's self-join delivers each physical tuple
    /// once as `c1` and once as `c2`). Values are shared, not copied.
    /// Errors if the arity differs.
    pub fn with_schema(&self, schema: SchemaRef) -> Result<Tuple> {
        if schema.len() != self.values.len() {
            return Err(TcqError::SchemaMismatch(format!(
                "cannot re-schema arity {} tuple to {} ({schema})",
                self.values.len(),
                schema.len()
            )));
        }
        Ok(Tuple {
            values: Arc::clone(&self.values),
            schema,
            ts: self.ts,
            key_hash: self.key_hash.clone(),
        })
    }

    /// Concatenate two tuples into a join output. The result's timestamp is
    /// the partial-order max of the parents (a join result "happens" when
    /// its later input arrives).
    pub fn concat(&self, other: &Tuple, joined_schema: SchemaRef) -> Tuple {
        let mut values = Vec::with_capacity(self.values.len() + other.values.len());
        values.extend_from_slice(&self.values);
        values.extend_from_slice(&other.values);
        debug_assert_eq!(values.len(), joined_schema.len());
        Tuple {
            values: values.into(),
            schema: joined_schema,
            ts: self.ts.join_max(&other.ts),
            key_hash: OnceLock::new(),
        }
    }

    /// Project columns by index onto a pre-computed projected schema.
    pub fn project(&self, indices: &[usize], projected_schema: SchemaRef) -> Tuple {
        let values: Vec<Value> = indices.iter().map(|&i| self.values[i].clone()).collect();
        debug_assert_eq!(values.len(), projected_schema.len());
        Tuple {
            values: values.into(),
            schema: projected_schema,
            ts: self.ts,
            key_hash: OnceLock::new(),
        }
    }

    /// Look a value up by (optionally qualified) column name.
    pub fn get(&self, qualifier: Option<&str>, name: &str) -> Result<&Value> {
        let idx = self.schema.index_of(qualifier, name)?;
        Ok(&self.values[idx])
    }
}

impl PartialEq for Tuple {
    /// Value equality; timestamps and schema identity are ignored so tests
    /// can compare results from different plans.
    fn eq(&self, other: &Self) -> bool {
        self.values == other.values
    }
}
impl Eq for Tuple {}

impl fmt::Debug for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} |", self.ts)?;
        for v in self.values.iter() {
            write!(f, " {v}")?;
        }
        write!(f, "]")
    }
}

/// Builder for constructing tuples against a fixed schema, used by ingress
/// wrappers and tests.
#[derive(Clone)]
pub struct TupleBuilder {
    schema: SchemaRef,
    values: Vec<Value>,
    ts: Timestamp,
}

impl TupleBuilder {
    /// Start building a tuple for `schema`.
    pub fn new(schema: SchemaRef) -> Self {
        let cap = schema.len();
        TupleBuilder {
            schema,
            values: Vec::with_capacity(cap),
            ts: Timestamp::unknown(),
        }
    }

    /// Append the next column value.
    pub fn push(mut self, v: impl Into<Value>) -> Self {
        self.values.push(v.into());
        self
    }

    /// Set the timestamp.
    pub fn at(mut self, ts: Timestamp) -> Self {
        self.ts = ts;
        self
    }

    /// Finish, validating arity and column types.
    pub fn build(self) -> Result<Tuple> {
        if self.values.len() != self.schema.len() {
            return Err(TcqError::SchemaMismatch(format!(
                "builder has {} of {} values",
                self.values.len(),
                self.schema.len()
            )));
        }
        for (i, v) in self.values.iter().enumerate() {
            if let Some(dt) = v.data_type() {
                let expected = self.schema.field(i).data_type;
                if !expected.accepts(dt) {
                    return Err(TcqError::SchemaMismatch(format!(
                        "column {} ({}) expects {expected}, got {dt}",
                        i,
                        self.schema.field(i).name
                    )));
                }
            }
        }
        Tuple::new(self.schema, self.values, self.ts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{DataType, Field, Schema};

    fn stock_schema() -> SchemaRef {
        Schema::qualified(
            "s",
            vec![
                Field::new("timestamp", DataType::Int),
                Field::new("stockSymbol", DataType::Str),
                Field::new("closingPrice", DataType::Float),
            ],
        )
        .into_ref()
    }

    fn tick(ts: i64, sym: &str, price: f64) -> Tuple {
        TupleBuilder::new(stock_schema())
            .push(ts)
            .push(sym)
            .push(price)
            .at(Timestamp::logical(ts))
            .build()
            .unwrap()
    }

    #[test]
    fn builder_validates_arity() {
        let t = TupleBuilder::new(stock_schema()).push(1i64).build();
        assert!(t.is_err());
    }

    #[test]
    fn builder_validates_types() {
        let t = TupleBuilder::new(stock_schema())
            .push("oops")
            .push("MSFT")
            .push(10.0)
            .build();
        assert!(t.is_err());
    }

    #[test]
    fn builder_accepts_int_where_float_expected() {
        let t = TupleBuilder::new(stock_schema())
            .push(1i64)
            .push("MSFT")
            .push(50i64)
            .build();
        assert!(t.is_ok());
    }

    #[test]
    fn get_by_name() {
        let t = tick(3, "MSFT", 51.5);
        assert_eq!(t.get(None, "closingPrice").unwrap(), &Value::Float(51.5));
        assert_eq!(
            t.get(Some("s"), "stockSymbol").unwrap(),
            &Value::str("MSFT")
        );
        assert!(t.get(None, "nope").is_err());
    }

    #[test]
    fn concat_takes_max_timestamp() {
        let a = tick(3, "MSFT", 51.5);
        let b = tick(7, "IBM", 80.0);
        let joined_schema = a.schema().concat(b.schema()).into_ref();
        let j = a.concat(&b, joined_schema);
        assert_eq!(j.arity(), 6);
        assert_eq!(j.timestamp().seq(), 7);
    }

    #[test]
    fn project_preserves_timestamp() {
        let t = tick(9, "MSFT", 1.0);
        let proj_schema = t.schema().project(&[2]).into_ref();
        let p = t.project(&[2], proj_schema);
        assert_eq!(p.arity(), 1);
        assert_eq!(p.timestamp().seq(), 9);
        assert_eq!(p.value(0), &Value::Float(1.0));
    }

    #[test]
    fn equality_ignores_timestamp() {
        let a = tick(1, "MSFT", 2.0);
        let b = a.with_timestamp(Timestamp::logical(99));
        assert_eq!(a, b);
    }

    #[test]
    fn clone_is_shallow() {
        let a = tick(1, "MSFT", 2.0);
        let b = a.clone();
        assert!(std::ptr::eq(a.values.as_ptr(), b.values.as_ptr()));
    }

    #[test]
    fn key_hash_memoizes_and_survives_reschema() {
        let t = tick(1, "MSFT", 2.0);
        assert_eq!(t.cached_key_hash(1), None, "no hash before first use");
        let h = t.key_hash(1);
        assert_eq!(h, crate::hash::hash_value(&Value::str("MSFT")));
        assert_eq!(t.cached_key_hash(1), Some(h));
        // The memo rides along clone, with_timestamp, and with_schema —
        // the exact path PartitionDu → WorkerDu → StemOp takes.
        assert_eq!(t.clone().cached_key_hash(1), Some(h));
        assert_eq!(
            t.with_timestamp(Timestamp::logical(9)).cached_key_hash(1),
            Some(h)
        );
        let alias = stock_schema().with_qualifier("c1").into_ref();
        assert_eq!(t.with_schema(alias).unwrap().cached_key_hash(1), Some(h));
        // A different column bypasses (and does not clobber) the memo.
        assert_eq!(t.cached_key_hash(0), None);
        assert_eq!(t.key_hash(0), crate::hash::hash_value(&Value::Int(1)));
        assert_eq!(t.cached_key_hash(1), Some(h));
    }

    #[test]
    fn key_hash_memo_dropped_by_index_shifting_ops() {
        let a = tick(1, "MSFT", 2.0);
        let b = tick(2, "IBM", 3.0);
        a.key_hash(1);
        let joined_schema = a.schema().concat(b.schema()).into_ref();
        assert_eq!(a.concat(&b, joined_schema).cached_key_hash(1), None);
        let proj_schema = a.schema().project(&[1]).into_ref();
        assert_eq!(a.project(&[1], proj_schema).cached_key_hash(1), None);
    }
}
