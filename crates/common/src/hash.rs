//! In-tree hashing for the prehashed probe path.
//!
//! The SteM hash index and the exchange partitioner both key on a join
//! attribute's [`Value`]. Before this module each site ran its own SipHash
//! over the value (`HashMap<Value, _>` in the SteM, `DefaultHasher` in the
//! partitioner), so a tuple flowing through a partitioned join was hashed
//! up to three times. [`hash_value`] is a single deterministic FNV-1a pass
//! over the value's canonical key bytes (the same bytes
//! [`Value::hash_key`] feeds any hasher, so Hash/Eq coherence carries
//! over); the result is computed once per tuple, memoized on the
//! [`crate::Tuple`] itself, and reused by partition routing, SteM build,
//! and SteM probe.
//!
//! [`IdentityBuildHasher`] lets a `HashMap` keyed by such a precomputed
//! `u64` skip re-hashing the hash: FNV-1a output is already
//! well-mixed, so feeding it through SipHash again would be pure waste.

use std::hash::{BuildHasher, Hasher};

use crate::value::Value;

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// A 64-bit FNV-1a [`Hasher`]. Deterministic across runs, machines, and
/// std versions — unlike `DefaultHasher`, whose algorithm std does not
/// pin — so seeded replay artifacts (partition assignments, bench JSON)
/// can never shift under a toolchain upgrade.
#[derive(Debug, Clone)]
pub struct Fnv1a(u64);

impl Fnv1a {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fnv1a(FNV_OFFSET)
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a::new()
    }
}

impl Hasher for Fnv1a {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    // Pin integer writes to little-endian byte order (the default impls
    // use native order, which would fork the hash on big-endian targets).
    fn write_u64(&mut self, n: u64) {
        self.write(&n.to_le_bytes());
    }

    fn write_u8(&mut self, n: u8) {
        self.write(&[n]);
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// The canonical 64-bit hash of a value's key bytes: one FNV-1a pass over
/// exactly what [`Value::hash_key`] emits. Equal values (under `Value`'s
/// `Eq`, including `Int(1) == Float(1.0)`, `-0.0 == 0.0`, and NaN == NaN)
/// produce equal hashes.
pub fn hash_value(v: &Value) -> u64 {
    let mut h = Fnv1a::new();
    v.hash_key(&mut h);
    h.finish()
}

/// A pass-through [`Hasher`] for maps keyed by an already-computed `u64`
/// hash. Only `write_u64` is meaningful; anything else is a logic error.
#[derive(Debug, Clone, Default)]
pub struct IdentityHasher(u64);

impl Hasher for IdentityHasher {
    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("IdentityHasher only hashes u64 keys");
    }

    fn write_u64(&mut self, n: u64) {
        self.0 = n;
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// [`BuildHasher`] producing [`IdentityHasher`]s, for
/// `HashMap<u64, _, IdentityBuildHasher>` keyed by precomputed hashes.
#[derive(Debug, Clone, Default)]
pub struct IdentityBuildHasher;

impl BuildHasher for IdentityBuildHasher {
    type Hasher = IdentityHasher;

    fn build_hasher(&self) -> IdentityHasher {
        IdentityHasher::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a test vectors.
        let mut h = Fnv1a::new();
        h.write(b"");
        assert_eq!(h.finish(), 0xCBF2_9CE4_8422_2325);
        let mut h = Fnv1a::new();
        h.write(b"a");
        assert_eq!(h.finish(), 0xAF63_DC4C_8601_EC8C);
        let mut h = Fnv1a::new();
        h.write(b"foobar");
        assert_eq!(h.finish(), 0x8594_4171_F739_67E8);
    }

    #[test]
    fn equal_values_hash_equal() {
        assert_eq!(hash_value(&Value::Int(7)), hash_value(&Value::Float(7.0)));
        assert_eq!(
            hash_value(&Value::Float(-0.0)),
            hash_value(&Value::Float(0.0))
        );
        assert_eq!(
            hash_value(&Value::Float(f64::NAN)),
            hash_value(&Value::Float(-f64::NAN))
        );
        assert_ne!(hash_value(&Value::Int(1)), hash_value(&Value::Int(2)));
    }

    #[test]
    fn identity_build_hasher_passes_u64_through() {
        use std::collections::HashMap;
        let mut m: HashMap<u64, i32, IdentityBuildHasher> = HashMap::default();
        m.insert(42, 1);
        m.insert(u64::MAX, 2);
        assert_eq!(m.get(&42), Some(&1));
        assert_eq!(m.get(&u64::MAX), Some(&2));
    }
}
