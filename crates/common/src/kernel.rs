//! Compiled predicate kernels: the hot-path replacement for walking a
//! [`BoundExpr`] tree per tuple.
//!
//! A [`Kernel`] lowers a boolean expression into a flat sequence of
//! column-index-resolved ops evaluated by a small loop — no recursion, no
//! per-tuple allocation, no `Result` plumbing for the infallible ops
//! (logic merges, jumps, loads). Compilation happens once, at
//! query-registration time; the per-tuple cost drops to an array walk.
//!
//! # Lowering rules
//!
//! The compilable grammar is the predicate shape CQ WHERE clauses
//! overwhelmingly take:
//!
//! ```text
//! P := Cmp(S, S) | And(P, P) | Or(P, P) | Not(P) | TRUE | FALSE | NULL
//! S := Column | Literal
//! ```
//!
//! Comparisons are specialized by operand shape (`CmpColLit`,
//! `CmpLitCol`, `CmpColCol`, `CmpLitLit`) with the *textual operand order
//! preserved*, so a type error carries the identical message the
//! interpreter would produce. `And`/`Or` compile to the interpreter's
//! exact short-circuit: evaluate the left side, jump past the right side
//! when the left side alone decides the result (`FALSE` for AND, `TRUE`
//! for OR), otherwise stash the left result, evaluate the right side, and
//! merge under Kleene three-valued logic. Anything outside the grammar —
//! arithmetic inside a comparison, a bare column or non-boolean literal
//! in predicate position, nesting past the fixed stack — is *not*
//! compiled; [`Predicate::new`] falls back to the [`BoundExpr`]
//! interpreter. Fallback is the documented policy, not a failure: the
//! kernel only ever claims shapes it can reproduce bit-identically.
//!
//! # Determinism argument
//!
//! A compiled subterm evaluates only to three-valued booleans (a
//! comparison yields `TRUE`/`FALSE`/`NULL` or a `sql_cmp` error), so the
//! interpreter's "AND over `{l}` and `{r}`" type-error arms are
//! unreachable for compiled shapes, and with the left operand in
//! {TRUE, NULL} after the short-circuit jump, the Kleene min/max merge
//! reproduces the interpreter's merge table case by case. Same values,
//! same NULL semantics, same errors with the same messages, same
//! evaluation (and therefore error-surfacing) order — pinned by the
//! seeded differential property test below and relied on by the
//! same-seed chaos replay contract (`tests/server_chaos.rs`).

use std::cmp::Ordering;

use crate::bitset::BitSet;
use crate::column::{ColumnBatch, ColumnData};
use crate::error::Result;
use crate::expr::{BoundExpr, CmpOp, Expr};
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::value::{total_f64_cmp, Value};

/// Three-valued logic cell. Discriminant order makes Kleene AND = `min`
/// and Kleene OR = `max`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum TriBool {
    False = 0,
    Null = 1,
    True = 2,
}

impl TriBool {
    fn of(b: bool) -> TriBool {
        if b {
            TriBool::True
        } else {
            TriBool::False
        }
    }
}

/// Hard cap on the kernel value stack (held on the *call* stack as a
/// fixed array, so evaluation never allocates). Deeper nestings fall back
/// to the interpreter at compile time.
const MAX_STACK: usize = 16;

/// One lowered op. Comparisons are shape-specialized so the inner loop
/// never matches on operand kinds.
#[derive(Debug, Clone)]
enum KernelOp {
    /// `column <op> literal`.
    CmpColLit { col: u32, op: CmpOp, lit: Value },
    /// `literal <op> column` (textual order preserved for error parity).
    CmpLitCol { lit: Value, op: CmpOp, col: u32 },
    /// `column <op> column`.
    CmpColCol { lhs: u32, op: CmpOp, rhs: u32 },
    /// `literal <op> literal` (constant operands, still per-tuple for
    /// error-order parity — comparisons this shape are rare).
    CmpLitLit { lhs: Value, op: CmpOp, rhs: Value },
    /// Load a boolean constant into the accumulator.
    LoadBool(bool),
    /// Load NULL into the accumulator.
    LoadNull,
    /// Three-valued NOT of the accumulator.
    Not,
    /// Push the accumulator onto the value stack.
    Push,
    /// Pop and Kleene-AND into the accumulator.
    AndMerge,
    /// Pop and Kleene-OR into the accumulator.
    OrMerge,
    /// Jump to the absolute op index if the accumulator is FALSE.
    JumpIfFalse(u32),
    /// Jump to the absolute op index if the accumulator is TRUE.
    JumpIfTrue(u32),
}

fn cmp_tri(l: &Value, op: CmpOp, r: &Value) -> Result<TriBool> {
    Ok(match l.sql_cmp(r)? {
        Some(ord) => TriBool::of(op.matches(ord)),
        None => TriBool::Null,
    })
}

/// A compiled boolean kernel: flat ops, fixed-size stack, `&self`
/// evaluation (shared-filter passes hold only a shared borrow).
#[derive(Debug, Clone)]
pub struct Kernel {
    ops: Vec<KernelOp>,
}

impl Kernel {
    /// Lower a bound expression, or `None` if it falls outside the
    /// compilable grammar (see the module docs for the fallback policy).
    pub fn compile(bound: &BoundExpr) -> Option<Kernel> {
        let mut ops = Vec::new();
        let mut depth = 0usize;
        compile_pred(bound, &mut ops, &mut depth)?;
        Some(Kernel { ops })
    }

    /// Number of lowered ops (diagnostics).
    pub fn op_count(&self) -> usize {
        self.ops.len()
    }

    fn eval_tri(&self, tuple: &Tuple) -> Result<TriBool> {
        let mut stack = [TriBool::False; MAX_STACK];
        let mut sp = 0usize;
        let mut acc = TriBool::False;
        let mut pc = 0usize;
        while let Some(op) = self.ops.get(pc) {
            match op {
                KernelOp::CmpColLit { col, op, lit } => {
                    acc = cmp_tri(tuple.value(*col as usize), *op, lit)?;
                }
                KernelOp::CmpLitCol { lit, op, col } => {
                    acc = cmp_tri(lit, *op, tuple.value(*col as usize))?;
                }
                KernelOp::CmpColCol { lhs, op, rhs } => {
                    acc = cmp_tri(tuple.value(*lhs as usize), *op, tuple.value(*rhs as usize))?;
                }
                KernelOp::CmpLitLit { lhs, op, rhs } => {
                    acc = cmp_tri(lhs, *op, rhs)?;
                }
                KernelOp::LoadBool(b) => acc = TriBool::of(*b),
                KernelOp::LoadNull => acc = TriBool::Null,
                KernelOp::Not => {
                    acc = match acc {
                        TriBool::True => TriBool::False,
                        TriBool::False => TriBool::True,
                        TriBool::Null => TriBool::Null,
                    }
                }
                KernelOp::Push => {
                    stack[sp] = acc;
                    sp += 1;
                }
                KernelOp::AndMerge => {
                    sp -= 1;
                    acc = stack[sp].min(acc);
                }
                KernelOp::OrMerge => {
                    sp -= 1;
                    acc = stack[sp].max(acc);
                }
                KernelOp::JumpIfFalse(target) => {
                    if acc == TriBool::False {
                        pc = *target as usize;
                        continue;
                    }
                }
                KernelOp::JumpIfTrue(target) => {
                    if acc == TriBool::True {
                        pc = *target as usize;
                        continue;
                    }
                }
            }
            pc += 1;
        }
        Ok(acc)
    }

    /// Evaluate as a WHERE predicate: NULL (unknown) filters the tuple
    /// out, exactly like [`BoundExpr::eval_pred`] on the same shape.
    pub fn eval_pred(&self, tuple: &Tuple) -> Result<bool> {
        Ok(self.eval_tri(tuple)? == TriBool::True)
    }

    /// Evaluate to a [`Value`], exactly like [`BoundExpr::eval`] on the
    /// same shape (compiled shapes only produce booleans or NULL).
    pub fn eval(&self, tuple: &Tuple) -> Result<Value> {
        Ok(match self.eval_tri(tuple)? {
            TriBool::True => Value::Bool(true),
            TriBool::False => Value::Bool(false),
            TriBool::Null => Value::Null,
        })
    }

    /// True when every comparison in this kernel is statically safe over
    /// `batch`'s column representations: no per-row evaluation could
    /// produce a `sql_cmp` type error. Mixed columns and cross-class
    /// operand pairs (e.g. a numeric column against a string literal)
    /// fail the check; NULL-literal operands always pass (NULL compares
    /// as unknown against anything, never an error).
    fn columns_compatible(&self, batch: &ColumnBatch) -> bool {
        /// Comparison class of an operand; `None` means "always safe"
        /// (a NULL literal).
        fn lit_kind(v: &Value) -> Option<LaneKind> {
            match v {
                Value::Null => None,
                Value::Int(_) | Value::Float(_) => Some(LaneKind::Num),
                Value::Bool(_) => Some(LaneKind::Bool),
                Value::Str(_) => Some(LaneKind::Str),
            }
        }
        /// `Err(())` marks a Mixed column: its rows could be anything, so
        /// nothing is statically safe against it.
        fn col_kind(batch: &ColumnBatch, col: u32) -> std::result::Result<LaneKind, ()> {
            match batch.column(col as usize).data() {
                ColumnData::Int(_) | ColumnData::Float(_) => Ok(LaneKind::Num),
                ColumnData::Bool(_) => Ok(LaneKind::Bool),
                ColumnData::Str { .. } => Ok(LaneKind::Str),
                ColumnData::Mixed(_) => Err(()),
            }
        }
        fn pair_ok(
            a: std::result::Result<Option<LaneKind>, ()>,
            b: std::result::Result<Option<LaneKind>, ()>,
        ) -> bool {
            match (a, b) {
                (Ok(x), Ok(y)) => match (x, y) {
                    (None, _) | (_, None) => true,
                    (Some(ka), Some(kb)) => ka == kb,
                },
                _ => false,
            }
        }
        self.ops.iter().all(|op| match op {
            KernelOp::CmpColLit { col, lit, .. } => {
                pair_ok(col_kind(batch, *col).map(Some), Ok(lit_kind(lit)))
            }
            KernelOp::CmpLitCol { lit, col, .. } => {
                pair_ok(Ok(lit_kind(lit)), col_kind(batch, *col).map(Some))
            }
            KernelOp::CmpColCol { lhs, rhs, .. } => pair_ok(
                col_kind(batch, *lhs).map(Some),
                col_kind(batch, *rhs).map(Some),
            ),
            KernelOp::CmpLitLit { lhs, rhs, .. } => pair_ok(Ok(lit_kind(lhs)), Ok(lit_kind(rhs))),
            _ => true,
        })
    }

    /// Evaluate this kernel over every row of `batch` at once, filling
    /// `keep[row]` with the WHERE verdict (`TRUE` keeps; `FALSE`/NULL
    /// drop — [`Kernel::eval_pred`] semantics). Each opcode runs as one
    /// loop over a whole column into a [`TriBool`] lane; `Int`/`Float`/
    /// `Bool` comparisons never materialize a [`Value`].
    ///
    /// Returns `false` without touching `keep` when
    /// [`Kernel::columns_compatible`] fails — the caller must fall back
    /// to the row path so type-error behaviour stays identical.
    ///
    /// Short-circuit jumps are *skipped* rather than taken: with errors
    /// statically excluded, eager Kleene AND/OR (`min`/`max` over lanes)
    /// is truth-table-identical to the interpreter's short-circuit, and
    /// the compiled op stream (`[lhs, JumpIfFalse(end), Push, rhs,
    /// AndMerge]`) stays stack-balanced when jumps are ignored.
    pub fn eval_columns(
        &self,
        batch: &ColumnBatch,
        scratch: &mut ColumnarScratch,
        keep: &mut Vec<bool>,
    ) -> bool {
        if !self.columns_compatible(batch) {
            return false;
        }
        let n = batch.len();
        scratch.acc.clear();
        scratch.acc.resize(n, TriBool::False);
        let mut sp = 0usize;
        for op in &self.ops {
            match op {
                KernelOp::CmpColLit { col, op, lit } => fill_cmp_lane(
                    *op,
                    side_for(batch, *col),
                    CmpSide::Lit(lit),
                    &mut scratch.acc,
                ),
                KernelOp::CmpLitCol { lit, op, col } => fill_cmp_lane(
                    *op,
                    CmpSide::Lit(lit),
                    side_for(batch, *col),
                    &mut scratch.acc,
                ),
                KernelOp::CmpColCol { lhs, op, rhs } => fill_cmp_lane(
                    *op,
                    side_for(batch, *lhs),
                    side_for(batch, *rhs),
                    &mut scratch.acc,
                ),
                KernelOp::CmpLitLit { lhs, op, rhs } => {
                    let tri = cmp_tri(lhs, *op, rhs).expect("columnar compatibility pre-checked");
                    scratch.acc.fill(tri);
                }
                KernelOp::LoadBool(b) => scratch.acc.fill(TriBool::of(*b)),
                KernelOp::LoadNull => scratch.acc.fill(TriBool::Null),
                KernelOp::Not => {
                    for t in &mut scratch.acc {
                        *t = match *t {
                            TriBool::True => TriBool::False,
                            TriBool::False => TriBool::True,
                            TriBool::Null => TriBool::Null,
                        };
                    }
                }
                KernelOp::Push => {
                    if sp == scratch.stack.len() {
                        scratch.stack.push(Vec::new());
                    }
                    let slot = &mut scratch.stack[sp];
                    slot.clear();
                    slot.extend_from_slice(&scratch.acc);
                    sp += 1;
                }
                KernelOp::AndMerge => {
                    sp -= 1;
                    for (a, &s) in scratch.acc.iter_mut().zip(scratch.stack[sp].iter()) {
                        *a = (*a).min(s);
                    }
                }
                KernelOp::OrMerge => {
                    sp -= 1;
                    for (a, &s) in scratch.acc.iter_mut().zip(scratch.stack[sp].iter()) {
                        *a = (*a).max(s);
                    }
                }
                KernelOp::JumpIfFalse(_) | KernelOp::JumpIfTrue(_) => {}
            }
        }
        keep.clear();
        keep.extend(scratch.acc.iter().map(|&t| t == TriBool::True));
        true
    }
}

/// Reusable lane buffers for [`Kernel::eval_columns`]: an accumulator
/// lane plus a pooled stack of saved lanes, so repeated batch evaluations
/// allocate nothing once warmed up.
#[derive(Debug, Default)]
pub struct ColumnarScratch {
    acc: Vec<TriBool>,
    stack: Vec<Vec<TriBool>>,
}

impl ColumnarScratch {
    /// Fresh (empty) scratch.
    pub fn new() -> Self {
        ColumnarScratch::default()
    }
}

/// Comparison class for the static compatibility check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LaneKind {
    Num,
    Str,
    Bool,
}

/// One operand of a vectorized comparison.
enum CmpSide<'a> {
    IntCol(&'a [i64], &'a BitSet),
    FloatCol(&'a [f64], &'a BitSet),
    BoolCol(&'a [bool], &'a BitSet),
    StrCol(&'a [u32], &'a [u8], &'a BitSet),
    Lit(&'a Value),
}

fn side_for(batch: &ColumnBatch, col: u32) -> CmpSide<'_> {
    let c = batch.column(col as usize);
    match c.data() {
        ColumnData::Int(b) => CmpSide::IntCol(b, c.nulls()),
        ColumnData::Float(b) => CmpSide::FloatCol(b, c.nulls()),
        ColumnData::Bool(b) => CmpSide::BoolCol(b, c.nulls()),
        ColumnData::Str { offsets, bytes } => CmpSide::StrCol(offsets, bytes, c.nulls()),
        ColumnData::Mixed(_) => unreachable!("columnar compatibility pre-checked"),
    }
}

/// One cell of a comparison operand, with no `Value` allocation.
#[derive(Clone, Copy)]
enum Cell<'a> {
    Null,
    I(i64),
    F(f64),
    B(bool),
    S(&'a [u8]),
}

fn cell_at<'a>(side: &CmpSide<'a>, i: usize) -> Cell<'a> {
    match side {
        CmpSide::IntCol(b, n) => {
            if n.contains(i) {
                Cell::Null
            } else {
                Cell::I(b[i])
            }
        }
        CmpSide::FloatCol(b, n) => {
            if n.contains(i) {
                Cell::Null
            } else {
                Cell::F(b[i])
            }
        }
        CmpSide::BoolCol(b, n) => {
            if n.contains(i) {
                Cell::Null
            } else {
                Cell::B(b[i])
            }
        }
        CmpSide::StrCol(offsets, bytes, n) => {
            if n.contains(i) {
                Cell::Null
            } else {
                Cell::S(&bytes[offsets[i] as usize..offsets[i + 1] as usize])
            }
        }
        CmpSide::Lit(v) => match v {
            Value::Null => Cell::Null,
            Value::Int(x) => Cell::I(*x),
            Value::Float(x) => Cell::F(*x),
            Value::Bool(x) => Cell::B(*x),
            Value::Str(s) => Cell::S(s.as_bytes()),
        },
    }
}

/// Compare two cells exactly like [`Value::sql_cmp`] on the corresponding
/// values: Int×Int as exact `i64` order (never through f64 — lossy for
/// large ints), mixed numerics as `total_f64_cmp`, strings as byte order
/// (UTF-8 byte order *is* `str` order), NULL as unknown.
fn cmp_cell(a: Cell<'_>, op: CmpOp, b: Cell<'_>) -> TriBool {
    let ord: Ordering = match (a, b) {
        (Cell::Null, _) | (_, Cell::Null) => return TriBool::Null,
        (Cell::I(x), Cell::I(y)) => x.cmp(&y),
        (Cell::I(x), Cell::F(y)) => total_f64_cmp(x as f64, y),
        (Cell::F(x), Cell::I(y)) => total_f64_cmp(x, y as f64),
        (Cell::F(x), Cell::F(y)) => total_f64_cmp(x, y),
        (Cell::B(x), Cell::B(y)) => x.cmp(&y),
        (Cell::S(x), Cell::S(y)) => x.cmp(y),
        _ => unreachable!("columnar compatibility pre-checked"),
    };
    TriBool::of(op.matches(ord))
}

/// Evaluate `lhs <op> rhs` for every row into `acc`. The Int×Int shapes —
/// the hot factors in every bench query — get dedicated branch-free-null
/// loops; everything else goes through the generic (still `Value`-free)
/// cell loop.
fn fill_cmp_lane(op: CmpOp, lhs: CmpSide<'_>, rhs: CmpSide<'_>, acc: &mut [TriBool]) {
    match (&lhs, &rhs) {
        (CmpSide::Lit(Value::Null), _) | (_, CmpSide::Lit(Value::Null)) => {
            acc.fill(TriBool::Null);
        }
        (CmpSide::IntCol(a, an), CmpSide::Lit(Value::Int(b))) => {
            if an.is_empty() {
                for (slot, &x) in acc.iter_mut().zip(a.iter()) {
                    *slot = TriBool::of(op.matches(x.cmp(b)));
                }
            } else {
                for (i, (slot, &x)) in acc.iter_mut().zip(a.iter()).enumerate() {
                    *slot = if an.contains(i) {
                        TriBool::Null
                    } else {
                        TriBool::of(op.matches(x.cmp(b)))
                    };
                }
            }
        }
        (CmpSide::Lit(Value::Int(a)), CmpSide::IntCol(b, bn)) => {
            if bn.is_empty() {
                for (slot, &y) in acc.iter_mut().zip(b.iter()) {
                    *slot = TriBool::of(op.matches(a.cmp(&y)));
                }
            } else {
                for (i, (slot, &y)) in acc.iter_mut().zip(b.iter()).enumerate() {
                    *slot = if bn.contains(i) {
                        TriBool::Null
                    } else {
                        TriBool::of(op.matches(a.cmp(&y)))
                    };
                }
            }
        }
        (CmpSide::IntCol(a, an), CmpSide::IntCol(b, bn)) => {
            if an.is_empty() && bn.is_empty() {
                for (slot, (&x, &y)) in acc.iter_mut().zip(a.iter().zip(b.iter())) {
                    *slot = TriBool::of(op.matches(x.cmp(&y)));
                }
            } else {
                for (i, (slot, (&x, &y))) in acc.iter_mut().zip(a.iter().zip(b.iter())).enumerate()
                {
                    *slot = if an.contains(i) || bn.contains(i) {
                        TriBool::Null
                    } else {
                        TriBool::of(op.matches(x.cmp(&y)))
                    };
                }
            }
        }
        _ => {
            for (i, slot) in acc.iter_mut().enumerate() {
                *slot = cmp_cell(cell_at(&lhs, i), op, cell_at(&rhs, i));
            }
        }
    }
}

/// Lower one predicate-position subterm. `depth` tracks live stack slots;
/// exceeding [`MAX_STACK`] aborts compilation (interpreter fallback).
fn compile_pred(e: &BoundExpr, ops: &mut Vec<KernelOp>, depth: &mut usize) -> Option<()> {
    match e {
        BoundExpr::Cmp { op, lhs, rhs } => {
            let lowered = match (lhs.as_ref(), rhs.as_ref()) {
                (BoundExpr::Column(l), BoundExpr::Literal(v)) => KernelOp::CmpColLit {
                    col: u32::try_from(*l).ok()?,
                    op: *op,
                    lit: v.clone(),
                },
                (BoundExpr::Literal(v), BoundExpr::Column(r)) => KernelOp::CmpLitCol {
                    lit: v.clone(),
                    op: *op,
                    col: u32::try_from(*r).ok()?,
                },
                (BoundExpr::Column(l), BoundExpr::Column(r)) => KernelOp::CmpColCol {
                    lhs: u32::try_from(*l).ok()?,
                    op: *op,
                    rhs: u32::try_from(*r).ok()?,
                },
                (BoundExpr::Literal(l), BoundExpr::Literal(r)) => KernelOp::CmpLitLit {
                    lhs: l.clone(),
                    op: *op,
                    rhs: r.clone(),
                },
                // Arithmetic (or nested logic) inside a comparison: the
                // operand could be any value type — interpreter territory.
                _ => return None,
            };
            ops.push(lowered);
        }
        BoundExpr::And(a, b) => {
            compile_pred(a, ops, depth)?;
            let jump_at = ops.len();
            ops.push(KernelOp::JumpIfFalse(0)); // patched below
            *depth += 1;
            if *depth > MAX_STACK {
                return None;
            }
            ops.push(KernelOp::Push);
            compile_pred(b, ops, depth)?;
            ops.push(KernelOp::AndMerge);
            *depth -= 1;
            let end = u32::try_from(ops.len()).ok()?;
            ops[jump_at] = KernelOp::JumpIfFalse(end);
        }
        BoundExpr::Or(a, b) => {
            compile_pred(a, ops, depth)?;
            let jump_at = ops.len();
            ops.push(KernelOp::JumpIfTrue(0)); // patched below
            *depth += 1;
            if *depth > MAX_STACK {
                return None;
            }
            ops.push(KernelOp::Push);
            compile_pred(b, ops, depth)?;
            ops.push(KernelOp::OrMerge);
            *depth -= 1;
            let end = u32::try_from(ops.len()).ok()?;
            ops[jump_at] = KernelOp::JumpIfTrue(end);
        }
        BoundExpr::Not(inner) => {
            compile_pred(inner, ops, depth)?;
            ops.push(KernelOp::Not);
        }
        BoundExpr::Literal(Value::Bool(b)) => ops.push(KernelOp::LoadBool(*b)),
        BoundExpr::Literal(Value::Null) => ops.push(KernelOp::LoadNull),
        // Bare column / non-boolean literal in predicate position, or
        // arithmetic: outside the grammar.
        BoundExpr::Literal(_) | BoundExpr::Column(_) | BoundExpr::Arith { .. } => return None,
    }
    Some(())
}

/// A predicate ready for the hot path: compiled when the expression fits
/// the kernel grammar (and compilation is enabled), interpreted
/// otherwise. Either way the observable behaviour — values, NULL
/// semantics, errors, evaluation order — is identical.
#[derive(Debug, Clone)]
pub enum Predicate {
    /// Flat compiled kernel.
    Compiled(Kernel),
    /// Interpreter fallback (also the `compiled_kernels = false` path).
    Interpreted(BoundExpr),
}

impl Predicate {
    /// Bind `expr` against `schema` (surfacing the same binding errors as
    /// [`Expr::bind`]) and compile when `allow_compile` is set and the
    /// shape permits.
    pub fn new(expr: &Expr, schema: &Schema, allow_compile: bool) -> Result<Predicate> {
        Ok(Self::from_bound(expr.bind(schema)?, allow_compile))
    }

    /// Wrap an already-bound expression, compiling if possible.
    pub fn from_bound(bound: BoundExpr, allow_compile: bool) -> Predicate {
        if allow_compile {
            if let Some(k) = Kernel::compile(&bound) {
                return Predicate::Compiled(k);
            }
        }
        Predicate::Interpreted(bound)
    }

    /// True iff the compiled path is active (diagnostics / experiments).
    pub fn is_compiled(&self) -> bool {
        matches!(self, Predicate::Compiled(_))
    }

    /// Evaluate as a WHERE predicate ([`BoundExpr::eval_pred`] semantics).
    pub fn eval_pred(&self, tuple: &Tuple) -> Result<bool> {
        match self {
            Predicate::Compiled(k) => k.eval_pred(tuple),
            Predicate::Interpreted(b) => b.eval_pred(tuple),
        }
    }

    /// Evaluate to a [`Value`] ([`BoundExpr::eval`] semantics).
    pub fn eval(&self, tuple: &Tuple) -> Result<Value> {
        match self {
            Predicate::Compiled(k) => k.eval(tuple),
            Predicate::Interpreted(b) => b.eval(tuple),
        }
    }

    /// Vectorized WHERE evaluation over a whole batch (see
    /// [`Kernel::eval_columns`]). Returns `false` — caller falls back to
    /// rows — for interpreted predicates and for batches whose column
    /// representations the kernel cannot statically prove type-safe.
    pub fn eval_columns(
        &self,
        batch: &ColumnBatch,
        scratch: &mut ColumnarScratch,
        keep: &mut Vec<bool>,
    ) -> bool {
        match self {
            Predicate::Compiled(k) => k.eval_columns(batch, scratch, keep),
            Predicate::Interpreted(_) => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{derive_seed, seeded, TcqRng};
    use crate::schema::{DataType, Field, SchemaRef};
    use crate::time::Timestamp;
    use crate::value::Value;

    fn schema() -> SchemaRef {
        Schema::new(vec![
            Field::new("i", DataType::Int),
            Field::new("f", DataType::Float),
            Field::new("s", DataType::Str),
            Field::new("b", DataType::Bool),
        ])
        .into_ref()
    }

    fn compiled(e: &Expr, s: &SchemaRef) -> Kernel {
        match Predicate::new(e, s, true).unwrap() {
            Predicate::Compiled(k) => k,
            Predicate::Interpreted(_) => panic!("expected {e:?} to compile"),
        }
    }

    #[test]
    fn simple_shapes_compile() {
        let s = schema();
        for e in [
            Expr::col("i").cmp(CmpOp::Gt, Expr::lit(3i64)),
            Expr::lit(3i64).cmp(CmpOp::Lt, Expr::col("f")),
            Expr::col("i").cmp(CmpOp::Eq, Expr::col("f")),
            Expr::col("i")
                .cmp(CmpOp::Gt, Expr::lit(0i64))
                .and(Expr::col("s").cmp(CmpOp::Eq, Expr::lit("x"))),
            Expr::Not(Box::new(Expr::col("b").cmp(CmpOp::Eq, Expr::lit(true)))),
            Expr::lit(true),
        ] {
            assert!(
                Predicate::new(&e, &s, true).unwrap().is_compiled(),
                "{e} should compile"
            );
        }
    }

    #[test]
    fn non_compilable_shapes_fall_back() {
        let s = schema();
        let arith = Expr::Arith {
            op: crate::expr::ArithOp::Add,
            lhs: Box::new(Expr::col("i")),
            rhs: Box::new(Expr::lit(1i64)),
        };
        for e in [
            // Arithmetic inside the comparison.
            arith.clone().cmp(CmpOp::Gt, Expr::lit(3i64)),
            // Bare column in predicate position.
            Expr::col("b"),
            // Non-boolean literal in predicate position.
            Expr::lit(1i64),
            // Non-boolean literal under AND.
            Expr::lit(1i64).and(Expr::lit(true)),
        ] {
            assert!(
                !Predicate::new(&e, &s, true).unwrap().is_compiled(),
                "{e} should fall back to the interpreter"
            );
        }
        // And the toggle forces the interpreter even on compilable shapes.
        let simple = Expr::col("i").cmp(CmpOp::Gt, Expr::lit(3i64));
        assert!(!Predicate::new(&simple, &s, false).unwrap().is_compiled());
    }

    #[test]
    fn binding_errors_surface_before_compilation() {
        let s = schema();
        let e = Expr::col("missing").cmp(CmpOp::Gt, Expr::lit(3i64));
        let kernel_err = Predicate::new(&e, &s, true).unwrap_err();
        let bind_err = e.bind(&s).unwrap_err();
        assert_eq!(kernel_err.to_string(), bind_err.to_string());
    }

    /// Draw a random value, skewed toward collisions and edge cases
    /// (NULLs, NaNs, numerically-equal Int/Float pairs, type mismatches).
    fn gen_value(rng: &mut TcqRng) -> Value {
        match rng.gen_range(0usize..10) {
            0 => Value::Null,
            1 => Value::Bool(rng.gen()),
            2 | 3 => Value::Int(rng.gen_range(-3i64..3)),
            4 => Value::Float(rng.gen_range(-3i64..3) as f64),
            5 => Value::Float(rng.gen_range(-3.0..3.0)),
            6 => Value::Float([f64::NAN, -0.0, f64::INFINITY][rng.gen_range(0usize..3)]),
            _ => Value::str(["a", "b", "", "ab"][rng.gen_range(0usize..4)]),
        }
    }

    /// Draw a random operand (S in the grammar).
    fn gen_operand(rng: &mut TcqRng, cols: usize) -> Expr {
        if rng.gen_bool(0.5) {
            Expr::col(format!("c{}", rng.gen_range(0usize..cols)))
        } else {
            Expr::Literal(gen_value(rng))
        }
    }

    /// Draw a random predicate from the compilable grammar.
    fn gen_pred(rng: &mut TcqRng, cols: usize, fuel: &mut usize) -> Expr {
        let op = [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ][rng.gen_range(0usize..6)];
        if *fuel == 0 || rng.gen_bool(0.4) {
            return gen_operand(rng, cols).cmp(op, gen_operand(rng, cols));
        }
        *fuel -= 1;
        match rng.gen_range(0usize..4) {
            0 => gen_pred(rng, cols, fuel).and(gen_pred(rng, cols, fuel)),
            1 => gen_pred(rng, cols, fuel).or(gen_pred(rng, cols, fuel)),
            2 => Expr::Not(Box::new(gen_pred(rng, cols, fuel))),
            _ => gen_operand(rng, cols).cmp(op, gen_operand(rng, cols)),
        }
    }

    /// Seeded differential property: across randomized schemas, tuples
    /// (untyped cells — NULLs and type mismatches included), and
    /// grammar-shaped predicates, the kernel's `eval` and `eval_pred`
    /// are bit-identical to the interpreter's — same values, same NULL
    /// semantics, and the same errors with the same messages.
    #[test]
    fn kernel_matches_interpreter_on_random_inputs() {
        const COLS: usize = 4;
        let mut rng = seeded(derive_seed(0xC0FF_EE00, 1));
        let schema: SchemaRef = Schema::new(
            (0..COLS)
                .map(|i| Field::new(format!("c{i}"), DataType::Int))
                .collect::<Vec<_>>(),
        )
        .into_ref();
        let mut compiled_seen = 0usize;
        for case in 0..4_000 {
            let mut fuel = rng.gen_range(0usize..5);
            let pred = gen_pred(&mut rng, COLS, &mut fuel);
            let bound = pred.bind(&schema).unwrap();
            let p = Predicate::from_bound(bound.clone(), true);
            compiled_seen += p.is_compiled() as usize;
            for _ in 0..8 {
                let vals: Vec<Value> = (0..COLS).map(|_| gen_value(&mut rng)).collect();
                let t = Tuple::new(schema.clone(), vals, Timestamp::logical(1)).unwrap();
                match (p.eval(&t), bound.eval(&t)) {
                    (Ok(a), Ok(b)) => assert_eq!(a, b, "case {case}: {pred} value diverged"),
                    (Err(a), Err(b)) => assert_eq!(
                        a.to_string(),
                        b.to_string(),
                        "case {case}: {pred} error diverged"
                    ),
                    (a, b) => panic!("case {case}: {pred} Ok/Err diverged: {a:?} vs {b:?}"),
                }
                match (p.eval_pred(&t), bound.eval_pred(&t)) {
                    (Ok(a), Ok(b)) => assert_eq!(a, b, "case {case}: {pred} pred diverged"),
                    (Err(a), Err(b)) => assert_eq!(a.to_string(), b.to_string()),
                    (a, b) => panic!("case {case}: {pred} pred Ok/Err diverged: {a:?} vs {b:?}"),
                }
            }
        }
        assert!(
            compiled_seen > 3_000,
            "grammar-shaped predicates should mostly compile ({compiled_seen}/4000)"
        );
    }

    /// Seeded differential property for the vectorized path: on random
    /// grammar-shaped predicates over random batches (NULLs, NaNs, type
    /// mismatches included), whenever `eval_columns` claims a batch its
    /// per-row verdicts must equal the row path's `eval_pred` — and the
    /// row path must not error (the compatibility check's whole job).
    #[test]
    fn columnar_eval_matches_row_eval_on_random_batches() {
        const COLS: usize = 4;
        let mut rng = seeded(derive_seed(0xC01_4ABE5, 2));
        let schema: SchemaRef = Schema::new(
            (0..COLS)
                .map(|i| Field::new(format!("c{i}"), DataType::Int))
                .collect::<Vec<_>>(),
        )
        .into_ref();
        let mut scratch = ColumnarScratch::new();
        let mut keep = Vec::new();
        let mut claimed = 0usize;
        for case in 0..2_000 {
            let mut fuel = rng.gen_range(0usize..5);
            let pred = gen_pred(&mut rng, COLS, &mut fuel);
            let p = Predicate::from_bound(pred.bind(&schema).unwrap(), true);
            let Predicate::Compiled(k) = &p else { continue };
            let n = rng.gen_range(0usize..24);
            // Columns are homogeneous-biased (real streams are typed) so
            // the vectorized path gets exercised, with occasional NULLs
            // and occasional fully-mixed columns to hit the fallback.
            let styles: Vec<usize> = (0..COLS).map(|_| rng.gen_range(0usize..6)).collect();
            let cell = |rng: &mut TcqRng, style: usize| -> Value {
                if rng.gen_bool(0.15) {
                    return Value::Null;
                }
                match style {
                    0 => Value::Int(rng.gen_range(-3i64..3)),
                    1 => Value::Float(rng.gen_range(-3.0..3.0)),
                    2 => Value::Float([f64::NAN, -0.0, 2.0][rng.gen_range(0usize..3)]),
                    3 => Value::str(["a", "b", "", "ab"][rng.gen_range(0usize..4)]),
                    4 => Value::Bool(rng.gen()),
                    _ => gen_value(rng),
                }
            };
            let tuples: Vec<Tuple> = (0..n)
                .map(|i| {
                    let vals: Vec<Value> = styles.iter().map(|&s| cell(&mut rng, s)).collect();
                    Tuple::new_unchecked(schema.clone(), vals, Timestamp::logical(i as i64))
                })
                .collect();
            let batch = crate::column::ColumnBatch::from_tuples(schema.clone(), &tuples, None);
            if !k.eval_columns(&batch, &mut scratch, &mut keep) {
                continue; // row-path fallback; nothing to compare
            }
            claimed += 1;
            assert_eq!(keep.len(), n, "case {case}: {pred}");
            for (row, t) in tuples.iter().enumerate() {
                let expect = k.eval_pred(t).unwrap_or_else(|e| {
                    panic!("case {case}: {pred} claimed a batch whose row path errors: {e}")
                });
                assert_eq!(keep[row], expect, "case {case} row {row}: {pred}");
            }
        }
        assert!(
            claimed > 400,
            "vectorized path should claim a healthy share of batches ({claimed}/2000)"
        );
    }

    #[test]
    fn short_circuit_skips_rhs_errors_exactly_like_the_interpreter() {
        let s = schema();
        // FALSE AND (s > 1): interpreter short-circuits before the Str/Int
        // type error; the kernel must too.
        let e = Expr::col("i")
            .cmp(CmpOp::Lt, Expr::lit(i64::MIN))
            .and(Expr::col("s").cmp(CmpOp::Gt, Expr::lit(1i64)));
        let k = compiled(&e, &s);
        let bound = e.bind(&s).unwrap();
        let t = Tuple::new(
            s.clone(),
            vec![
                Value::Int(0),
                Value::Float(0.0),
                Value::str("x"),
                Value::Bool(true),
            ],
            Timestamp::logical(1),
        )
        .unwrap();
        assert!(!k.eval_pred(&t).unwrap());
        assert!(!bound.eval_pred(&t).unwrap());
        // Flip to TRUE AND (...): now both must surface the error.
        let e2 = Expr::col("i")
            .cmp(CmpOp::Ge, Expr::lit(i64::MIN))
            .and(Expr::col("s").cmp(CmpOp::Gt, Expr::lit(1i64)));
        let k2 = compiled(&e2, &s);
        let b2 = e2.bind(&s).unwrap();
        assert_eq!(
            k2.eval_pred(&t).unwrap_err().to_string(),
            b2.eval_pred(&t).unwrap_err().to_string()
        );
    }

    #[test]
    fn deep_nesting_falls_back_instead_of_overflowing() {
        let s = schema();
        // Left-nested ANDs keep depth at 1; right-nested ANDs grow the
        // stack. Build a right-nested chain past MAX_STACK.
        let leaf = || Expr::col("i").cmp(CmpOp::Gt, Expr::lit(0i64));
        let mut e = leaf();
        for _ in 0..(MAX_STACK + 2) {
            e = leaf().and(e);
        }
        let p = Predicate::new(&e, &s, true).unwrap();
        assert!(!p.is_compiled(), "past-MAX_STACK nesting must fall back");
        // ... and still evaluates correctly through the interpreter.
        let t = Tuple::new(
            s.clone(),
            vec![
                Value::Int(1),
                Value::Float(0.0),
                Value::str("x"),
                Value::Bool(true),
            ],
            Timestamp::logical(1),
        )
        .unwrap();
        assert!(p.eval_pred(&t).unwrap());
    }
}
