//! Compiled predicate kernels: the hot-path replacement for walking a
//! [`BoundExpr`] tree per tuple.
//!
//! A [`Kernel`] lowers a boolean expression into a flat sequence of
//! column-index-resolved ops evaluated by a small loop — no recursion, no
//! per-tuple allocation, no `Result` plumbing for the infallible ops
//! (logic merges, jumps, loads). Compilation happens once, at
//! query-registration time; the per-tuple cost drops to an array walk.
//!
//! # Lowering rules
//!
//! The compilable grammar is the predicate shape CQ WHERE clauses
//! overwhelmingly take:
//!
//! ```text
//! P := Cmp(S, S) | And(P, P) | Or(P, P) | Not(P) | TRUE | FALSE | NULL
//! S := Column | Literal
//! ```
//!
//! Comparisons are specialized by operand shape (`CmpColLit`,
//! `CmpLitCol`, `CmpColCol`, `CmpLitLit`) with the *textual operand order
//! preserved*, so a type error carries the identical message the
//! interpreter would produce. `And`/`Or` compile to the interpreter's
//! exact short-circuit: evaluate the left side, jump past the right side
//! when the left side alone decides the result (`FALSE` for AND, `TRUE`
//! for OR), otherwise stash the left result, evaluate the right side, and
//! merge under Kleene three-valued logic. Anything outside the grammar —
//! arithmetic inside a comparison, a bare column or non-boolean literal
//! in predicate position, nesting past the fixed stack — is *not*
//! compiled; [`Predicate::new`] falls back to the [`BoundExpr`]
//! interpreter. Fallback is the documented policy, not a failure: the
//! kernel only ever claims shapes it can reproduce bit-identically.
//!
//! # Determinism argument
//!
//! A compiled subterm evaluates only to three-valued booleans (a
//! comparison yields `TRUE`/`FALSE`/`NULL` or a `sql_cmp` error), so the
//! interpreter's "AND over `{l}` and `{r}`" type-error arms are
//! unreachable for compiled shapes, and with the left operand in
//! {TRUE, NULL} after the short-circuit jump, the Kleene min/max merge
//! reproduces the interpreter's merge table case by case. Same values,
//! same NULL semantics, same errors with the same messages, same
//! evaluation (and therefore error-surfacing) order — pinned by the
//! seeded differential property test below and relied on by the
//! same-seed chaos replay contract (`tests/server_chaos.rs`).

use crate::error::Result;
use crate::expr::{BoundExpr, CmpOp, Expr};
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::value::Value;

/// Three-valued logic cell. Discriminant order makes Kleene AND = `min`
/// and Kleene OR = `max`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum TriBool {
    False = 0,
    Null = 1,
    True = 2,
}

impl TriBool {
    fn of(b: bool) -> TriBool {
        if b {
            TriBool::True
        } else {
            TriBool::False
        }
    }
}

/// Hard cap on the kernel value stack (held on the *call* stack as a
/// fixed array, so evaluation never allocates). Deeper nestings fall back
/// to the interpreter at compile time.
const MAX_STACK: usize = 16;

/// One lowered op. Comparisons are shape-specialized so the inner loop
/// never matches on operand kinds.
#[derive(Debug, Clone)]
enum KernelOp {
    /// `column <op> literal`.
    CmpColLit { col: u32, op: CmpOp, lit: Value },
    /// `literal <op> column` (textual order preserved for error parity).
    CmpLitCol { lit: Value, op: CmpOp, col: u32 },
    /// `column <op> column`.
    CmpColCol { lhs: u32, op: CmpOp, rhs: u32 },
    /// `literal <op> literal` (constant operands, still per-tuple for
    /// error-order parity — comparisons this shape are rare).
    CmpLitLit { lhs: Value, op: CmpOp, rhs: Value },
    /// Load a boolean constant into the accumulator.
    LoadBool(bool),
    /// Load NULL into the accumulator.
    LoadNull,
    /// Three-valued NOT of the accumulator.
    Not,
    /// Push the accumulator onto the value stack.
    Push,
    /// Pop and Kleene-AND into the accumulator.
    AndMerge,
    /// Pop and Kleene-OR into the accumulator.
    OrMerge,
    /// Jump to the absolute op index if the accumulator is FALSE.
    JumpIfFalse(u32),
    /// Jump to the absolute op index if the accumulator is TRUE.
    JumpIfTrue(u32),
}

fn cmp_tri(l: &Value, op: CmpOp, r: &Value) -> Result<TriBool> {
    Ok(match l.sql_cmp(r)? {
        Some(ord) => TriBool::of(op.matches(ord)),
        None => TriBool::Null,
    })
}

/// A compiled boolean kernel: flat ops, fixed-size stack, `&self`
/// evaluation (shared-filter passes hold only a shared borrow).
#[derive(Debug, Clone)]
pub struct Kernel {
    ops: Vec<KernelOp>,
}

impl Kernel {
    /// Lower a bound expression, or `None` if it falls outside the
    /// compilable grammar (see the module docs for the fallback policy).
    pub fn compile(bound: &BoundExpr) -> Option<Kernel> {
        let mut ops = Vec::new();
        let mut depth = 0usize;
        compile_pred(bound, &mut ops, &mut depth)?;
        Some(Kernel { ops })
    }

    /// Number of lowered ops (diagnostics).
    pub fn op_count(&self) -> usize {
        self.ops.len()
    }

    fn eval_tri(&self, tuple: &Tuple) -> Result<TriBool> {
        let mut stack = [TriBool::False; MAX_STACK];
        let mut sp = 0usize;
        let mut acc = TriBool::False;
        let mut pc = 0usize;
        while let Some(op) = self.ops.get(pc) {
            match op {
                KernelOp::CmpColLit { col, op, lit } => {
                    acc = cmp_tri(tuple.value(*col as usize), *op, lit)?;
                }
                KernelOp::CmpLitCol { lit, op, col } => {
                    acc = cmp_tri(lit, *op, tuple.value(*col as usize))?;
                }
                KernelOp::CmpColCol { lhs, op, rhs } => {
                    acc = cmp_tri(tuple.value(*lhs as usize), *op, tuple.value(*rhs as usize))?;
                }
                KernelOp::CmpLitLit { lhs, op, rhs } => {
                    acc = cmp_tri(lhs, *op, rhs)?;
                }
                KernelOp::LoadBool(b) => acc = TriBool::of(*b),
                KernelOp::LoadNull => acc = TriBool::Null,
                KernelOp::Not => {
                    acc = match acc {
                        TriBool::True => TriBool::False,
                        TriBool::False => TriBool::True,
                        TriBool::Null => TriBool::Null,
                    }
                }
                KernelOp::Push => {
                    stack[sp] = acc;
                    sp += 1;
                }
                KernelOp::AndMerge => {
                    sp -= 1;
                    acc = stack[sp].min(acc);
                }
                KernelOp::OrMerge => {
                    sp -= 1;
                    acc = stack[sp].max(acc);
                }
                KernelOp::JumpIfFalse(target) => {
                    if acc == TriBool::False {
                        pc = *target as usize;
                        continue;
                    }
                }
                KernelOp::JumpIfTrue(target) => {
                    if acc == TriBool::True {
                        pc = *target as usize;
                        continue;
                    }
                }
            }
            pc += 1;
        }
        Ok(acc)
    }

    /// Evaluate as a WHERE predicate: NULL (unknown) filters the tuple
    /// out, exactly like [`BoundExpr::eval_pred`] on the same shape.
    pub fn eval_pred(&self, tuple: &Tuple) -> Result<bool> {
        Ok(self.eval_tri(tuple)? == TriBool::True)
    }

    /// Evaluate to a [`Value`], exactly like [`BoundExpr::eval`] on the
    /// same shape (compiled shapes only produce booleans or NULL).
    pub fn eval(&self, tuple: &Tuple) -> Result<Value> {
        Ok(match self.eval_tri(tuple)? {
            TriBool::True => Value::Bool(true),
            TriBool::False => Value::Bool(false),
            TriBool::Null => Value::Null,
        })
    }
}

/// Lower one predicate-position subterm. `depth` tracks live stack slots;
/// exceeding [`MAX_STACK`] aborts compilation (interpreter fallback).
fn compile_pred(e: &BoundExpr, ops: &mut Vec<KernelOp>, depth: &mut usize) -> Option<()> {
    match e {
        BoundExpr::Cmp { op, lhs, rhs } => {
            let lowered = match (lhs.as_ref(), rhs.as_ref()) {
                (BoundExpr::Column(l), BoundExpr::Literal(v)) => KernelOp::CmpColLit {
                    col: u32::try_from(*l).ok()?,
                    op: *op,
                    lit: v.clone(),
                },
                (BoundExpr::Literal(v), BoundExpr::Column(r)) => KernelOp::CmpLitCol {
                    lit: v.clone(),
                    op: *op,
                    col: u32::try_from(*r).ok()?,
                },
                (BoundExpr::Column(l), BoundExpr::Column(r)) => KernelOp::CmpColCol {
                    lhs: u32::try_from(*l).ok()?,
                    op: *op,
                    rhs: u32::try_from(*r).ok()?,
                },
                (BoundExpr::Literal(l), BoundExpr::Literal(r)) => KernelOp::CmpLitLit {
                    lhs: l.clone(),
                    op: *op,
                    rhs: r.clone(),
                },
                // Arithmetic (or nested logic) inside a comparison: the
                // operand could be any value type — interpreter territory.
                _ => return None,
            };
            ops.push(lowered);
        }
        BoundExpr::And(a, b) => {
            compile_pred(a, ops, depth)?;
            let jump_at = ops.len();
            ops.push(KernelOp::JumpIfFalse(0)); // patched below
            *depth += 1;
            if *depth > MAX_STACK {
                return None;
            }
            ops.push(KernelOp::Push);
            compile_pred(b, ops, depth)?;
            ops.push(KernelOp::AndMerge);
            *depth -= 1;
            let end = u32::try_from(ops.len()).ok()?;
            ops[jump_at] = KernelOp::JumpIfFalse(end);
        }
        BoundExpr::Or(a, b) => {
            compile_pred(a, ops, depth)?;
            let jump_at = ops.len();
            ops.push(KernelOp::JumpIfTrue(0)); // patched below
            *depth += 1;
            if *depth > MAX_STACK {
                return None;
            }
            ops.push(KernelOp::Push);
            compile_pred(b, ops, depth)?;
            ops.push(KernelOp::OrMerge);
            *depth -= 1;
            let end = u32::try_from(ops.len()).ok()?;
            ops[jump_at] = KernelOp::JumpIfTrue(end);
        }
        BoundExpr::Not(inner) => {
            compile_pred(inner, ops, depth)?;
            ops.push(KernelOp::Not);
        }
        BoundExpr::Literal(Value::Bool(b)) => ops.push(KernelOp::LoadBool(*b)),
        BoundExpr::Literal(Value::Null) => ops.push(KernelOp::LoadNull),
        // Bare column / non-boolean literal in predicate position, or
        // arithmetic: outside the grammar.
        BoundExpr::Literal(_) | BoundExpr::Column(_) | BoundExpr::Arith { .. } => return None,
    }
    Some(())
}

/// A predicate ready for the hot path: compiled when the expression fits
/// the kernel grammar (and compilation is enabled), interpreted
/// otherwise. Either way the observable behaviour — values, NULL
/// semantics, errors, evaluation order — is identical.
#[derive(Debug, Clone)]
pub enum Predicate {
    /// Flat compiled kernel.
    Compiled(Kernel),
    /// Interpreter fallback (also the `compiled_kernels = false` path).
    Interpreted(BoundExpr),
}

impl Predicate {
    /// Bind `expr` against `schema` (surfacing the same binding errors as
    /// [`Expr::bind`]) and compile when `allow_compile` is set and the
    /// shape permits.
    pub fn new(expr: &Expr, schema: &Schema, allow_compile: bool) -> Result<Predicate> {
        Ok(Self::from_bound(expr.bind(schema)?, allow_compile))
    }

    /// Wrap an already-bound expression, compiling if possible.
    pub fn from_bound(bound: BoundExpr, allow_compile: bool) -> Predicate {
        if allow_compile {
            if let Some(k) = Kernel::compile(&bound) {
                return Predicate::Compiled(k);
            }
        }
        Predicate::Interpreted(bound)
    }

    /// True iff the compiled path is active (diagnostics / experiments).
    pub fn is_compiled(&self) -> bool {
        matches!(self, Predicate::Compiled(_))
    }

    /// Evaluate as a WHERE predicate ([`BoundExpr::eval_pred`] semantics).
    pub fn eval_pred(&self, tuple: &Tuple) -> Result<bool> {
        match self {
            Predicate::Compiled(k) => k.eval_pred(tuple),
            Predicate::Interpreted(b) => b.eval_pred(tuple),
        }
    }

    /// Evaluate to a [`Value`] ([`BoundExpr::eval`] semantics).
    pub fn eval(&self, tuple: &Tuple) -> Result<Value> {
        match self {
            Predicate::Compiled(k) => k.eval(tuple),
            Predicate::Interpreted(b) => b.eval(tuple),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{derive_seed, seeded, TcqRng};
    use crate::schema::{DataType, Field, SchemaRef};
    use crate::time::Timestamp;
    use crate::value::Value;

    fn schema() -> SchemaRef {
        Schema::new(vec![
            Field::new("i", DataType::Int),
            Field::new("f", DataType::Float),
            Field::new("s", DataType::Str),
            Field::new("b", DataType::Bool),
        ])
        .into_ref()
    }

    fn compiled(e: &Expr, s: &SchemaRef) -> Kernel {
        match Predicate::new(e, s, true).unwrap() {
            Predicate::Compiled(k) => k,
            Predicate::Interpreted(_) => panic!("expected {e:?} to compile"),
        }
    }

    #[test]
    fn simple_shapes_compile() {
        let s = schema();
        for e in [
            Expr::col("i").cmp(CmpOp::Gt, Expr::lit(3i64)),
            Expr::lit(3i64).cmp(CmpOp::Lt, Expr::col("f")),
            Expr::col("i").cmp(CmpOp::Eq, Expr::col("f")),
            Expr::col("i")
                .cmp(CmpOp::Gt, Expr::lit(0i64))
                .and(Expr::col("s").cmp(CmpOp::Eq, Expr::lit("x"))),
            Expr::Not(Box::new(Expr::col("b").cmp(CmpOp::Eq, Expr::lit(true)))),
            Expr::lit(true),
        ] {
            assert!(
                Predicate::new(&e, &s, true).unwrap().is_compiled(),
                "{e} should compile"
            );
        }
    }

    #[test]
    fn non_compilable_shapes_fall_back() {
        let s = schema();
        let arith = Expr::Arith {
            op: crate::expr::ArithOp::Add,
            lhs: Box::new(Expr::col("i")),
            rhs: Box::new(Expr::lit(1i64)),
        };
        for e in [
            // Arithmetic inside the comparison.
            arith.clone().cmp(CmpOp::Gt, Expr::lit(3i64)),
            // Bare column in predicate position.
            Expr::col("b"),
            // Non-boolean literal in predicate position.
            Expr::lit(1i64),
            // Non-boolean literal under AND.
            Expr::lit(1i64).and(Expr::lit(true)),
        ] {
            assert!(
                !Predicate::new(&e, &s, true).unwrap().is_compiled(),
                "{e} should fall back to the interpreter"
            );
        }
        // And the toggle forces the interpreter even on compilable shapes.
        let simple = Expr::col("i").cmp(CmpOp::Gt, Expr::lit(3i64));
        assert!(!Predicate::new(&simple, &s, false).unwrap().is_compiled());
    }

    #[test]
    fn binding_errors_surface_before_compilation() {
        let s = schema();
        let e = Expr::col("missing").cmp(CmpOp::Gt, Expr::lit(3i64));
        let kernel_err = Predicate::new(&e, &s, true).unwrap_err();
        let bind_err = e.bind(&s).unwrap_err();
        assert_eq!(kernel_err.to_string(), bind_err.to_string());
    }

    /// Draw a random value, skewed toward collisions and edge cases
    /// (NULLs, NaNs, numerically-equal Int/Float pairs, type mismatches).
    fn gen_value(rng: &mut TcqRng) -> Value {
        match rng.gen_range(0usize..10) {
            0 => Value::Null,
            1 => Value::Bool(rng.gen()),
            2 | 3 => Value::Int(rng.gen_range(-3i64..3)),
            4 => Value::Float(rng.gen_range(-3i64..3) as f64),
            5 => Value::Float(rng.gen_range(-3.0..3.0)),
            6 => Value::Float([f64::NAN, -0.0, f64::INFINITY][rng.gen_range(0usize..3)]),
            _ => Value::str(["a", "b", "", "ab"][rng.gen_range(0usize..4)]),
        }
    }

    /// Draw a random operand (S in the grammar).
    fn gen_operand(rng: &mut TcqRng, cols: usize) -> Expr {
        if rng.gen_bool(0.5) {
            Expr::col(format!("c{}", rng.gen_range(0usize..cols)))
        } else {
            Expr::Literal(gen_value(rng))
        }
    }

    /// Draw a random predicate from the compilable grammar.
    fn gen_pred(rng: &mut TcqRng, cols: usize, fuel: &mut usize) -> Expr {
        let op = [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ][rng.gen_range(0usize..6)];
        if *fuel == 0 || rng.gen_bool(0.4) {
            return gen_operand(rng, cols).cmp(op, gen_operand(rng, cols));
        }
        *fuel -= 1;
        match rng.gen_range(0usize..4) {
            0 => gen_pred(rng, cols, fuel).and(gen_pred(rng, cols, fuel)),
            1 => gen_pred(rng, cols, fuel).or(gen_pred(rng, cols, fuel)),
            2 => Expr::Not(Box::new(gen_pred(rng, cols, fuel))),
            _ => gen_operand(rng, cols).cmp(op, gen_operand(rng, cols)),
        }
    }

    /// Seeded differential property: across randomized schemas, tuples
    /// (untyped cells — NULLs and type mismatches included), and
    /// grammar-shaped predicates, the kernel's `eval` and `eval_pred`
    /// are bit-identical to the interpreter's — same values, same NULL
    /// semantics, and the same errors with the same messages.
    #[test]
    fn kernel_matches_interpreter_on_random_inputs() {
        const COLS: usize = 4;
        let mut rng = seeded(derive_seed(0xC0FF_EE00, 1));
        let schema: SchemaRef = Schema::new(
            (0..COLS)
                .map(|i| Field::new(format!("c{i}"), DataType::Int))
                .collect::<Vec<_>>(),
        )
        .into_ref();
        let mut compiled_seen = 0usize;
        for case in 0..4_000 {
            let mut fuel = rng.gen_range(0usize..5);
            let pred = gen_pred(&mut rng, COLS, &mut fuel);
            let bound = pred.bind(&schema).unwrap();
            let p = Predicate::from_bound(bound.clone(), true);
            compiled_seen += p.is_compiled() as usize;
            for _ in 0..8 {
                let vals: Vec<Value> = (0..COLS).map(|_| gen_value(&mut rng)).collect();
                let t = Tuple::new(schema.clone(), vals, Timestamp::logical(1)).unwrap();
                match (p.eval(&t), bound.eval(&t)) {
                    (Ok(a), Ok(b)) => assert_eq!(a, b, "case {case}: {pred} value diverged"),
                    (Err(a), Err(b)) => assert_eq!(
                        a.to_string(),
                        b.to_string(),
                        "case {case}: {pred} error diverged"
                    ),
                    (a, b) => panic!("case {case}: {pred} Ok/Err diverged: {a:?} vs {b:?}"),
                }
                match (p.eval_pred(&t), bound.eval_pred(&t)) {
                    (Ok(a), Ok(b)) => assert_eq!(a, b, "case {case}: {pred} pred diverged"),
                    (Err(a), Err(b)) => assert_eq!(a.to_string(), b.to_string()),
                    (a, b) => panic!("case {case}: {pred} pred Ok/Err diverged: {a:?} vs {b:?}"),
                }
            }
        }
        assert!(
            compiled_seen > 3_000,
            "grammar-shaped predicates should mostly compile ({compiled_seen}/4000)"
        );
    }

    #[test]
    fn short_circuit_skips_rhs_errors_exactly_like_the_interpreter() {
        let s = schema();
        // FALSE AND (s > 1): interpreter short-circuits before the Str/Int
        // type error; the kernel must too.
        let e = Expr::col("i")
            .cmp(CmpOp::Lt, Expr::lit(i64::MIN))
            .and(Expr::col("s").cmp(CmpOp::Gt, Expr::lit(1i64)));
        let k = compiled(&e, &s);
        let bound = e.bind(&s).unwrap();
        let t = Tuple::new(
            s.clone(),
            vec![
                Value::Int(0),
                Value::Float(0.0),
                Value::str("x"),
                Value::Bool(true),
            ],
            Timestamp::logical(1),
        )
        .unwrap();
        assert!(!k.eval_pred(&t).unwrap());
        assert!(!bound.eval_pred(&t).unwrap());
        // Flip to TRUE AND (...): now both must surface the error.
        let e2 = Expr::col("i")
            .cmp(CmpOp::Ge, Expr::lit(i64::MIN))
            .and(Expr::col("s").cmp(CmpOp::Gt, Expr::lit(1i64)));
        let k2 = compiled(&e2, &s);
        let b2 = e2.bind(&s).unwrap();
        assert_eq!(
            k2.eval_pred(&t).unwrap_err().to_string(),
            b2.eval_pred(&t).unwrap_err().to_string()
        );
    }

    #[test]
    fn deep_nesting_falls_back_instead_of_overflowing() {
        let s = schema();
        // Left-nested ANDs keep depth at 1; right-nested ANDs grow the
        // stack. Build a right-nested chain past MAX_STACK.
        let leaf = || Expr::col("i").cmp(CmpOp::Gt, Expr::lit(0i64));
        let mut e = leaf();
        for _ in 0..(MAX_STACK + 2) {
            e = leaf().and(e);
        }
        let p = Predicate::new(&e, &s, true).unwrap();
        assert!(!p.is_compiled(), "past-MAX_STACK nesting must fall back");
        // ... and still evaluates correctly through the interpreter.
        let t = Tuple::new(
            s.clone(),
            vec![
                Value::Int(1),
                Value::Float(0.0),
                Value::str("x"),
                Value::Bool(true),
            ],
            Timestamp::logical(1),
        )
        .unwrap();
        assert!(p.eval_pred(&t).unwrap());
    }
}
