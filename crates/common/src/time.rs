//! Time in TelegraphCQ-rs.
//!
//! TelegraphCQ §4.1 allows "multiple simultaneous notions of time, such as
//! logical sequence numbers or physical time", and, to accommodate loosely
//! synchronized distributed sources, treats time "as a partial order rather
//! than as a complete order".
//!
//! We model this with [`Timestamp`]: a logical sequence number plus an
//! optional physical clock reading. Two timestamps are *comparable* when
//! they come from the same notion of time; comparing a purely-logical
//! timestamp against a purely-physical one yields [`TimeOrder::Incomparable`].

use std::cmp::Ordering;
use std::fmt;

/// Result of comparing two (partially ordered) timestamps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimeOrder {
    /// Strictly earlier.
    Before,
    /// Same instant.
    Equal,
    /// Strictly later.
    After,
    /// The two timestamps use disjoint notions of time.
    Incomparable,
}

impl TimeOrder {
    /// Collapse to a total `Ordering` if comparable.
    pub fn to_ordering(self) -> Option<Ordering> {
        match self {
            TimeOrder::Before => Some(Ordering::Less),
            TimeOrder::Equal => Some(Ordering::Equal),
            TimeOrder::After => Some(Ordering::Greater),
            TimeOrder::Incomparable => None,
        }
    }
}

/// A point in (partially ordered) stream time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Timestamp {
    /// Logical sequence number within the stream, if assigned.
    pub logical: Option<i64>,
    /// Physical time in integer micros since an arbitrary epoch, if known.
    pub physical: Option<i64>,
}

impl Timestamp {
    /// A purely logical timestamp (tuple sequence number).
    pub const fn logical(seq: i64) -> Self {
        Timestamp {
            logical: Some(seq),
            physical: None,
        }
    }

    /// A purely physical timestamp (wall-clock micros).
    pub const fn physical(micros: i64) -> Self {
        Timestamp {
            logical: None,
            physical: Some(micros),
        }
    }

    /// Both notions at once.
    pub const fn both(seq: i64, micros: i64) -> Self {
        Timestamp {
            logical: Some(seq),
            physical: Some(micros),
        }
    }

    /// The completely unknown timestamp.
    pub const fn unknown() -> Self {
        Timestamp {
            logical: None,
            physical: None,
        }
    }

    /// Partial-order comparison (see module docs).
    ///
    /// When both notions are present on both sides, logical order wins and
    /// physical order is only consulted to break logical ties.
    pub fn compare(&self, other: &Timestamp) -> TimeOrder {
        match (self.logical, other.logical) {
            (Some(a), Some(b)) => {
                if a != b {
                    return ord_to_time(a.cmp(&b));
                }
                match (self.physical, other.physical) {
                    (Some(pa), Some(pb)) => ord_to_time(pa.cmp(&pb)),
                    _ => TimeOrder::Equal,
                }
            }
            _ => match (self.physical, other.physical) {
                (Some(a), Some(b)) => ord_to_time(a.cmp(&b)),
                _ => TimeOrder::Incomparable,
            },
        }
    }

    /// The later of two timestamps under the partial order; when
    /// incomparable, unions the notions (used when a join output inherits
    /// time from both parents).
    pub fn join_max(&self, other: &Timestamp) -> Timestamp {
        match self.compare(other) {
            TimeOrder::Before => *other,
            TimeOrder::After | TimeOrder::Equal => Timestamp {
                logical: max_opt(self.logical, other.logical),
                physical: max_opt(self.physical, other.physical),
            },
            TimeOrder::Incomparable => Timestamp {
                logical: max_opt(self.logical, other.logical),
                physical: max_opt(self.physical, other.physical),
            },
        }
    }

    /// The logical component, defaulting to 0 (streams start at 1 in the
    /// paper's examples, so 0 means "before everything").
    pub fn seq(&self) -> i64 {
        self.logical.unwrap_or(0)
    }
}

fn ord_to_time(o: Ordering) -> TimeOrder {
    match o {
        Ordering::Less => TimeOrder::Before,
        Ordering::Equal => TimeOrder::Equal,
        Ordering::Greater => TimeOrder::After,
    }
}

fn max_opt(a: Option<i64>, b: Option<i64>) -> Option<i64> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.max(y)),
        (x, None) => x,
        (None, y) => y,
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.logical, self.physical) {
            (Some(l), Some(p)) => write!(f, "t{l}@{p}us"),
            (Some(l), None) => write!(f, "t{l}"),
            (None, Some(p)) => write!(f, "@{p}us"),
            (None, None) => write!(f, "t?"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logical_comparison() {
        assert_eq!(
            Timestamp::logical(1).compare(&Timestamp::logical(2)),
            TimeOrder::Before
        );
        assert_eq!(
            Timestamp::logical(5).compare(&Timestamp::logical(5)),
            TimeOrder::Equal
        );
    }

    #[test]
    fn disjoint_notions_are_incomparable() {
        assert_eq!(
            Timestamp::logical(1).compare(&Timestamp::physical(999)),
            TimeOrder::Incomparable
        );
        assert_eq!(
            Timestamp::unknown().compare(&Timestamp::logical(1)),
            TimeOrder::Incomparable
        );
    }

    #[test]
    fn physical_breaks_logical_ties() {
        let a = Timestamp::both(3, 100);
        let b = Timestamp::both(3, 200);
        assert_eq!(a.compare(&b), TimeOrder::Before);
    }

    #[test]
    fn join_max_unions_notions() {
        let a = Timestamp::logical(7);
        let b = Timestamp::physical(50);
        let m = a.join_max(&b);
        assert_eq!(m.logical, Some(7));
        assert_eq!(m.physical, Some(50));
    }

    #[test]
    fn join_max_picks_later() {
        let a = Timestamp::logical(7);
        let b = Timestamp::logical(9);
        assert_eq!(a.join_max(&b).seq(), 9);
        assert_eq!(b.join_max(&a).seq(), 9);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Timestamp::logical(4).to_string(), "t4");
        assert_eq!(Timestamp::both(4, 12).to_string(), "t4@12us");
        assert_eq!(Timestamp::unknown().to_string(), "t?");
    }
}
