//! Scalar expressions over tuples.
//!
//! Queries carry [`Expr`] trees (produced by the parser or built
//! programmatically); before execution an expression is *bound* against a
//! concrete [`Schema`], resolving column references to indexes and checking
//! types, yielding a [`BoundExpr`] that evaluates without name lookups.
//!
//! CACQ-style shared processing (§3.1) decomposes each query's predicate
//! "into its individual boolean factors": [`Expr::conjuncts`] splits the
//! top-level AND, and [`Expr::as_single_column_factor`] recognizes the
//! single-variable factors that grouped filters can index.

use std::cmp::Ordering;
use std::fmt;

use crate::error::{Result, TcqError};
use crate::schema::{DataType, Schema, SchemaRef};
use crate::tuple::Tuple;
use crate::value::Value;

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=` / `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Apply to an `Ordering`.
    pub fn matches(self, ord: Ordering) -> bool {
        match self {
            CmpOp::Eq => ord == Ordering::Equal,
            CmpOp::Ne => ord != Ordering::Equal,
            CmpOp::Lt => ord == Ordering::Less,
            CmpOp::Le => ord != Ordering::Greater,
            CmpOp::Gt => ord == Ordering::Greater,
            CmpOp::Ge => ord != Ordering::Less,
        }
    }

    /// The operator with sides swapped (`a < b` ⇔ `b > a`).
    pub fn flip(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        write!(f, "{s}")
    }
}

/// Arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

impl fmt::Display for ArithOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "/",
        };
        write!(f, "{s}")
    }
}

/// An unbound scalar expression (names not yet resolved).
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal constant.
    Literal(Value),
    /// A column reference, optionally qualified (`c1.closingPrice`).
    Column {
        /// Stream/alias qualifier, if written.
        qualifier: Option<String>,
        /// Column name.
        name: String,
    },
    /// Comparison of two sub-expressions.
    Cmp {
        /// Operator.
        op: CmpOp,
        /// Left side.
        lhs: Box<Expr>,
        /// Right side.
        rhs: Box<Expr>,
    },
    /// Arithmetic over two sub-expressions.
    Arith {
        /// Operator.
        op: ArithOp,
        /// Left side.
        lhs: Box<Expr>,
        /// Right side.
        rhs: Box<Expr>,
    },
    /// Logical AND.
    And(Box<Expr>, Box<Expr>),
    /// Logical OR.
    Or(Box<Expr>, Box<Expr>),
    /// Logical NOT.
    Not(Box<Expr>),
}

impl Expr {
    /// A bare column reference.
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Column {
            qualifier: None,
            name: name.into(),
        }
    }

    /// A qualified column reference.
    pub fn qcol(qualifier: impl Into<String>, name: impl Into<String>) -> Expr {
        Expr::Column {
            qualifier: Some(qualifier.into()),
            name: name.into(),
        }
    }

    /// A literal.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Literal(v.into())
    }

    /// `self <op> rhs`.
    pub fn cmp(self, op: CmpOp, rhs: Expr) -> Expr {
        Expr::Cmp {
            op,
            lhs: Box::new(self),
            rhs: Box::new(rhs),
        }
    }

    /// `self AND rhs`.
    pub fn and(self, rhs: Expr) -> Expr {
        Expr::And(Box::new(self), Box::new(rhs))
    }

    /// `self OR rhs`.
    pub fn or(self, rhs: Expr) -> Expr {
        Expr::Or(Box::new(self), Box::new(rhs))
    }

    /// Split the top-level conjunction into boolean factors, in order.
    pub fn conjuncts(&self) -> Vec<&Expr> {
        let mut out = Vec::new();
        fn walk<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
            match e {
                Expr::And(a, b) => {
                    walk(a, out);
                    walk(b, out);
                }
                other => out.push(other),
            }
        }
        walk(self, &mut out);
        out
    }

    /// Rebuild an expression from conjuncts (inverse of [`Expr::conjuncts`];
    /// `None` for an empty list, meaning TRUE).
    pub fn from_conjuncts(mut parts: Vec<Expr>) -> Option<Expr> {
        let first = if parts.is_empty() {
            return None;
        } else {
            parts.remove(0)
        };
        Some(parts.into_iter().fold(first, |acc, e| acc.and(e)))
    }

    /// If this factor is `column <op> literal` (or the mirrored
    /// `literal <op> column`), return `(qualifier, name, op, value)` — the
    /// shape a CACQ grouped filter can index.
    pub fn as_single_column_factor(&self) -> Option<(Option<&str>, &str, CmpOp, &Value)> {
        if let Expr::Cmp { op, lhs, rhs } = self {
            match (lhs.as_ref(), rhs.as_ref()) {
                (Expr::Column { qualifier, name }, Expr::Literal(v)) => {
                    Some((qualifier.as_deref(), name, *op, v))
                }
                (Expr::Literal(v), Expr::Column { qualifier, name }) => {
                    Some((qualifier.as_deref(), name, op.flip(), v))
                }
                _ => None,
            }
        } else {
            None
        }
    }

    /// Every column referenced, with qualifiers, in evaluation order.
    pub fn columns(&self) -> Vec<(Option<&str>, &str)> {
        let mut out = Vec::new();
        self.visit_columns(&mut |q, n| out.push((q, n)));
        out
    }

    fn visit_columns<'a>(&'a self, f: &mut impl FnMut(Option<&'a str>, &'a str)) {
        match self {
            Expr::Literal(_) => {}
            Expr::Column { qualifier, name } => f(qualifier.as_deref(), name),
            Expr::Cmp { lhs, rhs, .. } | Expr::Arith { lhs, rhs, .. } => {
                lhs.visit_columns(f);
                rhs.visit_columns(f);
            }
            Expr::And(a, b) | Expr::Or(a, b) => {
                a.visit_columns(f);
                b.visit_columns(f);
            }
            Expr::Not(e) => e.visit_columns(f),
        }
    }

    /// Bind column references against `schema`, producing an executable
    /// [`BoundExpr`]. Errors on unknown/ambiguous columns.
    pub fn bind(&self, schema: &Schema) -> Result<BoundExpr> {
        Ok(match self {
            Expr::Literal(v) => BoundExpr::Literal(v.clone()),
            Expr::Column { qualifier, name } => {
                BoundExpr::Column(schema.index_of(qualifier.as_deref(), name)?)
            }
            Expr::Cmp { op, lhs, rhs } => BoundExpr::Cmp {
                op: *op,
                lhs: Box::new(lhs.bind(schema)?),
                rhs: Box::new(rhs.bind(schema)?),
            },
            Expr::Arith { op, lhs, rhs } => BoundExpr::Arith {
                op: *op,
                lhs: Box::new(lhs.bind(schema)?),
                rhs: Box::new(rhs.bind(schema)?),
            },
            Expr::And(a, b) => BoundExpr::And(Box::new(a.bind(schema)?), Box::new(b.bind(schema)?)),
            Expr::Or(a, b) => BoundExpr::Or(Box::new(a.bind(schema)?), Box::new(b.bind(schema)?)),
            Expr::Not(e) => BoundExpr::Not(Box::new(e.bind(schema)?)),
        })
    }

    /// Infer the result type against a schema without fully binding.
    pub fn data_type(&self, schema: &Schema) -> Result<DataType> {
        Ok(match self {
            Expr::Literal(v) => v.data_type().unwrap_or(DataType::Int),
            Expr::Column { qualifier, name } => {
                schema
                    .field(schema.index_of(qualifier.as_deref(), name)?)
                    .data_type
            }
            Expr::Cmp { .. } | Expr::And(..) | Expr::Or(..) | Expr::Not(_) => DataType::Bool,
            Expr::Arith { op, lhs, rhs } => {
                let lt = lhs.data_type(schema)?;
                let rt = rhs.data_type(schema)?;
                if !lt.is_numeric() || !rt.is_numeric() {
                    return Err(TcqError::Type(format!(
                        "arithmetic {op} requires numeric operands, got {lt} and {rt}"
                    )));
                }
                if lt == DataType::Float || rt == DataType::Float || *op == ArithOp::Div {
                    DataType::Float
                } else {
                    DataType::Int
                }
            }
        })
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Literal(v) => write!(f, "{v}"),
            Expr::Column {
                qualifier: Some(q),
                name,
            } => write!(f, "{q}.{name}"),
            Expr::Column {
                qualifier: None,
                name,
            } => write!(f, "{name}"),
            Expr::Cmp { op, lhs, rhs } => write!(f, "({lhs} {op} {rhs})"),
            Expr::Arith { op, lhs, rhs } => write!(f, "({lhs} {op} {rhs})"),
            Expr::And(a, b) => write!(f, "({a} AND {b})"),
            Expr::Or(a, b) => write!(f, "({a} OR {b})"),
            Expr::Not(e) => write!(f, "(NOT {e})"),
        }
    }
}

/// An expression bound to a schema: columns are indexes, evaluation is
/// allocation-free for comparisons.
#[derive(Debug, Clone, PartialEq)]
pub enum BoundExpr {
    /// Constant.
    Literal(Value),
    /// Column by index.
    Column(usize),
    /// Comparison.
    Cmp {
        /// Operator.
        op: CmpOp,
        /// Left side.
        lhs: Box<BoundExpr>,
        /// Right side.
        rhs: Box<BoundExpr>,
    },
    /// Arithmetic.
    Arith {
        /// Operator.
        op: ArithOp,
        /// Left side.
        lhs: Box<BoundExpr>,
        /// Right side.
        rhs: Box<BoundExpr>,
    },
    /// Logical AND (three-valued).
    And(Box<BoundExpr>, Box<BoundExpr>),
    /// Logical OR (three-valued).
    Or(Box<BoundExpr>, Box<BoundExpr>),
    /// Logical NOT (three-valued).
    Not(Box<BoundExpr>),
}

impl BoundExpr {
    /// Evaluate against a tuple, yielding a [`Value`] (possibly NULL).
    pub fn eval(&self, tuple: &Tuple) -> Result<Value> {
        Ok(match self {
            BoundExpr::Literal(v) => v.clone(),
            BoundExpr::Column(i) => tuple.value(*i).clone(),
            BoundExpr::Cmp { op, lhs, rhs } => {
                let l = lhs.eval(tuple)?;
                let r = rhs.eval(tuple)?;
                match l.sql_cmp(&r)? {
                    Some(ord) => Value::Bool(op.matches(ord)),
                    None => Value::Null,
                }
            }
            BoundExpr::Arith { op, lhs, rhs } => {
                let l = lhs.eval(tuple)?;
                let r = rhs.eval(tuple)?;
                match op {
                    ArithOp::Add => l.add(&r)?,
                    ArithOp::Sub => l.sub(&r)?,
                    ArithOp::Mul => l.mul(&r)?,
                    ArithOp::Div => l.div(&r)?,
                }
            }
            BoundExpr::And(a, b) => {
                // Three-valued AND with short-circuit on FALSE.
                match a.eval(tuple)? {
                    Value::Bool(false) => Value::Bool(false),
                    la => match (la, b.eval(tuple)?) {
                        (_, Value::Bool(false)) => Value::Bool(false),
                        (Value::Bool(true), Value::Bool(true)) => Value::Bool(true),
                        (Value::Null, _) | (_, Value::Null) => Value::Null,
                        (l, r) => {
                            return Err(TcqError::Type(format!("AND over {l} and {r}")));
                        }
                    },
                }
            }
            BoundExpr::Or(a, b) => match a.eval(tuple)? {
                Value::Bool(true) => Value::Bool(true),
                la => match (la, b.eval(tuple)?) {
                    (_, Value::Bool(true)) => Value::Bool(true),
                    (Value::Bool(false), Value::Bool(false)) => Value::Bool(false),
                    (Value::Null, _) | (_, Value::Null) => Value::Null,
                    (l, r) => {
                        return Err(TcqError::Type(format!("OR over {l} and {r}")));
                    }
                },
            },
            BoundExpr::Not(e) => match e.eval(tuple)? {
                Value::Bool(b) => Value::Bool(!b),
                Value::Null => Value::Null,
                v => return Err(TcqError::Type(format!("NOT over {v}"))),
            },
        })
    }

    /// Evaluate as a WHERE predicate: NULL (unknown) filters the tuple out.
    pub fn eval_pred(&self, tuple: &Tuple) -> Result<bool> {
        Ok(match self.eval(tuple)? {
            Value::Bool(b) => b,
            Value::Null => false,
            v => return Err(TcqError::Type(format!("predicate evaluated to {v}"))),
        })
    }
}

/// Bind each expression in a slice against the same schema.
pub fn bind_all(exprs: &[Expr], schema: &SchemaRef) -> Result<Vec<BoundExpr>> {
    exprs.iter().map(|e| e.bind(schema)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Field;
    use crate::time::Timestamp;
    use crate::tuple::TupleBuilder;

    fn schema() -> SchemaRef {
        Schema::qualified(
            "s",
            vec![
                Field::new("timestamp", DataType::Int),
                Field::new("stockSymbol", DataType::Str),
                Field::new("closingPrice", DataType::Float),
            ],
        )
        .into_ref()
    }

    fn tick(ts: i64, sym: &str, price: f64) -> Tuple {
        TupleBuilder::new(schema())
            .push(ts)
            .push(sym)
            .push(price)
            .at(Timestamp::logical(ts))
            .build()
            .unwrap()
    }

    #[test]
    fn paper_predicate_msft_over_50() {
        // WHERE stockSymbol = 'MSFT' AND closingPrice > 50.00
        let pred = Expr::col("stockSymbol")
            .cmp(CmpOp::Eq, Expr::lit("MSFT"))
            .and(Expr::col("closingPrice").cmp(CmpOp::Gt, Expr::lit(50.0)));
        let bound = pred.bind(&schema()).unwrap();
        assert!(bound.eval_pred(&tick(1, "MSFT", 51.0)).unwrap());
        assert!(!bound.eval_pred(&tick(1, "MSFT", 49.0)).unwrap());
        assert!(!bound.eval_pred(&tick(1, "IBM", 99.0)).unwrap());
    }

    #[test]
    fn conjunct_decomposition() {
        let pred = Expr::col("a")
            .cmp(CmpOp::Eq, Expr::lit(1i64))
            .and(Expr::col("b").cmp(CmpOp::Gt, Expr::lit(2i64)))
            .and(Expr::col("c").cmp(CmpOp::Lt, Expr::lit(3i64)));
        let parts = pred.conjuncts();
        assert_eq!(parts.len(), 3);
        let rebuilt = Expr::from_conjuncts(parts.into_iter().cloned().collect::<Vec<_>>()).unwrap();
        assert_eq!(rebuilt, pred);
    }

    #[test]
    fn single_column_factor_detection() {
        let f = Expr::col("closingPrice").cmp(CmpOp::Gt, Expr::lit(50.0));
        let (q, name, op, v) = f.as_single_column_factor().unwrap();
        assert_eq!((q, name, op), (None, "closingPrice", CmpOp::Gt));
        assert_eq!(v, &Value::Float(50.0));

        // mirrored literal-first form flips the operator
        let g = Expr::lit(50.0).cmp(CmpOp::Lt, Expr::col("closingPrice"));
        let (_, name, op, _) = g.as_single_column_factor().unwrap();
        assert_eq!((name, op), ("closingPrice", CmpOp::Gt));

        // join factor is not single-column
        let j = Expr::qcol("c1", "timestamp").cmp(CmpOp::Eq, Expr::qcol("c2", "timestamp"));
        assert!(j.as_single_column_factor().is_none());
    }

    #[test]
    fn three_valued_logic() {
        let s = Schema::new(vec![Field::new("x", DataType::Int)]).into_ref();
        let with_null = Tuple::new(s.clone(), vec![Value::Null], Timestamp::unknown()).unwrap();
        // NULL > 5 is unknown -> filtered out
        let pred = Expr::col("x")
            .cmp(CmpOp::Gt, Expr::lit(5i64))
            .bind(&s)
            .unwrap();
        assert!(!pred.eval_pred(&with_null).unwrap());
        // NULL OR TRUE is TRUE
        let or = Expr::col("x")
            .cmp(CmpOp::Gt, Expr::lit(5i64))
            .or(Expr::lit(true))
            .bind(&s)
            .unwrap();
        assert!(or.eval_pred(&with_null).unwrap());
        // NOT NULL is NULL -> false as predicate
        let not = Expr::Not(Box::new(Expr::col("x").cmp(CmpOp::Eq, Expr::lit(1i64))))
            .bind(&s)
            .unwrap();
        assert!(!not.eval_pred(&with_null).unwrap());
    }

    #[test]
    fn arithmetic_and_type_inference() {
        let s = schema();
        let e = Expr::Arith {
            op: ArithOp::Mul,
            lhs: Box::new(Expr::col("closingPrice")),
            rhs: Box::new(Expr::lit(2i64)),
        };
        assert_eq!(e.data_type(&s).unwrap(), DataType::Float);
        let bound = e.bind(&s).unwrap();
        assert_eq!(
            bound.eval(&tick(1, "MSFT", 10.0)).unwrap(),
            Value::Float(20.0)
        );

        let bad = Expr::Arith {
            op: ArithOp::Add,
            lhs: Box::new(Expr::col("stockSymbol")),
            rhs: Box::new(Expr::lit(1i64)),
        };
        assert!(bad.data_type(&s).is_err());
    }

    #[test]
    fn binding_unknown_column_fails() {
        assert!(Expr::col("volume").bind(&schema()).is_err());
        assert!(Expr::qcol("t2", "timestamp").bind(&schema()).is_err());
    }

    #[test]
    fn band_join_predicate_on_concat_schema() {
        // Paper's temporal band join: c2.closingPrice > c1.closingPrice AND
        // c2.timestamp = c1.timestamp, over the concatenated (c1, c2) schema.
        let c1 = schema().with_qualifier("c1");
        let c2 = schema().with_qualifier("c2");
        let joined = c1.concat(&c2).into_ref();
        let pred = Expr::qcol("c2", "closingPrice")
            .cmp(CmpOp::Gt, Expr::qcol("c1", "closingPrice"))
            .and(Expr::qcol("c2", "timestamp").cmp(CmpOp::Eq, Expr::qcol("c1", "timestamp")));
        let bound = pred.bind(&joined).unwrap();

        let t1 = tick(5, "MSFT", 50.0);
        let t2 = tick(5, "IBM", 60.0);
        let j = t1.concat(&t2, joined.clone());
        assert!(bound.eval_pred(&j).unwrap());
        let j2 = t2.concat(&t1, joined);
        // (c1=IBM@60, c2=MSFT@50): 50 > 60 false
        assert!(!bound.eval_pred(&j2).unwrap());
    }

    #[test]
    fn columns_lists_references() {
        let pred = Expr::qcol("c1", "a").cmp(CmpOp::Eq, Expr::col("b"));
        assert_eq!(pred.columns(), vec![(Some("c1"), "a"), (None, "b")]);
    }

    #[test]
    fn display_roundtrip_readable() {
        let pred = Expr::col("price")
            .cmp(CmpOp::Gt, Expr::lit(50.0))
            .and(Expr::col("sym").cmp(CmpOp::Eq, Expr::lit("MSFT")));
        assert_eq!(pred.to_string(), "((price > 50) AND (sym = 'MSFT'))");
    }
}
