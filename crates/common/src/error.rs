//! Error handling for the TelegraphCQ-rs workspace.
//!
//! Library code never panics on user input: parse errors, schema mismatches,
//! disconnected queues, and storage failures are all surfaced through
//! [`TcqError`]. Panics are reserved for internal invariant violations.

use std::fmt;

/// Convenient alias used across the workspace.
pub type Result<T> = std::result::Result<T, TcqError>;

/// The unified error type for TelegraphCQ-rs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TcqError {
    /// A query string failed lexing or parsing.
    Parse {
        /// Human-readable description of what went wrong.
        message: String,
        /// Byte offset into the query text, when known.
        offset: Option<usize>,
    },
    /// Semantic analysis failed (unknown stream, unknown column, type error).
    Analysis(String),
    /// A schema did not match what an operator expected.
    SchemaMismatch(String),
    /// A catalog lookup failed.
    UnknownStream(String),
    /// A catalog registration collided with an existing name.
    DuplicateStream(String),
    /// A Fjord queue endpoint was disconnected.
    Disconnected(&'static str),
    /// The executor rejected a request (e.g. shutdown in progress).
    Executor(String),
    /// Storage-layer failure (I/O, corrupt page, out-of-range scan).
    Storage(String),
    /// A window specification is invalid (e.g. right end before left end).
    InvalidWindow(String),
    /// Flux cluster operation failed (unknown node, no replica, ...).
    Flux(String),
    /// Ingress failure (a source read error, a wrapper that died).
    Ingress(String),
    /// Value-level type error (e.g. comparing Int with Str).
    Type(String),
    /// Resource limits exceeded (queue capacity, module count, query count).
    Capacity(String),
}

impl TcqError {
    /// Build a parse error with no position information.
    pub fn parse(message: impl Into<String>) -> Self {
        TcqError::Parse {
            message: message.into(),
            offset: None,
        }
    }

    /// Build a parse error at a byte offset.
    pub fn parse_at(message: impl Into<String>, offset: usize) -> Self {
        TcqError::Parse {
            message: message.into(),
            offset: Some(offset),
        }
    }
}

impl fmt::Display for TcqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TcqError::Parse {
                message,
                offset: Some(off),
            } => {
                write!(f, "parse error at byte {off}: {message}")
            }
            TcqError::Parse {
                message,
                offset: None,
            } => write!(f, "parse error: {message}"),
            TcqError::Analysis(m) => write!(f, "analysis error: {m}"),
            TcqError::SchemaMismatch(m) => write!(f, "schema mismatch: {m}"),
            TcqError::UnknownStream(name) => write!(f, "unknown stream or table: {name}"),
            TcqError::DuplicateStream(name) => write!(f, "stream already registered: {name}"),
            TcqError::Disconnected(what) => write!(f, "fjord disconnected: {what}"),
            TcqError::Executor(m) => write!(f, "executor error: {m}"),
            TcqError::Storage(m) => write!(f, "storage error: {m}"),
            TcqError::InvalidWindow(m) => write!(f, "invalid window: {m}"),
            TcqError::Flux(m) => write!(f, "flux error: {m}"),
            TcqError::Ingress(m) => write!(f, "ingress error: {m}"),
            TcqError::Type(m) => write!(f, "type error: {m}"),
            TcqError::Capacity(m) => write!(f, "capacity exceeded: {m}"),
        }
    }
}

impl std::error::Error for TcqError {}

impl From<std::io::Error> for TcqError {
    fn from(e: std::io::Error) -> Self {
        TcqError::Storage(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_offset() {
        let e = TcqError::parse_at("unexpected token", 17);
        assert_eq!(e.to_string(), "parse error at byte 17: unexpected token");
    }

    #[test]
    fn display_without_offset() {
        let e = TcqError::parse("dangling FROM");
        assert_eq!(e.to_string(), "parse error: dangling FROM");
    }

    #[test]
    fn io_error_converts_to_storage() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: TcqError = io.into();
        assert!(matches!(e, TcqError::Storage(_)));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            TcqError::UnknownStream("s".into()),
            TcqError::UnknownStream("s".into())
        );
        assert_ne!(TcqError::Disconnected("in"), TcqError::Disconnected("out"));
    }
}
