//! The metadata catalog.
//!
//! TelegraphCQ reuses PostgreSQL's catalog; here we provide the same
//! contract in-process: a thread-safe registry mapping stream/table names to
//! schemas, source kinds, and stable numeric ids. The front-end's semantic
//! analyzer resolves FROM-clause names against it, and ingress wrappers
//! register the streams they produce.

use std::collections::HashMap;
use std::sync::Arc;

use crate::sync::RwLock;

use crate::error::{Result, TcqError};
use crate::schema::SchemaRef;

/// How tuples for a registered source arrive (TelegraphCQ §4.2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceKind {
    /// Unbounded stream fed by a push wrapper (the source connects to us or
    /// we subscribe to it); tuples arrive asynchronously.
    PushStream,
    /// Unbounded stream we poll via a pull wrapper.
    PullStream,
    /// A finite, static table (an input without a WindowIs clause "is
    /// assumed to be a static table by default", §4.1.1).
    Table,
}

impl SourceKind {
    /// True for both stream kinds.
    pub fn is_stream(self) -> bool {
        !matches!(self, SourceKind::Table)
    }
}

/// Catalog entry for one stream or table.
#[derive(Debug, Clone)]
pub struct StreamDef {
    /// Stable id assigned at registration; used in query footprints.
    pub id: u32,
    /// Registered name (case-preserving).
    pub name: String,
    /// Tuple shape.
    pub schema: SchemaRef,
    /// Push/pull/table.
    pub kind: SourceKind,
}

/// Thread-safe registry of streams and tables.
///
/// Cloning a `Catalog` yields a handle onto the same shared registry,
/// mirroring how every PostgreSQL backend sees one system catalog.
#[derive(Clone, Default)]
pub struct Catalog {
    inner: Arc<RwLock<CatalogInner>>,
}

#[derive(Default)]
struct CatalogInner {
    by_name: HashMap<String, StreamDef>,
    next_id: u32,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a stream or table; errors if the name is taken.
    pub fn register(
        &self,
        name: impl Into<String>,
        schema: SchemaRef,
        kind: SourceKind,
    ) -> Result<StreamDef> {
        let name = name.into();
        let key = name.to_ascii_lowercase();
        let mut inner = self.inner.write();
        if inner.by_name.contains_key(&key) {
            return Err(TcqError::DuplicateStream(name));
        }
        let def = StreamDef {
            id: inner.next_id,
            name,
            schema,
            kind,
        };
        inner.next_id += 1;
        inner.by_name.insert(key, def.clone());
        Ok(def)
    }

    /// Look a source up by name (case-insensitive).
    pub fn lookup(&self, name: &str) -> Result<StreamDef> {
        self.inner
            .read()
            .by_name
            .get(&name.to_ascii_lowercase())
            .cloned()
            .ok_or_else(|| TcqError::UnknownStream(name.to_string()))
    }

    /// Remove a source; errors if absent.
    pub fn drop_source(&self, name: &str) -> Result<StreamDef> {
        self.inner
            .write()
            .by_name
            .remove(&name.to_ascii_lowercase())
            .ok_or_else(|| TcqError::UnknownStream(name.to_string()))
    }

    /// All registered definitions, ordered by id.
    pub fn list(&self) -> Vec<StreamDef> {
        let mut v: Vec<StreamDef> = self.inner.read().by_name.values().cloned().collect();
        v.sort_by_key(|d| d.id);
        v
    }

    /// Number of registered sources.
    pub fn len(&self) -> usize {
        self.inner.read().by_name.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{DataType, Field, Schema};

    fn schema() -> SchemaRef {
        Schema::new(vec![Field::new("x", DataType::Int)]).into_ref()
    }

    #[test]
    fn register_and_lookup_case_insensitive() {
        let c = Catalog::new();
        c.register("ClosingStockPrices", schema(), SourceKind::PushStream)
            .unwrap();
        let def = c.lookup("closingstockprices").unwrap();
        assert_eq!(def.name, "ClosingStockPrices");
        assert!(def.kind.is_stream());
    }

    #[test]
    fn duplicate_rejected() {
        let c = Catalog::new();
        c.register("s", schema(), SourceKind::Table).unwrap();
        assert!(matches!(
            c.register("S", schema(), SourceKind::Table),
            Err(TcqError::DuplicateStream(_))
        ));
    }

    #[test]
    fn ids_are_stable_and_increasing() {
        let c = Catalog::new();
        let a = c.register("a", schema(), SourceKind::Table).unwrap();
        let b = c.register("b", schema(), SourceKind::PullStream).unwrap();
        assert!(a.id < b.id);
        // dropping doesn't recycle ids
        c.drop_source("a").unwrap();
        let d = c.register("d", schema(), SourceKind::Table).unwrap();
        assert!(d.id > b.id);
    }

    #[test]
    fn clones_share_state() {
        let c = Catalog::new();
        let c2 = c.clone();
        c.register("s", schema(), SourceKind::PushStream).unwrap();
        assert!(c2.lookup("s").is_ok());
    }

    #[test]
    fn list_ordered_by_id() {
        let c = Catalog::new();
        for name in ["z", "m", "a"] {
            c.register(name, schema(), SourceKind::Table).unwrap();
        }
        let names: Vec<_> = c.list().into_iter().map(|d| d.name).collect();
        assert_eq!(names, vec!["z", "m", "a"]);
    }
}
