//! A compact dynamic bitset.
//!
//! Used for CACQ tuple lineage ("extra state, called tuple lineage, is
//! maintained with each tuple", §3.1) and for grouped-filter match sets:
//! with hundreds of standing queries, per-tuple query sets must be cheap to
//! copy, union, and iterate.

use std::fmt;

/// A growable bitset over `usize` indexes.
#[derive(Default)]
pub struct BitSet {
    words: Vec<u64>,
}

impl Clone for BitSet {
    fn clone(&self) -> Self {
        BitSet {
            words: self.words.clone(),
        }
    }

    /// Reuses `self`'s existing allocation: repeated `clone_from` into a
    /// scratch set is allocation-free once the scratch has grown to size.
    fn clone_from(&mut self, source: &Self) {
        self.words.clear();
        self.words.extend_from_slice(&source.words);
    }
}

impl PartialEq for BitSet {
    /// Content equality: trailing zero words are ignored.
    fn eq(&self, other: &Self) -> bool {
        let n = self.words.len().max(other.words.len());
        (0..n).all(|i| {
            self.words.get(i).copied().unwrap_or(0) == other.words.get(i).copied().unwrap_or(0)
        })
    }
}
impl Eq for BitSet {}

impl std::hash::Hash for BitSet {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // Hash only up to the last nonzero word, consistent with PartialEq.
        let last = self
            .words
            .iter()
            .rposition(|&w| w != 0)
            .map_or(0, |i| i + 1);
        self.words[..last].hash(state);
    }
}

impl BitSet {
    /// An empty set.
    pub fn new() -> Self {
        BitSet::default()
    }

    /// An empty set with room for `bits` without reallocating.
    pub fn with_capacity(bits: usize) -> Self {
        BitSet {
            words: Vec::with_capacity(bits.div_ceil(64)),
        }
    }

    /// Set bit `i`.
    pub fn insert(&mut self, i: usize) {
        let w = i / 64;
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        self.words[w] |= 1u64 << (i % 64);
    }

    /// Clear bit `i`.
    pub fn remove(&mut self, i: usize) {
        let w = i / 64;
        if w < self.words.len() {
            self.words[w] &= !(1u64 << (i % 64));
        }
    }

    /// Test bit `i`.
    pub fn contains(&self, i: usize) -> bool {
        let w = i / 64;
        w < self.words.len() && (self.words[w] >> (i % 64)) & 1 == 1
    }

    /// Number of set bits.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True when no bit is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Remove every bit.
    pub fn clear(&mut self) {
        self.words.clear();
    }

    /// `self |= other`.
    pub fn union_with(&mut self, other: &BitSet) {
        if other.words.len() > self.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a |= b;
        }
    }

    /// `self &= other`.
    pub fn intersect_with(&mut self, other: &BitSet) {
        for (i, a) in self.words.iter_mut().enumerate() {
            *a &= other.words.get(i).copied().unwrap_or(0);
        }
    }

    /// `self &= !other`.
    pub fn difference_with(&mut self, other: &BitSet) {
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a &= !b;
        }
    }

    /// `self |= a & !b` in one word-parallel pass, with no temporary set.
    ///
    /// This is the shape of every "matchers minus exceptions" probe (e.g.
    /// `!=` factors minus the excepted constant, or a prefix bitmap minus
    /// tombstoned factors): fusing it avoids the `clone` + `difference_with`
    /// + `union_with` triple and its per-probe allocation.
    pub fn union_andnot(&mut self, a: &BitSet, b: &BitSet) {
        if a.words.len() > self.words.len() {
            self.words.resize(a.words.len(), 0);
        }
        for (i, (dst, &aw)) in self.words.iter_mut().zip(a.words.iter()).enumerate() {
            *dst |= aw & !b.words.get(i).copied().unwrap_or(0);
        }
    }

    /// Approximate heap footprint in bytes (capacity, not just length).
    pub fn approx_bytes(&self) -> usize {
        self.words.capacity() * std::mem::size_of::<u64>()
    }

    /// True if every bit of `self` is also in `other`.
    pub fn is_subset(&self, other: &BitSet) -> bool {
        self.words
            .iter()
            .enumerate()
            .all(|(i, &w)| w & !other.words.get(i).copied().unwrap_or(0) == 0)
    }

    /// True if the two sets share any bit.
    pub fn intersects(&self, other: &BitSet) -> bool {
        self.words
            .iter()
            .zip(other.words.iter())
            .any(|(&a, &b)| a & b != 0)
    }

    /// Iterate set bits in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }
}

impl FromIterator<usize> for BitSet {
    fn from_iter<T: IntoIterator<Item = usize>>(iter: T) -> Self {
        let mut s = BitSet::new();
        for i in iter {
            s.insert(i);
        }
        s
    }
}

impl fmt::Debug for BitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new();
        assert!(!s.contains(0));
        s.insert(0);
        s.insert(63);
        s.insert(64);
        s.insert(1000);
        assert!(s.contains(0) && s.contains(63) && s.contains(64) && s.contains(1000));
        assert_eq!(s.len(), 4);
        s.remove(64);
        assert!(!s.contains(64));
        assert_eq!(s.len(), 3);
        // removing a bit beyond the allocation is a no-op
        s.remove(100_000);
    }

    #[test]
    fn set_algebra() {
        let a: BitSet = [1, 2, 3, 64].into_iter().collect();
        let b: BitSet = [2, 3, 4, 128].into_iter().collect();
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![1, 2, 3, 4, 64, 128]);
        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.iter().collect::<Vec<_>>(), vec![2, 3]);
        let mut d = a.clone();
        d.difference_with(&b);
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![1, 64]);
    }

    #[test]
    fn subset_and_intersects() {
        let a: BitSet = [1, 2].into_iter().collect();
        let b: BitSet = [1, 2, 3].into_iter().collect();
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
        assert!(a.intersects(&b));
        let c: BitSet = [99].into_iter().collect();
        assert!(!a.intersects(&c));
        // empty set is subset of everything
        assert!(BitSet::new().is_subset(&a));
        assert!(BitSet::new().is_subset(&BitSet::new()));
    }

    #[test]
    fn iteration_order_is_increasing() {
        let s: BitSet = [200, 5, 63, 64, 0].into_iter().collect();
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 5, 63, 64, 200]);
    }

    #[test]
    fn union_andnot_matches_composed_ops() {
        let a: BitSet = [1, 2, 3, 64, 130].into_iter().collect();
        let b: BitSet = [2, 64, 999].into_iter().collect();
        for seed in [vec![], vec![0usize, 3, 200]] {
            let base: BitSet = seed.iter().copied().collect();
            let mut fused = base.clone();
            fused.union_andnot(&a, &b);
            let mut composed = a.clone();
            composed.difference_with(&b);
            composed.union_with(&base);
            assert_eq!(fused, composed);
        }
        // Exceptions set longer than the matcher set must not resize self.
        let mut out = BitSet::new();
        out.union_andnot(&BitSet::new(), &b);
        assert!(out.is_empty());
    }

    #[test]
    fn clone_from_reuses_capacity_and_copies_content() {
        let big: BitSet = [4000].into_iter().collect();
        let small: BitSet = [3].into_iter().collect();
        let mut scratch = BitSet::new();
        scratch.clone_from(&big);
        let cap = scratch.approx_bytes();
        scratch.clone_from(&small);
        assert_eq!(scratch, small);
        assert_eq!(scratch.approx_bytes(), cap, "capacity must be retained");
    }

    #[test]
    fn equality_is_content_based_despite_trailing_zero_words() {
        let mut a = BitSet::new();
        a.insert(500);
        a.remove(500);
        let b = BitSet::new();
        // a has allocated words, b has none, but both are empty...
        assert!(a.is_empty() && b.is_empty());
        // ...and equality, subset, and hashing all agree
        assert_eq!(a, b);
        assert!(a.is_subset(&b) && b.is_subset(&a));
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let hash = |s: &BitSet| {
            let mut h = DefaultHasher::new();
            s.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash(&a), hash(&b));
    }
}
