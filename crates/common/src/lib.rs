//! Shared foundation types for TelegraphCQ-rs.
//!
//! This crate contains the vocabulary every other crate speaks:
//!
//! * [`Value`] — the dynamically typed cell of a stream tuple.
//! * [`Tuple`] — an immutable, cheaply clonable row with a timestamp.
//! * [`Schema`] / [`Field`] — stream and table shapes.
//! * [`Catalog`] — the registry of streams and tables known to the engine.
//! * [`Timestamp`] — logical (sequence) and physical (wall-clock) time, as a
//!   partial order (TelegraphCQ §4.1: "we treat time as a partial order").
//! * [`TcqError`] — the error type used across the workspace.
//!
//! Everything here is deliberately free of engine policy: no queues, no
//! operators, no routing. Those live in the crates layered above.

#![warn(missing_docs)]

pub mod bitset;
pub mod catalog;
pub mod chaos;
pub mod ckpt;
pub mod column;
pub mod error;
pub mod expr;
pub mod hash;
pub mod kernel;
pub mod progress;
pub mod rng;
pub mod schema;
pub mod sync;
pub mod time;
pub mod tuple;
pub mod value;

pub use bitset::BitSet;
pub use catalog::{Catalog, SourceKind, StreamDef};
pub use chaos::{FaultAction, FaultInjector, FaultPlan, FaultPoint, FiredFault, SharedInjector};
pub use ckpt::{CkptReader, CkptWriter};
pub use column::{Column, ColumnBatch, ColumnData};
pub use error::{Result, TcqError};
pub use expr::{ArithOp, BoundExpr, CmpOp, Expr};
pub use hash::{hash_value, Fnv1a, IdentityBuildHasher};
pub use kernel::{ColumnarScratch, Kernel, Predicate};
pub use progress::{ChannelProbe, ChannelSnapshot, ProgressRegistry, ProgressSnapshot};
pub use schema::{DataType, Field, Schema, SchemaRef};
pub use time::{TimeOrder, Timestamp};
pub use tuple::{Tuple, TupleBuilder};
pub use value::Value;
