//! Progress frontier tracking for liveness monitoring.
//!
//! TelegraphCQ's adaptivity assumes the dataflow always makes progress;
//! this module makes progress *observable* so a watchdog can detect when
//! it stops. Following the explicit-progress philosophy of "Consistent
//! Streaming Through Time" (punctuation/CTI contracts instead of implicit
//! luck), every interesting channel in the engine registers a
//! [`ChannelProbe`] with a shared [`ProgressRegistry`]:
//!
//! * the **frontier** is a monotone counter — the sum of all enqueue and
//!   dequeue events (plus any registered monotone counters, e.g. egress
//!   deliveries). Any message moving anywhere advances it.
//! * **in-flight** is the sum of channel depths plus per-DU buffered
//!   counts published by the executor. A stall is "frontier frozen while
//!   in-flight > 0".
//!
//! Probes use relaxed atomics: they are statistics, not synchronisation,
//! and cost two `fetch_add`s per batch on the hot path. Crucially the
//! probes only *observe* — they never change scheduling decisions — so a
//! run with probes attached stays byte-identical to one without.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use crate::sync::Mutex;

/// Relaxed per-channel progress counters. One per instrumented fjord.
#[derive(Debug, Default)]
pub struct ChannelProbe {
    name: String,
    enqueued: AtomicU64,
    dequeued: AtomicU64,
    puncts: AtomicU64,
    rejections: AtomicU64,
    eof_in: AtomicBool,
    eof_out: AtomicBool,
}

impl ChannelProbe {
    /// A probe named for diagnosis output.
    pub fn new(name: impl Into<String>) -> Self {
        ChannelProbe {
            name: name.into(),
            ..Default::default()
        }
    }

    /// The channel's diagnostic name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Record `n` messages entering the channel.
    #[inline]
    pub fn note_enqueue(&self, n: u64) {
        self.enqueued.fetch_add(n, Ordering::Relaxed);
    }

    /// Record `n` messages leaving the channel.
    #[inline]
    pub fn note_dequeue(&self, n: u64) {
        self.dequeued.fetch_add(n, Ordering::Relaxed);
    }

    /// Record a punctuation passing through.
    #[inline]
    pub fn note_punct(&self) {
        self.puncts.fetch_add(1, Ordering::Relaxed);
    }

    /// Record `n` producer offers refused because the channel was full —
    /// the back-pressure signal the stall diagnosis uses to name blocked
    /// producers.
    #[inline]
    pub fn note_reject(&self, n: u64) {
        self.rejections.fetch_add(n, Ordering::Relaxed);
    }

    /// Record EOF entering the channel (producer side finished).
    #[inline]
    pub fn note_eof_in(&self) {
        self.eof_in.store(true, Ordering::Relaxed);
    }

    /// Record EOF leaving the channel (consumer side observed the end).
    #[inline]
    pub fn note_eof_out(&self) {
        self.eof_out.store(true, Ordering::Relaxed);
    }

    /// Messages currently in the channel according to the counters
    /// (saturating: enqueue/dequeue races can transiently invert).
    pub fn depth(&self) -> u64 {
        let e = self.enqueued.load(Ordering::Relaxed);
        let d = self.dequeued.load(Ordering::Relaxed);
        e.saturating_sub(d)
    }

    /// This channel's contribution to the global frontier.
    pub fn frontier(&self) -> u64 {
        self.enqueued.load(Ordering::Relaxed) + self.dequeued.load(Ordering::Relaxed)
    }

    /// Point-in-time copy of the counters.
    pub fn snapshot(&self) -> ChannelSnapshot {
        let enqueued = self.enqueued.load(Ordering::Relaxed);
        let dequeued = self.dequeued.load(Ordering::Relaxed);
        ChannelSnapshot {
            name: self.name.clone(),
            enqueued,
            dequeued,
            depth: enqueued.saturating_sub(dequeued),
            puncts: self.puncts.load(Ordering::Relaxed),
            rejections: self.rejections.load(Ordering::Relaxed),
            eof_in: self.eof_in.load(Ordering::Relaxed),
            eof_out: self.eof_out.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time view of one channel, for stall diagnosis output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelSnapshot {
    /// Channel name as registered.
    pub name: String,
    /// Messages that entered the channel.
    pub enqueued: u64,
    /// Messages that left the channel.
    pub dequeued: u64,
    /// `enqueued - dequeued` (saturating).
    pub depth: u64,
    /// Punctuations that passed through.
    pub puncts: u64,
    /// Producer offers refused because the channel was full.
    pub rejections: u64,
    /// Producer side reached EOF.
    pub eof_in: bool,
    /// Consumer side observed EOF.
    pub eof_out: bool,
}

/// Point-in-time view of the whole registry.
#[derive(Debug, Clone, Default)]
pub struct ProgressSnapshot {
    /// Global monotone frontier (sum of all event counters).
    pub frontier: u64,
    /// Sum of channel depths.
    pub in_flight: u64,
    /// Every registered channel.
    pub channels: Vec<ChannelSnapshot>,
    /// Every registered monotone counter, by name.
    pub counters: Vec<(String, u64)>,
}

impl ProgressSnapshot {
    /// Channels that still hold messages — the usual stall suspects.
    pub fn blocked_channels(&self) -> Vec<&ChannelSnapshot> {
        self.channels.iter().filter(|c| c.depth > 0).collect()
    }
}

#[derive(Debug, Default)]
struct RegistryInner {
    channels: Vec<Arc<ChannelProbe>>,
    counters: Vec<(String, Arc<AtomicU64>)>,
}

/// Shared registry of progress probes. Clones share state; any component
/// can register a channel probe or a monotone counter, and the watchdog
/// reads the aggregate frontier / in-flight totals.
#[derive(Debug, Clone, Default)]
pub struct ProgressRegistry {
    inner: Arc<Mutex<RegistryInner>>,
}

impl ProgressRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (and return) a channel probe named `name`.
    pub fn channel(&self, name: impl Into<String>) -> Arc<ChannelProbe> {
        let probe = Arc::new(ChannelProbe::new(name));
        self.inner.lock().channels.push(Arc::clone(&probe));
        probe
    }

    /// Register (and return) a monotone progress counter named `name`
    /// (e.g. egress deliveries). Bumping it advances the frontier.
    pub fn counter(&self, name: impl Into<String>) -> Arc<AtomicU64> {
        let c = Arc::new(AtomicU64::new(0));
        self.inner
            .lock()
            .counters
            .push((name.into(), Arc::clone(&c)));
        c
    }

    /// The global monotone frontier: any message moving anywhere bumps it.
    pub fn frontier(&self) -> u64 {
        let inner = self.inner.lock();
        let ch: u64 = inner.channels.iter().map(|c| c.frontier()).sum();
        let ct: u64 = inner
            .counters
            .iter()
            .map(|(_, c)| c.load(Ordering::Relaxed))
            .sum();
        ch + ct
    }

    /// Messages currently sitting in registered channels.
    pub fn in_flight(&self) -> u64 {
        self.inner.lock().channels.iter().map(|c| c.depth()).sum()
    }

    /// Full structured snapshot for stall diagnosis.
    pub fn snapshot(&self) -> ProgressSnapshot {
        let inner = self.inner.lock();
        let channels: Vec<ChannelSnapshot> = inner.channels.iter().map(|c| c.snapshot()).collect();
        let counters: Vec<(String, u64)> = inner
            .counters
            .iter()
            .map(|(n, c)| (n.clone(), c.load(Ordering::Relaxed)))
            .collect();
        let frontier = channels
            .iter()
            .map(|c| c.enqueued + c.dequeued)
            .sum::<u64>()
            + counters.iter().map(|(_, v)| *v).sum::<u64>();
        let in_flight = channels.iter().map(|c| c.depth).sum();
        ProgressSnapshot {
            frontier,
            in_flight,
            channels,
            counters,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frontier_advances_on_both_enqueue_and_dequeue() {
        let reg = ProgressRegistry::new();
        let p = reg.channel("ingress");
        assert_eq!(reg.frontier(), 0);
        p.note_enqueue(3);
        assert_eq!(reg.frontier(), 3);
        assert_eq!(reg.in_flight(), 3);
        p.note_dequeue(3);
        assert_eq!(reg.frontier(), 6, "dequeue also advances the frontier");
        assert_eq!(reg.in_flight(), 0);
    }

    #[test]
    fn counters_contribute_to_frontier_but_not_in_flight() {
        let reg = ProgressRegistry::new();
        let delivered = reg.counter("egress.delivered");
        delivered.fetch_add(10, Ordering::Relaxed);
        assert_eq!(reg.frontier(), 10);
        assert_eq!(reg.in_flight(), 0);
    }

    #[test]
    fn snapshot_reports_depths_puncts_and_eof() {
        let reg = ProgressRegistry::new();
        let a = reg.channel("part.0");
        let b = reg.channel("part.1");
        a.note_enqueue(5);
        a.note_dequeue(2);
        a.note_punct();
        b.note_enqueue(1);
        b.note_eof_in();
        let snap = reg.snapshot();
        assert_eq!(snap.in_flight, 4);
        assert_eq!(snap.frontier, 8);
        let blocked = snap.blocked_channels();
        assert_eq!(blocked.len(), 2);
        let a_snap = snap.channels.iter().find(|c| c.name == "part.0").unwrap();
        assert_eq!(a_snap.depth, 3);
        assert_eq!(a_snap.puncts, 1);
        assert!(!a_snap.eof_in);
        let b_snap = snap.channels.iter().find(|c| c.name == "part.1").unwrap();
        assert!(b_snap.eof_in);
        assert!(!b_snap.eof_out);
    }

    #[test]
    fn registry_clones_share_state() {
        let reg = ProgressRegistry::new();
        let reg2 = reg.clone();
        let p = reg.channel("shared");
        p.note_enqueue(1);
        assert_eq!(reg2.frontier(), 1);
        assert_eq!(reg2.snapshot().channels.len(), 1);
    }
}
