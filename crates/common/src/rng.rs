//! Deterministic randomness helpers.
//!
//! Everything stochastic in the engine — workload generators, lottery
//! routing, fault injection — takes an explicit seeded RNG so experiments
//! and tests are reproducible. This module centralizes construction.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The RNG type used across the workspace.
pub type TcqRng = StdRng;

/// Build a deterministic RNG from a 64-bit seed.
pub fn seeded(seed: u64) -> TcqRng {
    StdRng::seed_from_u64(seed)
}

/// Derive a child seed so parallel components (e.g. Flux nodes) get
/// independent but reproducible streams. SplitMix64 finalizer.
pub fn derive_seed(seed: u64, stream: u64) -> u64 {
    let mut z = seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = seeded(42);
        let mut b = seeded(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn derived_seeds_differ_per_stream() {
        let s0 = derive_seed(7, 0);
        let s1 = derive_seed(7, 1);
        assert_ne!(s0, s1);
        // and are stable
        assert_eq!(derive_seed(7, 1), s1);
    }
}
