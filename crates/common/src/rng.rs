//! Deterministic randomness helpers.
//!
//! Everything stochastic in the engine — workload generators, lottery
//! routing, fault injection — takes an explicit seeded RNG so experiments
//! and tests are reproducible. This module centralizes construction.
//!
//! The generator is a self-contained xoshiro256** (Blackman & Vigna),
//! seeded through a SplitMix64 expansion, so the workspace builds with no
//! external crates and the byte-for-byte output of a seed never changes
//! under our feet with a dependency upgrade.

use std::ops::{Range, RangeInclusive};

/// The RNG type used across the workspace: xoshiro256**.
#[derive(Debug, Clone)]
pub struct TcqRng {
    s: [u64; 4],
}

/// Build a deterministic RNG from a 64-bit seed.
pub fn seeded(seed: u64) -> TcqRng {
    TcqRng::seed_from_u64(seed)
}

/// Derive a child seed so parallel components (e.g. Flux nodes) get
/// independent but reproducible streams. SplitMix64 finalizer.
pub fn derive_seed(seed: u64, stream: u64) -> u64 {
    splitmix64(seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

fn splitmix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TcqRng {
    /// Seed via SplitMix64 expansion (the construction the xoshiro authors
    /// recommend for filling the state from a single word).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            splitmix64(sm)
        };
        let s = [next(), next(), next(), next()];
        TcqRng { s }
    }

    /// The raw 64-bit output of xoshiro256**.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform float in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Sample a value of a supported primitive type uniformly over its
    /// whole domain (floats: `[0, 1)`).
    pub fn gen<T: SampleUniform>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from a range, e.g. `rng.gen_range(0..10)`,
    /// `rng.gen_range(1..=6)`, `rng.gen_range(-1.0..1.0)`.
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Unbiased-enough integer in `[0, span)` via 128-bit widening multiply.
    fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }
}

/// Types [`TcqRng::gen`] can produce.
pub trait SampleUniform {
    /// Draw one value.
    fn sample(rng: &mut TcqRng) -> Self;
}

impl SampleUniform for u64 {
    fn sample(rng: &mut TcqRng) -> Self {
        rng.next_u64()
    }
}

impl SampleUniform for u32 {
    fn sample(rng: &mut TcqRng) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl SampleUniform for u8 {
    fn sample(rng: &mut TcqRng) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl SampleUniform for i64 {
    fn sample(rng: &mut TcqRng) -> Self {
        rng.next_u64() as i64
    }
}

impl SampleUniform for bool {
    fn sample(rng: &mut TcqRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl SampleUniform for f64 {
    fn sample(rng: &mut TcqRng) -> Self {
        rng.next_f64()
    }
}

/// Ranges [`TcqRng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draw one value from the range. Panics on an empty range.
    fn sample(self, rng: &mut TcqRng) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut TcqRng) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut TcqRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (start as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )*};
}

int_range!(i64, u64, i32, u32, u16, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut TcqRng) -> f64 {
        assert!(self.start < self.end, "gen_range: empty float range");
        self.start + (self.end - self.start) * rng.next_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = seeded(42);
        let mut b = seeded(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn derived_seeds_differ_per_stream() {
        let s0 = derive_seed(7, 0);
        let s1 = derive_seed(7, 1);
        assert_ne!(s0, s1);
        // and are stable
        assert_eq!(derive_seed(7, 1), s1);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = seeded(9);
        for _ in 0..10_000 {
            let x = rng.gen_range(-5i64..17);
            assert!((-5..17).contains(&x));
            let y = rng.gen_range(0usize..3);
            assert!(y < 3);
            let z = rng.gen_range(1i64..=6);
            assert!((1..=6).contains(&z));
            let f = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn bool_probability_roughly_respected() {
        let mut rng = seeded(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
    }

    #[test]
    fn full_range_covers_both_halves() {
        let mut rng = seeded(1);
        let vals: Vec<i64> = (0..64).map(|_| rng.gen()).collect();
        assert!(vals.iter().any(|&v| v < 0) && vals.iter().any(|&v| v >= 0));
    }
}
