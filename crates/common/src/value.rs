//! Dynamically typed cell values.
//!
//! TelegraphCQ processes heterogeneous streams whose schemas are only known
//! at query-registration time, so tuples are vectors of [`Value`]s. The type
//! lattice is intentionally small — the paper's workloads (stock ticks,
//! network monitors, sensor readings) need integers, floats, strings, bools
//! and timestamps.

use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

use crate::error::{Result, TcqError};
use crate::schema::DataType;

/// A single dynamically typed cell.
///
/// `Value` is cheap to clone: strings are `Arc<str>`.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer (also used for logical timestamps).
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// Interned immutable string.
    Str(Arc<str>),
}

impl Value {
    /// Construct a string value.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// The [`DataType`] of this value; `None` for NULL.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(DataType::Bool),
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Str(_) => Some(DataType::Str),
        }
    }

    /// True iff this is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Approximate memory footprint in bytes: the inline enum plus any
    /// string heap payload. Shared `Arc<str>` payloads are counted once per
    /// holder (an upper bound under interning).
    pub fn approx_bytes(&self) -> usize {
        let heap = match self {
            Value::Str(s) => s.len(),
            _ => 0,
        };
        std::mem::size_of::<Value>() + heap
    }

    /// Interpret as i64, coercing floats with truncation.
    pub fn as_int(&self) -> Result<i64> {
        match self {
            Value::Int(i) => Ok(*i),
            Value::Float(f) => Ok(*f as i64),
            other => Err(TcqError::Type(format!("expected Int, got {other}"))),
        }
    }

    /// Interpret as f64, coercing integers.
    pub fn as_float(&self) -> Result<f64> {
        match self {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            other => Err(TcqError::Type(format!("expected Float, got {other}"))),
        }
    }

    /// Interpret as bool.
    pub fn as_bool(&self) -> Result<bool> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(TcqError::Type(format!("expected Bool, got {other}"))),
        }
    }

    /// Interpret as &str.
    pub fn as_str(&self) -> Result<&str> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(TcqError::Type(format!("expected Str, got {other}"))),
        }
    }

    /// SQL-style three-valued comparison. NULL compares as `None`.
    ///
    /// Numeric types are mutually comparable (Int vs Float compares as
    /// floats); other cross-type comparisons yield a type error.
    pub fn sql_cmp(&self, other: &Value) -> Result<Option<Ordering>> {
        use Value::*;
        Ok(match (self, other) {
            (Null, _) | (_, Null) => None,
            (Bool(a), Bool(b)) => Some(a.cmp(b)),
            (Int(a), Int(b)) => Some(a.cmp(b)),
            (Float(a), Float(b)) => Some(total_f64_cmp(*a, *b)),
            (Int(a), Float(b)) => Some(total_f64_cmp(*a as f64, *b)),
            (Float(a), Int(b)) => Some(total_f64_cmp(*a, *b as f64)),
            (Str(a), Str(b)) => Some(a.as_ref().cmp(b.as_ref())),
            (a, b) => {
                return Err(TcqError::Type(format!("cannot compare {a} with {b}")));
            }
        })
    }

    /// Equality under SQL semantics: NULL = anything is `None` (unknown).
    pub fn sql_eq(&self, other: &Value) -> Result<Option<bool>> {
        Ok(self.sql_cmp(other)?.map(|o| o == Ordering::Equal))
    }

    /// Arithmetic addition with numeric coercion.
    pub fn add(&self, other: &Value) -> Result<Value> {
        numeric_binop(self, other, i64::wrapping_add, |a, b| a + b, "+")
    }

    /// Arithmetic subtraction with numeric coercion.
    pub fn sub(&self, other: &Value) -> Result<Value> {
        numeric_binop(self, other, i64::wrapping_sub, |a, b| a - b, "-")
    }

    /// Arithmetic multiplication with numeric coercion.
    pub fn mul(&self, other: &Value) -> Result<Value> {
        numeric_binop(self, other, i64::wrapping_mul, |a, b| a * b, "*")
    }

    /// Arithmetic division. Integer division by zero is a type error;
    /// float division by zero follows IEEE-754.
    pub fn div(&self, other: &Value) -> Result<Value> {
        use Value::*;
        match (self, other) {
            (Null, _) | (_, Null) => Ok(Null),
            (Int(_), Int(0)) => Err(TcqError::Type("integer division by zero".into())),
            (Int(a), Int(b)) => Ok(Int(a / b)),
            _ => Ok(Float(self.as_float()? / other.as_float()?)),
        }
    }

    /// A *total* order over all values, for use in ordered indexes
    /// (grouped-filter range trees, sort operators). Orders first by type
    /// class — Null < Bool < numeric < Str — then by value; Int and Float
    /// interleave numerically, consistent with [`Value::sql_cmp`] and `Eq`.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        fn class(v: &Value) -> u8 {
            match v {
                Null => 0,
                Bool(_) => 1,
                Int(_) | Float(_) => 2,
                Str(_) => 3,
            }
        }
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => total_f64_cmp(*a, *b),
            (Int(a), Float(b)) => total_f64_cmp(*a as f64, *b),
            (Float(a), Int(b)) => total_f64_cmp(*a, *b as f64),
            (Str(a), Str(b)) => a.as_ref().cmp(b.as_ref()),
            (a, b) => class(a).cmp(&class(b)),
        }
    }

    /// A stable hash key usable for hash joins and grouping.
    ///
    /// Int and Float values that are numerically equal integers hash the
    /// same, matching [`Value::sql_cmp`] (which treats `1` = `1.0`).
    pub fn hash_key(&self, state: &mut impl std::hash::Hasher) {
        use std::hash::Hash;
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            Value::Int(i) => {
                2u8.hash(state);
                (*i as f64).to_bits().hash(state);
            }
            Value::Float(f) => {
                2u8.hash(state);
                // Normalize -0.0 to 0.0 and every NaN bit pattern to the
                // canonical NaN: total_f64_cmp (and thus Eq) treats -0.0
                // == 0.0 and NaN == NaN, so their hashes must agree too.
                let f = if *f == 0.0 {
                    0.0
                } else if f.is_nan() {
                    f64::NAN
                } else {
                    *f
                };
                f.to_bits().hash(state);
            }
            Value::Str(s) => {
                3u8.hash(state);
                s.hash(state);
            }
        }
    }
}

/// Total order over f64 treating NaN as greater than everything, so sorts
/// and comparisons never panic on sensor glitches. Crate-visible so the
/// columnar kernel lanes compare floats exactly like [`Value::sql_cmp`].
pub(crate) fn total_f64_cmp(a: f64, b: f64) -> Ordering {
    match a.partial_cmp(&b) {
        Some(o) => o,
        None => match (a.is_nan(), b.is_nan()) {
            (true, true) => Ordering::Equal,
            (true, false) => Ordering::Greater,
            (false, true) => Ordering::Less,
            (false, false) => unreachable!("partial_cmp only fails on NaN"),
        },
    }
}

fn numeric_binop(
    a: &Value,
    b: &Value,
    int_op: fn(i64, i64) -> i64,
    float_op: fn(f64, f64) -> f64,
    op: &str,
) -> Result<Value> {
    use Value::*;
    match (a, b) {
        (Null, _) | (_, Null) => Ok(Null),
        (Int(x), Int(y)) => Ok(Int(int_op(*x, *y))),
        (Int(_) | Float(_), Int(_) | Float(_)) => Ok(Float(float_op(a.as_float()?, b.as_float()?))),
        _ => Err(TcqError::Type(format!("cannot apply {op} to {a} and {b}"))),
    }
}

impl PartialEq for Value {
    /// Structural equality used by tests and hash-join buckets. Unlike
    /// [`Value::sql_eq`], NULL == NULL here (so tuples can be compared).
    /// Int/Float cross-compare numerically to stay consistent with
    /// [`Value::hash_key`].
    fn eq(&self, other: &Self) -> bool {
        use Value::*;
        match (self, other) {
            (Null, Null) => true,
            (Bool(a), Bool(b)) => a == b,
            (Int(a), Int(b)) => a == b,
            (Float(a), Float(b)) => total_f64_cmp(*a, *b) == Ordering::Equal,
            (Int(a), Float(b)) | (Float(b), Int(a)) => {
                total_f64_cmp(*a as f64, *b) == Ordering::Equal
            }
            (Str(a), Str(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.hash_key(state);
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "'{s}'"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Arc::from(v.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn cross_numeric_comparison() {
        assert_eq!(
            Value::Int(3).sql_cmp(&Value::Float(3.0)).unwrap(),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Float(2.5).sql_cmp(&Value::Int(3)).unwrap(),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn null_comparisons_are_unknown() {
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)).unwrap(), None);
        assert_eq!(Value::Int(1).sql_eq(&Value::Null).unwrap(), None);
    }

    #[test]
    fn incompatible_types_error() {
        assert!(Value::Int(1).sql_cmp(&Value::str("x")).is_err());
        assert!(Value::Bool(true).add(&Value::Int(1)).is_err());
    }

    #[test]
    fn arithmetic_coercion() {
        assert_eq!(Value::Int(2).add(&Value::Int(3)).unwrap(), Value::Int(5));
        assert_eq!(
            Value::Int(2).add(&Value::Float(0.5)).unwrap(),
            Value::Float(2.5)
        );
        assert_eq!(Value::Null.mul(&Value::Int(3)).unwrap(), Value::Null);
    }

    #[test]
    fn integer_division_by_zero_errors() {
        assert!(Value::Int(1).div(&Value::Int(0)).is_err());
        // float path follows IEEE
        let v = Value::Float(1.0).div(&Value::Int(0)).unwrap();
        assert!(matches!(v, Value::Float(f) if f.is_infinite()));
    }

    #[test]
    fn hash_consistent_with_eq_across_int_float() {
        assert_eq!(Value::Int(7), Value::Float(7.0));
        assert_eq!(hash_of(&Value::Int(7)), hash_of(&Value::Float(7.0)));
    }

    #[test]
    fn negative_zero_hashes_like_zero() {
        assert_eq!(Value::Float(-0.0), Value::Float(0.0));
        assert_eq!(hash_of(&Value::Float(-0.0)), hash_of(&Value::Float(0.0)));
    }

    #[test]
    fn every_nan_bit_pattern_hashes_identically() {
        // Eq treats all NaNs as equal (total_f64_cmp), so Hash must too —
        // the SteM prehashed probe path relies on it.
        let quiet = Value::Float(f64::NAN);
        let negated = Value::Float(-f64::NAN);
        let payload = Value::Float(f64::from_bits(f64::NAN.to_bits() | 0xDEAD));
        assert_eq!(quiet, negated);
        assert_eq!(quiet, payload);
        assert_eq!(hash_of(&quiet), hash_of(&negated));
        assert_eq!(hash_of(&quiet), hash_of(&payload));
    }

    /// Seeded property: for randomized value pairs (including adversarial
    /// floats — NaN payloads, signed zeros, integral floats), equal values
    /// always hash equal. Pins the Hash/Eq coherence the prehashed SteM
    /// index depends on.
    #[test]
    fn hash_agrees_with_eq_on_random_value_pairs() {
        let mut rng = crate::rng::seeded(crate::rng::derive_seed(0x4A5E_C0DE, 0));
        let gen_value = |rng: &mut crate::rng::TcqRng| -> Value {
            match rng.gen_range(0usize..8) {
                0 => Value::Null,
                1 => Value::Bool(rng.gen()),
                2 => Value::Int(rng.gen_range(-4i64..4)),
                3 => Value::Int(rng.gen()),
                4 => Value::Float(rng.gen_range(-4.0..4.0)),
                5 => Value::Float(rng.gen_range(-4i64..4) as f64),
                6 => Value::Float(match rng.gen_range(0usize..4) {
                    0 => f64::NAN,
                    1 => -f64::NAN,
                    2 => f64::from_bits(f64::NAN.to_bits() | (rng.gen::<u64>() & 0xFFFF)),
                    _ => -0.0,
                }),
                _ => Value::str(["a", "b", "ab", ""][rng.gen_range(0usize..4)]),
            }
        };
        for case in 0..20_000 {
            let a = gen_value(&mut rng);
            let b = gen_value(&mut rng);
            if a == b {
                assert_eq!(
                    hash_of(&a),
                    hash_of(&b),
                    "case {case}: {a} == {b} but hashes differ"
                );
            }
        }
    }

    #[test]
    fn nan_is_totally_ordered() {
        let nan = Value::Float(f64::NAN);
        assert_eq!(
            nan.sql_cmp(&Value::Float(1e308)).unwrap(),
            Some(Ordering::Greater)
        );
        assert_eq!(nan.sql_cmp(&nan).unwrap(), Some(Ordering::Equal));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::str("MSFT").to_string(), "'MSFT'");
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int(-3).to_string(), "-3");
    }
}
