//! Deterministic fault injection.
//!
//! TelegraphCQ's pitch is continuous dataflow "for an uncertain world":
//! Flux (§2.4) exists to survive node failure and load imbalance, and the
//! ingress wrappers must ride out flaky sources. This module provides the
//! engine-wide chaos layer: a seeded [`FaultPlan`] compiled into a
//! [`FaultInjector`] that components poll at well-known [`FaultPoint`]s.
//! Every fault — scheduled or probabilistic — derives from the plan's seed
//! through [`crate::rng`], so a failing run replays exactly from its seed.
//!
//! Components stay chaos-free by default: polling a point with no injector
//! attached costs one `Option` check and injects nothing.

use std::collections::HashMap;
use std::sync::Arc;

use crate::rng::{seeded, TcqRng};
use crate::sync::Mutex;

/// Where in the engine a fault can be injected. Each point has its own
/// monotonically increasing poll counter, so schedules are expressed as
/// "the Nth time this point is reached".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FaultPoint {
    /// Ingress: a `Source::next_batch` call.
    SourceRead,
    /// Ingress: one tuple about to be enqueued into a Fjord.
    FjordEnqueue,
    /// Flux: one cluster tick (kills, restarts, stragglers).
    ClusterTick,
    /// Flux: one tuple routed into the cluster.
    Ingest,
    /// Flux: mid-way through a partition state movement (state drained
    /// from the source node, not yet installed at the destination).
    StateMove,
    /// Executor: one Dispatch Unit quantum.
    OperatorRun,
    /// Storage: one tuple appended to a stream archive. `Error` makes
    /// the append fail softly (the tuple is not archived); `Overflow`
    /// makes the *next page seal* a torn write — only a partial page
    /// reaches disk, exercising the archive recovery path.
    ArchiveAppend,
    /// Egress: one delivery offer to one subscribed client. `Error` and
    /// `Overflow` fail the offer (the copy is shed); `Stall` marks the
    /// client stuck, forcing an immediate disconnect under the router's
    /// slow-client policy.
    EgressDeliver,
    /// Storage: one checkpoint epoch about to be committed. `Error` fails
    /// the commit softly (the pending delta is kept for retry); `Overflow`
    /// makes the commit a torn write — only a partial block reaches disk,
    /// exercising checkpoint recovery's prefix-validity rule.
    CheckpointWrite,
    /// Storage: one checkpoint block read while opening a store. `Error`
    /// makes the block unreadable, truncating recovery to the valid
    /// prefix before it.
    CheckpointRead,
    /// Exchange merge: one schedule grant about to be consumed. `Stall`
    /// makes the merger refuse the next `ticks` grants — a deterministic
    /// wedged-consumer for liveness testing (the watchdog must detect it
    /// and escalate to the outbox-drain failover).
    StallConsumer,
    /// Exchange worker: one run-closing punctuation about to be forwarded.
    /// Any action drops the punctuation — the merger then waits forever
    /// for the run to close unless the watchdog nudges the worker into
    /// re-emitting it.
    DropPunctuation,
    /// Network: one wire frame decoded off a TCP connection. Polled per
    /// *frame*, not per syscall, so the poll count is a deterministic
    /// function of what the peer sent regardless of how the kernel
    /// segmented it. `Error` poisons the connection (it closes as if the
    /// peer had vanished mid-stream — the dead-client accounting path).
    NetRead,
    /// Network: one wire frame about to be written to a TCP connection.
    /// `Error`/`Overflow` drop the frame (rows counted in the transport's
    /// `rows_dropped_net`); `Stall` holds the writer for `ticks`
    /// milliseconds, simulating a congested socket.
    NetWrite,
}

/// What happens when a fault fires.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultAction {
    /// The faulted operation returns this error.
    Error(String),
    /// The faulted component panics with this message (exercises
    /// supervision; never used by library code on its own).
    Panic(String),
    /// Ingress emits a malformed (wrong-arity) tuple.
    MalformedTuple,
    /// The queue/target behaves as full: the item is rejected or dropped
    /// under the consumer's degradation policy.
    Overflow,
    /// Kill a Flux node.
    KillNode(usize),
    /// Restart (rejoin) a previously killed Flux node.
    RestartNode(usize),
    /// A Flux node straggles: reduced speed for `ticks` ticks.
    Straggler {
        /// Node to slow down.
        node: usize,
        /// Duration of the slowdown in ticks.
        ticks: u64,
    },
    /// The component stalls for `ticks` scheduling units.
    Stall {
        /// Stall length.
        ticks: u64,
    },
}

/// One scheduled fault: fires the `at`-th time `point` is polled
/// (1-based: `at == 1` fires on the first poll).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvent {
    /// Injection point.
    pub point: FaultPoint,
    /// 1-based poll count at which to fire.
    pub at: u64,
    /// The fault.
    pub action: FaultAction,
}

/// A reproducible fault schedule: explicit events plus per-point
/// probabilistic rates, all derived from one seed.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    seed: u64,
    events: Vec<FaultEvent>,
    rates: Vec<(FaultPoint, f64, FaultAction)>,
}

impl FaultPlan {
    /// An empty plan with the given seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            events: Vec::new(),
            rates: Vec::new(),
        }
    }

    /// Schedule `action` for the `at`-th poll of `point` (1-based).
    pub fn at(mut self, point: FaultPoint, at: u64, action: FaultAction) -> Self {
        assert!(at >= 1, "fault schedules are 1-based");
        self.events.push(FaultEvent { point, at, action });
        self
    }

    /// Fire `action` with probability `rate` on every poll of `point`.
    pub fn rate(mut self, point: FaultPoint, rate: f64, action: FaultAction) -> Self {
        self.rates.push((point, rate.clamp(0.0, 1.0), action));
        self
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Compile into an injector.
    pub fn build(self) -> FaultInjector {
        FaultInjector::new(self)
    }

    /// Compile into a thread-safe shared injector.
    pub fn build_shared(self) -> SharedInjector {
        SharedInjector::new(self.build())
    }
}

/// A fault that fired: (point, poll count at that point, action).
pub type FiredFault = (FaultPoint, u64, FaultAction);

/// Polls [`FaultPoint`]s against a [`FaultPlan`]. Deterministic: the same
/// plan polled in the same order fires the same faults.
#[derive(Debug)]
pub struct FaultInjector {
    rng: TcqRng,
    events: Vec<(FaultEvent, bool)>,
    rates: Vec<(FaultPoint, f64, FaultAction)>,
    counters: HashMap<FaultPoint, u64>,
    log: Vec<FiredFault>,
}

impl FaultInjector {
    /// Compile `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        FaultInjector {
            rng: seeded(plan.seed),
            events: plan.events.into_iter().map(|e| (e, false)).collect(),
            rates: plan.rates,
            counters: HashMap::new(),
            log: Vec::new(),
        }
    }

    /// Reach `point` once. Returns the fault to apply, if any fires.
    /// Scheduled events take priority over probabilistic rates; at most
    /// one fault fires per poll.
    pub fn poll(&mut self, point: FaultPoint) -> Option<FaultAction> {
        let count = self.counters.entry(point).or_insert(0);
        *count += 1;
        let count = *count;
        for (event, fired) in &mut self.events {
            if !*fired && event.point == point && event.at == count {
                *fired = true;
                let action = event.action.clone();
                self.log.push((point, count, action.clone()));
                return Some(action);
            }
        }
        // Probabilistic rates: one RNG draw per configured rate at this
        // point, in plan order, so the stream of draws is a pure function
        // of the poll sequence.
        for (p, rate, action) in &self.rates {
            if *p == point && self.rng.gen_bool(*rate) {
                let action = action.clone();
                self.log.push((point, count, action.clone()));
                return Some(action);
            }
        }
        None
    }

    /// How often `point` has been polled.
    pub fn polls(&self, point: FaultPoint) -> u64 {
        self.counters.get(&point).copied().unwrap_or(0)
    }

    /// Every fault fired so far, in firing order. Two runs of the same
    /// seeded scenario must produce identical logs — the determinism
    /// check the chaos experiment asserts.
    pub fn log(&self) -> &[FiredFault] {
        &self.log
    }

    /// Scheduled events that have not fired (e.g. the poll count was never
    /// reached). Useful for asserting a schedule was fully exercised.
    pub fn pending(&self) -> Vec<FaultEvent> {
        self.events
            .iter()
            .filter(|(_, fired)| !fired)
            .map(|(e, _)| e.clone())
            .collect()
    }
}

/// Clonable, thread-safe handle to a [`FaultInjector`] — streamer threads,
/// executor EOs, and the Flux driver can share one schedule.
#[derive(Debug, Clone)]
pub struct SharedInjector {
    inner: Arc<Mutex<FaultInjector>>,
}

impl SharedInjector {
    /// Wrap an injector.
    pub fn new(injector: FaultInjector) -> Self {
        SharedInjector {
            inner: Arc::new(Mutex::new(injector)),
        }
    }

    /// See [`FaultInjector::poll`].
    pub fn poll(&self, point: FaultPoint) -> Option<FaultAction> {
        self.inner.lock().poll(point)
    }

    /// See [`FaultInjector::polls`].
    pub fn polls(&self, point: FaultPoint) -> u64 {
        self.inner.lock().polls(point)
    }

    /// Snapshot of the fired-fault log.
    pub fn log(&self) -> Vec<FiredFault> {
        self.inner.lock().log().to_vec()
    }

    /// See [`FaultInjector::pending`].
    pub fn pending(&self) -> Vec<FaultEvent> {
        self.inner.lock().pending()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheduled_events_fire_exactly_once_at_their_count() {
        let mut inj = FaultPlan::new(1)
            .at(FaultPoint::SourceRead, 3, FaultAction::Panic("boom".into()))
            .build();
        assert_eq!(inj.poll(FaultPoint::SourceRead), None);
        assert_eq!(inj.poll(FaultPoint::SourceRead), None);
        assert_eq!(
            inj.poll(FaultPoint::SourceRead),
            Some(FaultAction::Panic("boom".into()))
        );
        for _ in 0..10 {
            assert_eq!(inj.poll(FaultPoint::SourceRead), None);
        }
        assert_eq!(inj.log().len(), 1);
        assert!(inj.pending().is_empty());
    }

    #[test]
    fn points_count_independently() {
        let mut inj = FaultPlan::new(1)
            .at(FaultPoint::Ingest, 2, FaultAction::Overflow)
            .at(FaultPoint::ClusterTick, 2, FaultAction::KillNode(1))
            .build();
        assert_eq!(inj.poll(FaultPoint::Ingest), None);
        assert_eq!(inj.poll(FaultPoint::ClusterTick), None);
        assert_eq!(inj.poll(FaultPoint::Ingest), Some(FaultAction::Overflow));
        assert_eq!(
            inj.poll(FaultPoint::ClusterTick),
            Some(FaultAction::KillNode(1))
        );
        assert_eq!(inj.polls(FaultPoint::Ingest), 2);
    }

    #[test]
    fn rates_are_deterministic_per_seed() {
        let run = |seed| {
            let mut inj = FaultPlan::new(seed)
                .rate(FaultPoint::Ingest, 0.2, FaultAction::Overflow)
                .build();
            (0..200)
                .map(|_| inj.poll(FaultPoint::Ingest).is_some())
                .collect::<Vec<bool>>()
        };
        assert_eq!(run(7), run(7), "same seed, same faults");
        assert_ne!(run(7), run(8), "different seed, different faults");
        let fired = run(7).iter().filter(|&&b| b).count();
        assert!((10..80).contains(&fired), "rate roughly respected: {fired}");
    }

    #[test]
    fn shared_injector_is_usable_across_threads() {
        let inj = FaultPlan::new(3)
            .at(FaultPoint::OperatorRun, 5, FaultAction::Error("inj".into()))
            .build_shared();
        let inj2 = inj.clone();
        let h = std::thread::spawn(move || {
            let mut fired = 0;
            for _ in 0..10 {
                if inj2.poll(FaultPoint::OperatorRun).is_some() {
                    fired += 1;
                }
            }
            fired
        });
        assert_eq!(h.join().unwrap(), 1);
        assert_eq!(inj.log().len(), 1);
    }

    #[test]
    fn pending_lists_unreached_events() {
        let inj = FaultPlan::new(1)
            .at(FaultPoint::StateMove, 99, FaultAction::KillNode(0))
            .build();
        assert_eq!(inj.pending().len(), 1);
    }

    #[test]
    fn pending_and_log_partition_the_schedule() {
        // A three-event schedule, partially exercised: fired events land in
        // the log, unfired ones stay pending, and together they always
        // cover the whole plan.
        let mut inj = FaultPlan::new(5)
            .at(FaultPoint::ArchiveAppend, 2, FaultAction::Overflow)
            .at(
                FaultPoint::EgressDeliver,
                4,
                FaultAction::Error("slow".into()),
            )
            .at(
                FaultPoint::EgressDeliver,
                50,
                FaultAction::Stall { ticks: 1 },
            )
            .build();
        assert_eq!(inj.pending().len(), 3);
        assert_eq!(inj.log().len(), 0);

        for _ in 0..3 {
            inj.poll(FaultPoint::ArchiveAppend);
        }
        for _ in 0..10 {
            inj.poll(FaultPoint::EgressDeliver);
        }
        let pending = inj.pending();
        assert_eq!(pending.len(), 1, "only the count-50 event is unreached");
        assert_eq!(pending[0].point, FaultPoint::EgressDeliver);
        assert_eq!(pending[0].at, 50);
        assert_eq!(inj.log().len(), 2);
        assert_eq!(
            inj.log().len() + pending.len(),
            3,
            "log + pending covers the schedule"
        );

        for _ in 0..40 {
            inj.poll(FaultPoint::EgressDeliver);
        }
        assert!(inj.pending().is_empty(), "fully exercised schedule");
        assert_eq!(inj.log().len(), 3);
    }

    #[test]
    fn event_takes_priority_over_rate_on_the_same_point() {
        // A certain rate (p = 1.0) and a scheduled event on the same point:
        // the event wins its poll (at most one fault per poll), the rate
        // fires on every other poll, and no RNG draw happens on the event's
        // poll — so the draw stream stays a pure function of the schedule.
        let run = |seed| {
            let mut inj = FaultPlan::new(seed)
                .at(
                    FaultPoint::FjordEnqueue,
                    3,
                    FaultAction::Panic("evt".into()),
                )
                .rate(FaultPoint::FjordEnqueue, 1.0, FaultAction::Overflow)
                .build();
            (0..6)
                .map(|_| inj.poll(FaultPoint::FjordEnqueue))
                .collect::<Vec<_>>()
        };
        let fired = run(11);
        assert_eq!(fired[0], Some(FaultAction::Overflow));
        assert_eq!(fired[1], Some(FaultAction::Overflow));
        assert_eq!(
            fired[2],
            Some(FaultAction::Panic("evt".into())),
            "scheduled event preempts the rate on its poll"
        );
        assert_eq!(fired[3], Some(FaultAction::Overflow));
        assert_eq!(run(11), run(11), "mixed schedules replay deterministically");
    }

    #[test]
    fn rate_and_event_log_shares_one_poll_counter() {
        let mut inj = FaultPlan::new(2)
            .at(FaultPoint::ArchiveAppend, 2, FaultAction::Overflow)
            .rate(
                FaultPoint::ArchiveAppend,
                1.0,
                FaultAction::Error("io".into()),
            )
            .build();
        for _ in 0..3 {
            inj.poll(FaultPoint::ArchiveAppend);
        }
        // Log records the shared per-point poll count for both kinds.
        let counts: Vec<u64> = inj.log().iter().map(|&(_, c, _)| c).collect();
        assert_eq!(counts, vec![1, 2, 3]);
        assert_eq!(
            inj.log()[1],
            (FaultPoint::ArchiveAppend, 2, FaultAction::Overflow)
        );
        assert!(inj.pending().is_empty());
    }
}
