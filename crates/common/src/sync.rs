//! Thin synchronization primitives over `std::sync`, with the ergonomics
//! the engine wants: `lock()`/`read()`/`write()` return guards directly
//! (a poisoned lock is recovered rather than propagated — a panicking
//! holder must not wedge the whole dataflow), and `Condvar::wait_for`
//! takes the guard by `&mut` so wait loops keep their shape.
//!
//! This replaces the `parking_lot` dependency so the workspace builds with
//! no external crates.

use std::sync;
use std::time::Duration;

/// A mutual-exclusion lock whose `lock()` never fails: poisoning from a
/// panicked holder is swallowed (the protected data is engine bookkeeping,
/// and robustness demands we keep serving).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait_for` can temporarily take the std guard
    // by value and put it back.
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Wrap `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        MutexGuard { inner: Some(guard) }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// Result of a timed wait: whether the timeout elapsed.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// True when the wait returned because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Condition variable paired with [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// New condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Wait on `guard` for at most `timeout`. The guard is re-acquired
    /// before returning, spurious wakeups included.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard present");
        let (inner, result) = match self.inner.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r.timed_out()),
            Err(poisoned) => {
                let (g, r) = poisoned.into_inner();
                (g, r.timed_out())
            }
        };
        guard.inner = Some(inner);
        WaitTimeoutResult { timed_out: result }
    }
}

/// Reader-writer lock whose accessors never fail (poisoning recovered).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wrap `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn condvar_wait_for_times_out_and_wakes() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        // Timeout path.
        {
            let (m, c) = &*pair;
            let mut g = m.lock();
            let r = c.wait_for(&mut g, Duration::from_millis(5));
            assert!(r.timed_out());
        }
        // Wakeup path.
        let pair2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, c) = &*pair2;
            *m.lock() = true;
            c.notify_one();
        });
        let (m, c) = &*pair;
        let mut g = m.lock();
        let mut waited = 0;
        while !*g && waited < 200 {
            c.wait_for(&mut g, Duration::from_millis(10));
            waited += 1;
        }
        assert!(*g);
        h.join().unwrap();
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn poisoned_mutex_recovers() {
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), 7, "lock still usable after a panicked holder");
    }
}
