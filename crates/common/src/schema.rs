//! Schemas: the shape of a stream or table.

use std::fmt;
use std::sync::Arc;

use crate::error::{Result, TcqError};

/// The small type lattice of TelegraphCQ-rs values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// Boolean.
    Bool,
    /// 64-bit signed integer (also logical timestamps).
    Int,
    /// 64-bit IEEE float.
    Float,
    /// UTF-8 string.
    Str,
}

impl DataType {
    /// Whether a value of type `other` can appear where `self` is expected
    /// (numeric widening Int -> Float is allowed).
    pub fn accepts(self, other: DataType) -> bool {
        self == other || (self == DataType::Float && other == DataType::Int)
    }

    /// True for Int/Float.
    pub fn is_numeric(self) -> bool {
        matches!(self, DataType::Int | DataType::Float)
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Bool => write!(f, "BOOL"),
            DataType::Int => write!(f, "INT"),
            DataType::Float => write!(f, "FLOAT"),
            DataType::Str => write!(f, "STR"),
        }
    }
}

/// One column of a schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Column name (case-preserving; lookups are case-insensitive).
    pub name: String,
    /// Column type.
    pub data_type: DataType,
}

impl Field {
    /// Construct a field.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        Field {
            name: name.into(),
            data_type,
        }
    }
}

/// Shared, immutable schema handle.
pub type SchemaRef = Arc<Schema>;

/// An ordered list of named, typed columns, optionally qualified by the
/// stream/table (or alias) each column came from.
///
/// Joined tuples carry concatenated schemas whose columns keep their source
/// qualifier, so `c1.closingPrice` and `c2.closingPrice` (the paper's
/// self-join example) remain distinguishable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    fields: Vec<Field>,
    /// Per-field source qualifier (stream name or alias), parallel to
    /// `fields`. Empty string means unqualified.
    qualifiers: Vec<String>,
}

impl Schema {
    /// Build an unqualified schema.
    pub fn new(fields: Vec<Field>) -> Self {
        let n = fields.len();
        Schema {
            fields,
            qualifiers: vec![String::new(); n],
        }
    }

    /// Build a schema where every column is qualified by `qualifier`.
    pub fn qualified(qualifier: impl Into<String>, fields: Vec<Field>) -> Self {
        let q = qualifier.into();
        let n = fields.len();
        Schema {
            fields,
            qualifiers: vec![q; n],
        }
    }

    /// Wrap in an `Arc`.
    pub fn into_ref(self) -> SchemaRef {
        Arc::new(self)
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True when there are no columns.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// The columns in order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// The field at `idx`.
    pub fn field(&self, idx: usize) -> &Field {
        &self.fields[idx]
    }

    /// The qualifier of the field at `idx` (empty if unqualified).
    pub fn qualifier(&self, idx: usize) -> &str {
        &self.qualifiers[idx]
    }

    /// Re-qualify every column with a new source name (used when a stream is
    /// given an alias in a query's FROM clause).
    pub fn with_qualifier(&self, qualifier: &str) -> Schema {
        Schema {
            fields: self.fields.clone(),
            qualifiers: vec![qualifier.to_string(); self.fields.len()],
        }
    }

    /// Find a column by optionally-qualified name, case-insensitively.
    ///
    /// `qualifier: None` matches any qualifier but errors if the bare name
    /// is ambiguous across qualifiers.
    pub fn index_of(&self, qualifier: Option<&str>, name: &str) -> Result<usize> {
        let mut found: Option<usize> = None;
        for (i, f) in self.fields.iter().enumerate() {
            if !f.name.eq_ignore_ascii_case(name) {
                continue;
            }
            if let Some(q) = qualifier {
                if !self.qualifiers[i].eq_ignore_ascii_case(q) {
                    continue;
                }
            }
            if let Some(prev) = found {
                return Err(TcqError::Analysis(format!(
                    "ambiguous column '{name}': matches both {}.{} and {}.{}",
                    self.qualifiers[prev], self.fields[prev].name, self.qualifiers[i], f.name
                )));
            }
            found = Some(i);
        }
        found.ok_or_else(|| {
            let full = match qualifier {
                Some(q) => format!("{q}.{name}"),
                None => name.to_string(),
            };
            TcqError::Analysis(format!("unknown column '{full}'"))
        })
    }

    /// Concatenate two schemas (for join outputs), preserving qualifiers.
    pub fn concat(&self, other: &Schema) -> Schema {
        let mut fields = self.fields.clone();
        fields.extend(other.fields.iter().cloned());
        let mut qualifiers = self.qualifiers.clone();
        qualifiers.extend(other.qualifiers.iter().cloned());
        Schema { fields, qualifiers }
    }

    /// Project a subset of columns by index.
    pub fn project(&self, indices: &[usize]) -> Schema {
        Schema {
            fields: indices.iter().map(|&i| self.fields[i].clone()).collect(),
            qualifiers: indices
                .iter()
                .map(|&i| self.qualifiers[i].clone())
                .collect(),
        }
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, field) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            if !self.qualifiers[i].is_empty() {
                write!(f, "{}.", self.qualifiers[i])?;
            }
            write!(f, "{} {}", field.name, field.data_type)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stock_schema() -> Schema {
        Schema::qualified(
            "ClosingStockPrices",
            vec![
                Field::new("timestamp", DataType::Int),
                Field::new("stockSymbol", DataType::Str),
                Field::new("closingPrice", DataType::Float),
            ],
        )
    }

    #[test]
    fn lookup_is_case_insensitive() {
        let s = stock_schema();
        assert_eq!(s.index_of(None, "CLOSINGPRICE").unwrap(), 2);
        assert_eq!(
            s.index_of(Some("closingstockprices"), "timestamp").unwrap(),
            0
        );
    }

    #[test]
    fn unknown_column_errors() {
        let s = stock_schema();
        assert!(s.index_of(None, "volume").is_err());
        assert!(s.index_of(Some("other"), "timestamp").is_err());
    }

    #[test]
    fn self_join_concat_disambiguates_by_qualifier() {
        let c1 = stock_schema().with_qualifier("c1");
        let c2 = stock_schema().with_qualifier("c2");
        let joined = c1.concat(&c2);
        assert_eq!(joined.len(), 6);
        assert_eq!(joined.index_of(Some("c1"), "closingPrice").unwrap(), 2);
        assert_eq!(joined.index_of(Some("c2"), "closingPrice").unwrap(), 5);
        // bare name is ambiguous
        assert!(joined.index_of(None, "closingPrice").is_err());
    }

    #[test]
    fn projection_keeps_names_and_qualifiers() {
        let s = stock_schema();
        let p = s.project(&[2, 0]);
        assert_eq!(p.field(0).name, "closingPrice");
        assert_eq!(p.field(1).name, "timestamp");
        assert_eq!(p.qualifier(0), "ClosingStockPrices");
    }

    #[test]
    fn accepts_widening() {
        assert!(DataType::Float.accepts(DataType::Int));
        assert!(!DataType::Int.accepts(DataType::Float));
        assert!(DataType::Str.accepts(DataType::Str));
    }

    #[test]
    fn display_renders_qualifiers() {
        let s = Schema::qualified("s", vec![Field::new("a", DataType::Int)]);
        assert_eq!(s.to_string(), "(s.a INT)");
    }
}
