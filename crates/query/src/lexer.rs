//! Tokenizer for the TelegraphCQ query dialect.

use std::fmt;

use tcq_common::{Result, TcqError};

/// One token with its byte offset (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Kind and payload.
    pub kind: TokenKind,
    /// Byte offset in the source text.
    pub offset: usize,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword (case preserved; compare case-insensitively).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Single-quoted string literal (quotes stripped).
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `.`
    Dot,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `=` (also accepts `==`)
    Eq,
    /// `!=` or `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `++`
    PlusPlus,
    /// `--`
    MinusMinus,
    /// `+=`
    PlusEq,
    /// `-=`
    MinusEq,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "identifier '{s}'"),
            TokenKind::Int(v) => write!(f, "integer {v}"),
            TokenKind::Float(v) => write!(f, "float {v}"),
            TokenKind::Str(s) => write!(f, "string '{s}'"),
            TokenKind::Eof => write!(f, "end of input"),
            other => {
                let s = match other {
                    TokenKind::LParen => "(",
                    TokenKind::RParen => ")",
                    TokenKind::LBrace => "{",
                    TokenKind::RBrace => "}",
                    TokenKind::Comma => ",",
                    TokenKind::Semi => ";",
                    TokenKind::Dot => ".",
                    TokenKind::Star => "*",
                    TokenKind::Slash => "/",
                    TokenKind::Plus => "+",
                    TokenKind::Minus => "-",
                    TokenKind::Eq => "=",
                    TokenKind::Ne => "!=",
                    TokenKind::Lt => "<",
                    TokenKind::Le => "<=",
                    TokenKind::Gt => ">",
                    TokenKind::Ge => ">=",
                    TokenKind::PlusPlus => "++",
                    TokenKind::MinusMinus => "--",
                    TokenKind::PlusEq => "+=",
                    TokenKind::MinusEq => "-=",
                    _ => unreachable!(),
                };
                write!(f, "'{s}'")
            }
        }
    }
}

/// Tokenize `src`. SQL-style `--` is NOT a comment here (it is the for-loop
/// decrement); comments use `/* ... */`.
pub fn lex(src: &str) -> Result<Vec<Token>> {
    let bytes = src.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let start = i;
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                i += 1;
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                // block comment
                let mut j = i + 2;
                loop {
                    if j + 1 >= bytes.len() {
                        return Err(TcqError::parse_at("unterminated comment", start));
                    }
                    if bytes[j] == b'*' && bytes[j + 1] == b'/' {
                        break;
                    }
                    j += 1;
                }
                i = j + 2;
            }
            '(' => {
                tokens.push(Token {
                    kind: TokenKind::LParen,
                    offset: start,
                });
                i += 1;
            }
            ')' => {
                tokens.push(Token {
                    kind: TokenKind::RParen,
                    offset: start,
                });
                i += 1;
            }
            '{' => {
                tokens.push(Token {
                    kind: TokenKind::LBrace,
                    offset: start,
                });
                i += 1;
            }
            '}' => {
                tokens.push(Token {
                    kind: TokenKind::RBrace,
                    offset: start,
                });
                i += 1;
            }
            ',' => {
                tokens.push(Token {
                    kind: TokenKind::Comma,
                    offset: start,
                });
                i += 1;
            }
            ';' => {
                tokens.push(Token {
                    kind: TokenKind::Semi,
                    offset: start,
                });
                i += 1;
            }
            '.' => {
                tokens.push(Token {
                    kind: TokenKind::Dot,
                    offset: start,
                });
                i += 1;
            }
            '*' => {
                tokens.push(Token {
                    kind: TokenKind::Star,
                    offset: start,
                });
                i += 1;
            }
            '/' => {
                tokens.push(Token {
                    kind: TokenKind::Slash,
                    offset: start,
                });
                i += 1;
            }
            '+' => {
                if bytes.get(i + 1) == Some(&b'+') {
                    tokens.push(Token {
                        kind: TokenKind::PlusPlus,
                        offset: start,
                    });
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token {
                        kind: TokenKind::PlusEq,
                        offset: start,
                    });
                    i += 2;
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Plus,
                        offset: start,
                    });
                    i += 1;
                }
            }
            '-' => {
                if bytes.get(i + 1) == Some(&b'-') {
                    tokens.push(Token {
                        kind: TokenKind::MinusMinus,
                        offset: start,
                    });
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token {
                        kind: TokenKind::MinusEq,
                        offset: start,
                    });
                    i += 2;
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Minus,
                        offset: start,
                    });
                    i += 1;
                }
            }
            '=' => {
                // accept both '=' and '=='
                if bytes.get(i + 1) == Some(&b'=') {
                    i += 2;
                } else {
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Eq,
                    offset: start,
                });
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token {
                        kind: TokenKind::Ne,
                        offset: start,
                    });
                    i += 2;
                } else {
                    return Err(TcqError::parse_at("expected '=' after '!'", start));
                }
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token {
                        kind: TokenKind::Le,
                        offset: start,
                    });
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'>') {
                    tokens.push(Token {
                        kind: TokenKind::Ne,
                        offset: start,
                    });
                    i += 2;
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Lt,
                        offset: start,
                    });
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token {
                        kind: TokenKind::Ge,
                        offset: start,
                    });
                    i += 2;
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Gt,
                        offset: start,
                    });
                    i += 1;
                }
            }
            '\'' => {
                let mut j = i + 1;
                let mut s = String::new();
                loop {
                    if j >= bytes.len() {
                        return Err(TcqError::parse_at("unterminated string literal", start));
                    }
                    if bytes[j] == b'\'' {
                        // '' escapes a quote
                        if bytes.get(j + 1) == Some(&b'\'') {
                            s.push('\'');
                            j += 2;
                            continue;
                        }
                        break;
                    }
                    s.push(bytes[j] as char);
                    j += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Str(s),
                    offset: start,
                });
                i = j + 1;
            }
            '0'..='9' => {
                let mut j = i;
                while j < bytes.len() && bytes[j].is_ascii_digit() {
                    j += 1;
                }
                let mut is_float = false;
                if j < bytes.len()
                    && bytes[j] == b'.'
                    && bytes.get(j + 1).is_some_and(|b| b.is_ascii_digit())
                {
                    is_float = true;
                    j += 1;
                    while j < bytes.len() && bytes[j].is_ascii_digit() {
                        j += 1;
                    }
                }
                let text = &src[i..j];
                if is_float {
                    let v: f64 = text
                        .parse()
                        .map_err(|_| TcqError::parse_at(format!("bad float '{text}'"), start))?;
                    tokens.push(Token {
                        kind: TokenKind::Float(v),
                        offset: start,
                    });
                } else {
                    let v: i64 = text
                        .parse()
                        .map_err(|_| TcqError::parse_at(format!("bad integer '{text}'"), start))?;
                    tokens.push(Token {
                        kind: TokenKind::Int(v),
                        offset: start,
                    });
                }
                i = j;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut j = i;
                while j < bytes.len()
                    && ((bytes[j] as char).is_ascii_alphanumeric() || bytes[j] == b'_')
                {
                    j += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Ident(src[i..j].to_string()),
                    offset: start,
                });
                i = j;
            }
            other => {
                return Err(TcqError::parse_at(
                    format!("unexpected character '{other}'"),
                    start,
                ));
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        offset: src.len(),
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_paper_query_fragments() {
        use TokenKind::*;
        assert_eq!(
            kinds("WHERE stockSymbol = 'MSFT' and closingPrice > 50.00"),
            vec![
                Ident("WHERE".into()),
                Ident("stockSymbol".into()),
                Eq,
                Str("MSFT".into()),
                Ident("and".into()),
                Ident("closingPrice".into()),
                Gt,
                Float(50.0),
                Eof
            ]
        );
    }

    #[test]
    fn lexes_for_loop_tokens() {
        use TokenKind::*;
        assert_eq!(
            kinds("for (t = ST; t < ST + 50; t +=5 ){ WindowIs(S, t - 4, t); }"),
            vec![
                Ident("for".into()),
                LParen,
                Ident("t".into()),
                Eq,
                Ident("ST".into()),
                Semi,
                Ident("t".into()),
                Lt,
                Ident("ST".into()),
                Plus,
                Int(50),
                Semi,
                Ident("t".into()),
                PlusEq,
                Int(5),
                RParen,
                LBrace,
                Ident("WindowIs".into()),
                LParen,
                Ident("S".into()),
                Comma,
                Ident("t".into()),
                Minus,
                Int(4),
                Comma,
                Ident("t".into()),
                RParen,
                Semi,
                RBrace,
                Eof
            ]
        );
    }

    #[test]
    fn operators_and_equality_forms() {
        use TokenKind::*;
        assert_eq!(
            kinds("== != <> <= >= ++ -- += -="),
            vec![Eq, Ne, Ne, Le, Ge, PlusPlus, MinusMinus, PlusEq, MinusEq, Eof]
        );
    }

    #[test]
    fn string_escapes_and_errors() {
        assert_eq!(
            kinds("'it''s'"),
            vec![TokenKind::Str("it's".into()), TokenKind::Eof]
        );
        assert!(lex("'unterminated").is_err());
        assert!(lex("a ! b").is_err());
        assert!(lex("€").is_err());
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("SELECT /* everything */ *"),
            vec![
                TokenKind::Ident("SELECT".into()),
                TokenKind::Star,
                TokenKind::Eof
            ]
        );
        assert!(lex("/* unterminated").is_err());
    }

    #[test]
    fn qualified_star() {
        use TokenKind::*;
        assert_eq!(kinds("c2.*"), vec![Ident("c2".into()), Dot, Star, Eof]);
    }
}
