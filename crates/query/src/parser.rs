//! Recursive-descent parser for the query dialect.

use tcq_common::{ArithOp, CmpOp, Expr, Result, TcqError, Value};
use tcq_windows::{CondOp, Condition, ForLoop, LinExpr, Step, WindowIs};

use crate::ast::{FromSource, SelectItem, SelectStmt};
use crate::lexer::{lex, Token, TokenKind};

/// Parse one SELECT statement (with optional for-loop window clause).
pub fn parse(src: &str) -> Result<SelectStmt> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.select_stmt()?;
    p.eat_if(&TokenKind::Semi);
    p.expect_eof()?;
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

const AGG_NAMES: [&str; 5] = ["COUNT", "SUM", "AVG", "MIN", "MAX"];

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn offset(&self) -> usize {
        self.tokens[self.pos].offset
    }

    fn bump(&mut self) -> TokenKind {
        let k = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        k
    }

    fn eat_if(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: TokenKind) -> Result<()> {
        if self.peek() == &kind {
            self.bump();
            Ok(())
        } else {
            Err(TcqError::parse_at(
                format!("expected {kind}, found {}", self.peek()),
                self.offset(),
            ))
        }
    }

    fn expect_eof(&mut self) -> Result<()> {
        if matches!(self.peek(), TokenKind::Eof) {
            Ok(())
        } else {
            Err(TcqError::parse_at(
                format!("trailing input: {}", self.peek()),
                self.offset(),
            ))
        }
    }

    /// Is the current token the (case-insensitive) keyword `kw`?
    fn at_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), TokenKind::Ident(s) if s.eq_ignore_ascii_case(kw))
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.at_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(TcqError::parse_at(
                format!("expected keyword {kw}, found {}", self.peek()),
                self.offset(),
            ))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.peek() {
            TokenKind::Ident(s) => {
                let s = s.clone();
                self.bump();
                Ok(s)
            }
            other => Err(TcqError::parse_at(
                format!("expected identifier, found {other}"),
                self.offset(),
            )),
        }
    }

    fn select_stmt(&mut self) -> Result<SelectStmt> {
        self.expect_kw("SELECT")?;
        let items = self.select_list()?;
        self.expect_kw("FROM")?;
        let from = self.parse_from_list()?;
        let where_clause = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        let group_by = if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            Some(self.column_ref()?)
        } else {
            None
        };
        let window = if self.at_kw("for") {
            Some(self.for_loop()?)
        } else {
            None
        };
        Ok(SelectStmt {
            items,
            from,
            where_clause,
            group_by,
            window,
        })
    }

    fn select_list(&mut self) -> Result<Vec<SelectItem>> {
        let mut items = vec![self.select_item()?];
        while self.eat_if(&TokenKind::Comma) {
            items.push(self.select_item()?);
        }
        Ok(items)
    }

    fn select_item(&mut self) -> Result<SelectItem> {
        if self.eat_if(&TokenKind::Star) {
            return Ok(SelectItem::Star);
        }
        // alias.* ?
        if let TokenKind::Ident(name) = self.peek().clone() {
            if self.tokens.get(self.pos + 1).map(|t| &t.kind) == Some(&TokenKind::Dot)
                && self.tokens.get(self.pos + 2).map(|t| &t.kind) == Some(&TokenKind::Star)
            {
                self.bump();
                self.bump();
                self.bump();
                return Ok(SelectItem::QualifiedStar(name));
            }
            // aggregate?
            if AGG_NAMES.iter().any(|a| name.eq_ignore_ascii_case(a))
                && self.tokens.get(self.pos + 1).map(|t| &t.kind) == Some(&TokenKind::LParen)
            {
                self.bump(); // func
                self.bump(); // (
                let arg = if self.eat_if(&TokenKind::Star) {
                    if !name.eq_ignore_ascii_case("COUNT") {
                        return Err(TcqError::parse_at(
                            format!("{name}(*) is only valid for COUNT"),
                            self.offset(),
                        ));
                    }
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(TokenKind::RParen)?;
                let alias = self.opt_alias()?;
                return Ok(SelectItem::Agg {
                    func: name.to_ascii_uppercase(),
                    arg,
                    alias,
                });
            }
        }
        let expr = self.expr()?;
        let alias = self.opt_alias()?;
        Ok(SelectItem::Expr { expr, alias })
    }

    fn opt_alias(&mut self) -> Result<Option<String>> {
        if self.eat_kw("AS") {
            Ok(Some(self.ident()?))
        } else {
            Ok(None)
        }
    }

    fn parse_from_list(&mut self) -> Result<Vec<FromSource>> {
        let mut out = vec![self.parse_from_source()?];
        while self.eat_if(&TokenKind::Comma) {
            out.push(self.parse_from_source()?);
        }
        Ok(out)
    }

    fn parse_from_source(&mut self) -> Result<FromSource> {
        let name = self.ident()?;
        // "S as c1" or bare "S c1"; stop at clause keywords.
        let alias = if self.eat_kw("AS") {
            Some(self.ident()?)
        } else if let TokenKind::Ident(next) = self.peek() {
            let kw = ["WHERE", "GROUP", "FOR"]
                .iter()
                .any(|k| next.eq_ignore_ascii_case(k));
            if kw {
                None
            } else {
                Some(self.ident()?)
            }
        } else {
            None
        };
        Ok(FromSource { name, alias })
    }

    fn column_ref(&mut self) -> Result<(Option<String>, String)> {
        let first = self.ident()?;
        if self.eat_if(&TokenKind::Dot) {
            let second = self.ident()?;
            Ok((Some(first), second))
        } else {
            Ok((None, first))
        }
    }

    // Expression grammar: or < and < not < cmp < add < mul < unary < atom.
    fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.and_expr()?;
        while self.eat_kw("OR") {
            let rhs = self.and_expr()?;
            lhs = lhs.or(rhs);
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.not_expr()?;
        while self.eat_kw("AND") {
            let rhs = self.not_expr()?;
            lhs = lhs.and(rhs);
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.eat_kw("NOT") {
            Ok(Expr::Not(Box::new(self.not_expr()?)))
        } else {
            self.cmp_expr()
        }
    }

    fn cmp_expr(&mut self) -> Result<Expr> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            TokenKind::Eq => CmpOp::Eq,
            TokenKind::Ne => CmpOp::Ne,
            TokenKind::Lt => CmpOp::Lt,
            TokenKind::Le => CmpOp::Le,
            TokenKind::Gt => CmpOp::Gt,
            TokenKind::Ge => CmpOp::Ge,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.add_expr()?;
        Ok(lhs.cmp(op, rhs))
    }

    fn add_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => ArithOp::Add,
                TokenKind::Minus => ArithOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.mul_expr()?;
            lhs = Expr::Arith {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => ArithOp::Mul,
                TokenKind::Slash => ArithOp::Div,
                _ => break,
            };
            self.bump();
            let rhs = self.unary_expr()?;
            lhs = Expr::Arith {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr> {
        if self.eat_if(&TokenKind::Minus) {
            let inner = self.unary_expr()?;
            return Ok(match inner {
                Expr::Literal(Value::Int(v)) => Expr::lit(-v),
                Expr::Literal(Value::Float(v)) => Expr::lit(-v),
                other => Expr::Arith {
                    op: ArithOp::Sub,
                    lhs: Box::new(Expr::lit(0i64)),
                    rhs: Box::new(other),
                },
            });
        }
        self.atom()
    }

    fn atom(&mut self) -> Result<Expr> {
        match self.peek().clone() {
            TokenKind::Int(v) => {
                self.bump();
                Ok(Expr::lit(v))
            }
            TokenKind::Float(v) => {
                self.bump();
                Ok(Expr::lit(v))
            }
            TokenKind::Str(s) => {
                self.bump();
                Ok(Expr::lit(s.as_str()))
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::Ident(name) => {
                if name.eq_ignore_ascii_case("TRUE") {
                    self.bump();
                    return Ok(Expr::lit(true));
                }
                if name.eq_ignore_ascii_case("FALSE") {
                    self.bump();
                    return Ok(Expr::lit(false));
                }
                if name.eq_ignore_ascii_case("NULL") {
                    self.bump();
                    return Ok(Expr::Literal(Value::Null));
                }
                self.bump();
                if self.eat_if(&TokenKind::Dot) {
                    let col = self.ident()?;
                    Ok(Expr::qcol(name, col))
                } else {
                    Ok(Expr::col(name))
                }
            }
            other => Err(TcqError::parse_at(
                format!("expected expression, found {other}"),
                self.offset(),
            )),
        }
    }

    // ---- for-loop window clause (§4.1) ----

    fn for_loop(&mut self) -> Result<ForLoop> {
        self.expect_kw("for")?;
        self.expect(TokenKind::LParen)?;
        // init: "t = <linexpr>" or empty (t starts at 0).
        let init = if self.eat_if(&TokenKind::Semi) {
            LinExpr::constant(0)
        } else {
            self.expect_kw("t")?;
            self.expect(TokenKind::Eq)?;
            let e = self.lin_expr(false)?;
            self.expect(TokenKind::Semi)?;
            e
        };
        // condition: "t <op> <linexpr>"
        self.expect_kw("t")?;
        let op = match self.bump() {
            TokenKind::Eq => CondOp::Eq,
            TokenKind::Lt => CondOp::Lt,
            TokenKind::Le => CondOp::Le,
            TokenKind::Gt => CondOp::Gt,
            TokenKind::Ge => CondOp::Ge,
            other => {
                return Err(TcqError::parse_at(
                    format!("expected comparison in for-loop condition, found {other}"),
                    self.offset(),
                ))
            }
        };
        let bound = self.lin_expr(false)?;
        self.expect(TokenKind::Semi)?;
        // change: t++ / t-- / t += k / t -= k / t = k
        self.expect_kw("t")?;
        let step = match self.bump() {
            TokenKind::PlusPlus => Step::Add(1),
            TokenKind::MinusMinus => Step::Add(-1),
            TokenKind::PlusEq => Step::Add(self.int_literal()?),
            TokenKind::MinusEq => Step::Add(-self.int_literal()?),
            TokenKind::Eq => Step::Set(self.int_literal()?),
            other => {
                return Err(TcqError::parse_at(
                    format!("expected ++, --, +=, -= or = in for-loop change, found {other}"),
                    self.offset(),
                ))
            }
        };
        self.expect(TokenKind::RParen)?;
        self.expect(TokenKind::LBrace)?;
        let mut windows = Vec::new();
        while !self.eat_if(&TokenKind::RBrace) {
            self.expect_kw("WindowIs")?;
            self.expect(TokenKind::LParen)?;
            let stream = self.ident()?;
            self.expect(TokenKind::Comma)?;
            let left = self.lin_expr(true)?;
            self.expect(TokenKind::Comma)?;
            let right = self.lin_expr(true)?;
            self.expect(TokenKind::RParen)?;
            self.expect(TokenKind::Semi)?;
            windows.push(WindowIs::new(stream, left, right));
        }
        if windows.is_empty() {
            return Err(TcqError::parse(
                "for-loop must contain at least one WindowIs",
            ));
        }
        Ok(ForLoop {
            init,
            cond: Condition { op, bound },
            step,
            windows,
        })
    }

    fn int_literal(&mut self) -> Result<i64> {
        let neg = self.eat_if(&TokenKind::Minus);
        match self.bump() {
            TokenKind::Int(v) => Ok(if neg { -v } else { v }),
            other => Err(TcqError::parse_at(
                format!("expected integer, found {other}"),
                self.offset(),
            )),
        }
    }

    /// Linear expression over `t` (if allowed), `ST`, and integers, with
    /// `+`/`-` and integer coefficients via `*` (e.g. `2*t`).
    fn lin_expr(&mut self, allow_t: bool) -> Result<LinExpr> {
        let mut acc = self.lin_term(allow_t)?;
        loop {
            if self.eat_if(&TokenKind::Plus) {
                let rhs = self.lin_term(allow_t)?;
                acc = LinExpr {
                    t_coeff: acc.t_coeff + rhs.t_coeff,
                    st_coeff: acc.st_coeff + rhs.st_coeff,
                    constant: acc.constant + rhs.constant,
                };
            } else if self.eat_if(&TokenKind::Minus) {
                let rhs = self.lin_term(allow_t)?;
                acc = LinExpr {
                    t_coeff: acc.t_coeff - rhs.t_coeff,
                    st_coeff: acc.st_coeff - rhs.st_coeff,
                    constant: acc.constant - rhs.constant,
                };
            } else {
                break;
            }
        }
        Ok(acc)
    }

    fn lin_term(&mut self, allow_t: bool) -> Result<LinExpr> {
        // [int *] var | int
        let neg = self.eat_if(&TokenKind::Minus);
        let base = match self.bump() {
            TokenKind::Int(v) => {
                if self.eat_if(&TokenKind::Star) {
                    let var = self.lin_var(allow_t)?;
                    LinExpr {
                        t_coeff: var.t_coeff * v,
                        st_coeff: var.st_coeff * v,
                        constant: 0,
                    }
                } else {
                    LinExpr::constant(v)
                }
            }
            TokenKind::Ident(name) => self.lin_var_named(&name, allow_t)?,
            other => {
                return Err(TcqError::parse_at(
                    format!("expected window expression term, found {other}"),
                    self.offset(),
                ))
            }
        };
        Ok(if neg {
            LinExpr {
                t_coeff: -base.t_coeff,
                st_coeff: -base.st_coeff,
                constant: -base.constant,
            }
        } else {
            base
        })
    }

    fn lin_var(&mut self, allow_t: bool) -> Result<LinExpr> {
        match self.bump() {
            TokenKind::Ident(name) => self.lin_var_named(&name, allow_t),
            other => Err(TcqError::parse_at(
                format!("expected t or ST, found {other}"),
                self.offset(),
            )),
        }
    }

    fn lin_var_named(&mut self, name: &str, allow_t: bool) -> Result<LinExpr> {
        if name.eq_ignore_ascii_case("t") {
            if !allow_t {
                return Err(TcqError::parse(
                    "loop variable t not allowed in this position",
                ));
            }
            Ok(LinExpr::t())
        } else if name.eq_ignore_ascii_case("ST") {
            Ok(LinExpr::st())
        } else {
            Err(TcqError::parse(format!(
                "unknown window variable '{name}' (expected t or ST)"
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_snapshot_query() {
        let q = parse(
            "SELECT closingPrice, timestamp \
             FROM ClosingStockPrices \
             WHERE stockSymbol = 'MSFT' \
             for (; t==0; t = -1 ){ \
                WindowIs(ClosingStockPrices, 1, 5); \
             }",
        )
        .unwrap();
        assert_eq!(q.items.len(), 2);
        assert_eq!(q.from[0].name, "ClosingStockPrices");
        let w = q.window.unwrap();
        assert_eq!(w.init, LinExpr::constant(0));
        assert_eq!(
            w.cond,
            Condition {
                op: CondOp::Eq,
                bound: LinExpr::constant(0)
            }
        );
        assert_eq!(w.step, Step::Set(-1));
        assert_eq!(w.windows[0].left, LinExpr::constant(1));
        assert_eq!(w.windows[0].right, LinExpr::constant(5));
    }

    #[test]
    fn parses_paper_landmark_query() {
        let q = parse(
            "SELECT closingPrice, timestamp \
             FROM ClosingStockPrices \
             WHERE stockSymbol = 'MSFT' and closingPrice > 50.00 \
             for (t = 101; t <= 1000; t++ ){ \
                 WindowIs(ClosingStockPrices, 101, t); \
             }",
        )
        .unwrap();
        let pred = q.where_clause.unwrap();
        assert_eq!(pred.conjuncts().len(), 2);
        let w = q.window.unwrap();
        assert_eq!(w.step, Step::Add(1));
        assert_eq!(w.windows[0].right, LinExpr::t());
    }

    #[test]
    fn parses_paper_sliding_query() {
        let q = parse(
            "Select AVG(closingPrice) \
             From ClosingStockPrices \
             Where stockSymbol = 'MSFT' \
             for (t = ST; t < ST + 50; t +=5 ){ \
                 WindowIs(ClosingStockPrices, t - 4, t); \
             }",
        )
        .unwrap();
        assert!(q.has_aggregates());
        match &q.items[0] {
            SelectItem::Agg { func, arg, .. } => {
                assert_eq!(func, "AVG");
                assert!(arg.is_some());
            }
            other => panic!("expected aggregate, got {other:?}"),
        }
        let w = q.window.unwrap();
        assert_eq!(w.init, LinExpr::st());
        assert_eq!(w.cond.bound, LinExpr::st_plus(50));
        assert_eq!(w.step, Step::Add(5));
        assert_eq!(w.windows[0].left, LinExpr::t_plus(-4));
    }

    #[test]
    fn parses_paper_band_join_query() {
        let q = parse(
            "Select c2.* \
             FROM ClosingStockPrices as c1, ClosingStockPrices as c2 \
             WHERE c1.stockSymbol = 'MSFT' and \
                   c2.stockSymbol != 'MSFT' and \
                   c2.closingPrice > c1.closingPrice and \
                   c2.timestamp = c1.timestamp \
             for (t = ST; t < ST +20 ; t++ ){ \
                 WindowIs(c1, t - 4, t); \
                 WindowIs(c2, t - 4, t); \
             }",
        )
        .unwrap();
        assert_eq!(q.items[0], SelectItem::QualifiedStar("c2".into()));
        assert_eq!(q.from.len(), 2);
        assert_eq!(q.from[0].alias.as_deref(), Some("c1"));
        assert_eq!(q.from[1].qualifier(), "c2");
        assert_eq!(q.where_clause.as_ref().unwrap().conjuncts().len(), 4);
        assert_eq!(q.window.unwrap().windows.len(), 2);
    }

    #[test]
    fn parses_group_by_and_count_star() {
        let q = parse(
            "SELECT stockSymbol, COUNT(*), AVG(closingPrice) AS avgPrice \
             FROM ClosingStockPrices GROUP BY stockSymbol",
        )
        .unwrap();
        assert_eq!(q.group_by, Some((None, "stockSymbol".into())));
        assert!(matches!(&q.items[1], SelectItem::Agg { func, arg: None, .. } if func == "COUNT"));
        assert!(matches!(&q.items[2], SelectItem::Agg { alias: Some(a), .. } if a == "avgPrice"));
    }

    #[test]
    fn expression_precedence() {
        let q = parse("SELECT * FROM s WHERE a + 2 * b > 10 AND c = 1 OR d = 2").unwrap();
        // ((a + (2*b)) > 10 AND c=1) OR d=2
        match q.where_clause.unwrap() {
            Expr::Or(lhs, _) => match *lhs {
                Expr::And(l, _) => match *l {
                    Expr::Cmp {
                        op: CmpOp::Gt, lhs, ..
                    } => {
                        assert!(matches!(
                            *lhs,
                            Expr::Arith {
                                op: ArithOp::Add,
                                ..
                            }
                        ));
                    }
                    other => panic!("expected >, got {other:?}"),
                },
                other => panic!("expected AND, got {other:?}"),
            },
            other => panic!("expected OR, got {other:?}"),
        }
    }

    #[test]
    fn bare_alias_without_as() {
        let q = parse("SELECT * FROM ClosingStockPrices c1 WHERE c1.closingPrice > 0").unwrap();
        assert_eq!(q.from[0].alias.as_deref(), Some("c1"));
    }

    #[test]
    fn negative_literals_and_unary_minus() {
        let q = parse("SELECT * FROM s WHERE x > -5 AND y < -2.5").unwrap();
        let cs = q.where_clause.unwrap();
        let parts = cs.conjuncts().into_iter().cloned().collect::<Vec<_>>();
        assert!(matches!(&parts[0], Expr::Cmp { rhs, .. } if **rhs == Expr::lit(-5i64)));
        assert!(matches!(&parts[1], Expr::Cmp { rhs, .. } if **rhs == Expr::lit(-2.5)));
    }

    #[test]
    fn error_cases() {
        assert!(parse("SELECT FROM s").is_err());
        assert!(parse("SELECT * WHERE x = 1").is_err());
        assert!(parse("SELECT * FROM s for (t = 0; t < 5; t++) { }").is_err());
        assert!(parse("SELECT * FROM s for (t = 0; t < 5; t++) { WindowIs(s, 1, q); }").is_err());
        assert!(parse("SELECT SUM(*) FROM s").is_err());
        assert!(parse("SELECT * FROM s extra garbage ; more").is_err());
        // t not allowed in loop bound
        assert!(parse("SELECT * FROM s for (t = 0; t < t; t++) { WindowIs(s, 1, t); }").is_err());
    }

    #[test]
    fn backward_window_syntax() {
        let q = parse("SELECT * FROM s for (t = ST; t > 0; t -=10) { WindowIs(s, t - 9, t); }")
            .unwrap();
        let w = q.window.unwrap();
        assert_eq!(w.step, Step::Add(-10));
        assert_eq!(w.cond.op, CondOp::Gt);
    }

    #[test]
    fn coefficient_syntax_in_windows() {
        let q = parse("SELECT * FROM s for (t = 0; t <= 10; t++) { WindowIs(s, 2*t, 2*t + 1); }")
            .unwrap();
        let w = q.window.unwrap();
        assert_eq!(
            w.windows[0].left,
            LinExpr {
                t_coeff: 2,
                st_coeff: 0,
                constant: 0
            }
        );
        assert_eq!(
            w.windows[0].right,
            LinExpr {
                t_coeff: 2,
                st_coeff: 0,
                constant: 1
            }
        );
    }
}
