//! Abstract syntax for the query dialect.

use tcq_common::Expr;
use tcq_windows::ForLoop;

/// One item of the SELECT list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Star,
    /// `alias.*` (the paper's `SELECT c2.*`).
    QualifiedStar(String),
    /// A scalar expression with optional alias.
    Expr {
        /// The expression.
        expr: Expr,
        /// `AS alias`, if given.
        alias: Option<String>,
    },
    /// An aggregate call: `AVG(closingPrice)`, `COUNT(*)`.
    Agg {
        /// Function name, upper-cased (COUNT/SUM/AVG/MIN/MAX).
        func: String,
        /// Argument; `None` for `COUNT(*)`.
        arg: Option<Expr>,
        /// `AS alias`, if given.
        alias: Option<String>,
    },
}

/// One FROM-clause source: stream/table name plus optional alias.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FromSource {
    /// Catalog name.
    pub name: String,
    /// Alias (`FROM ClosingStockPrices as c1`); defaults to the name.
    pub alias: Option<String>,
}

impl FromSource {
    /// The effective qualifier for this source's columns.
    pub fn qualifier(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.name)
    }
}

/// A parsed query: SELECT-FROM-WHERE [GROUP BY] [for-loop window clause].
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    /// SELECT list.
    pub items: Vec<SelectItem>,
    /// FROM sources in order.
    pub from: Vec<FromSource>,
    /// WHERE predicate.
    pub where_clause: Option<Expr>,
    /// GROUP BY column (optionally qualified).
    pub group_by: Option<(Option<String>, String)>,
    /// The §4.1 window clause; `None` means every input is "assumed to be a
    /// static table by default" (§4.1.1) — or, for a pure stream query, an
    /// unbounded landmark window.
    pub window: Option<ForLoop>,
}

impl SelectStmt {
    /// True if any select item is an aggregate.
    pub fn has_aggregates(&self) -> bool {
        self.items
            .iter()
            .any(|i| matches!(i, SelectItem::Agg { .. }))
    }
}
