//! Semantic analysis: name resolution, conjunct classification, type checks.
//!
//! The analyzer turns a parsed [`SelectStmt`] into an [`AnalyzedQuery`]: the
//! form the executor's planner consumes. Its most important job is the CACQ
//! decomposition (§3.1): the WHERE clause is split into boolean factors and
//! each factor classified as
//!
//! * a **single-source factor** (candidate for grouped filters / SelectOps
//!   on that source's tuples),
//! * an **equi-join pair** (candidate for a SteM pair), or
//! * a **cross factor** (band predicates etc. — a filter over joined
//!   tuples).

use tcq_common::{Catalog, CmpOp, Expr, Result, Schema, SchemaRef, StreamDef, TcqError};
use tcq_windows::ForLoop;

use crate::ast::{SelectItem, SelectStmt};

/// A FROM-clause source resolved against the catalog.
#[derive(Debug, Clone)]
pub struct BoundSource {
    /// Catalog name.
    pub name: String,
    /// Effective qualifier (alias or name).
    pub alias: String,
    /// Catalog entry.
    pub def: StreamDef,
    /// The source's schema, re-qualified by the alias.
    pub schema: SchemaRef,
    /// Whether the query windows this source (un-windowed stream inputs
    /// default to static tables / unbounded landmark semantics, §4.1.1).
    pub windowed: bool,
}

/// An equi-join boolean factor between two sources.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JoinPair {
    /// Index of the left source in [`AnalyzedQuery::sources`].
    pub left: usize,
    /// Join column in the left source's schema.
    pub left_col: usize,
    /// Index of the right source.
    pub right: usize,
    /// Join column in the right source's schema.
    pub right_col: usize,
}

/// One aggregate of the SELECT list.
#[derive(Debug, Clone)]
pub struct AggItem {
    /// Upper-cased function name (COUNT/SUM/AVG/MIN/MAX).
    pub func: String,
    /// Argument (`None` = `COUNT(*)`).
    pub arg: Option<Expr>,
    /// Output column name.
    pub name: String,
}

/// The analyzer's output: everything the planner needs.
#[derive(Debug, Clone)]
pub struct AnalyzedQuery {
    /// Resolved FROM sources, in order.
    pub sources: Vec<BoundSource>,
    /// Concatenation of all source schemas (the widest tuple shape).
    pub combined_schema: SchemaRef,
    /// Factors referencing exactly one source: `(source index, factor)`.
    pub single_factors: Vec<(usize, Expr)>,
    /// Equi-join factors.
    pub join_pairs: Vec<JoinPair>,
    /// Remaining multi-source factors (e.g. band predicates).
    pub cross_factors: Vec<Expr>,
    /// Scalar projection (star-expanded); empty iff the query aggregates.
    pub projection: Vec<(Expr, Option<String>)>,
    /// Aggregates of the SELECT list.
    pub aggregates: Vec<AggItem>,
    /// GROUP BY column resolved to (source index, column index).
    pub group_by: Option<(usize, usize)>,
    /// The window clause.
    pub window: Option<ForLoop>,
}

impl AnalyzedQuery {
    /// True when the query joins two or more sources.
    pub fn is_join(&self) -> bool {
        self.sources.len() > 1
    }

    /// The source index for a qualifier.
    pub fn source_index(&self, qualifier: &str) -> Option<usize> {
        self.sources
            .iter()
            .position(|s| s.alias.eq_ignore_ascii_case(qualifier))
    }
}

/// Analyze a parsed statement against the catalog.
pub fn analyze(stmt: &SelectStmt, catalog: &Catalog) -> Result<AnalyzedQuery> {
    if stmt.from.is_empty() {
        return Err(TcqError::Analysis("query has no FROM source".into()));
    }
    // 1. Resolve sources.
    let mut sources: Vec<BoundSource> = Vec::with_capacity(stmt.from.len());
    for f in &stmt.from {
        let def = catalog.lookup(&f.name)?;
        let alias = f.qualifier().to_string();
        if sources.iter().any(|s| s.alias.eq_ignore_ascii_case(&alias)) {
            return Err(TcqError::Analysis(format!(
                "duplicate source alias '{alias}' (self-joins need distinct aliases)"
            )));
        }
        let schema = def.schema.with_qualifier(&alias).into_ref();
        sources.push(BoundSource {
            name: f.name.clone(),
            alias,
            def,
            schema,
            windowed: false,
        });
    }

    // 2. Window clause: WindowIs streams must be sources; mark them.
    if let Some(w) = &stmt.window {
        for wi in &w.windows {
            match sources
                .iter_mut()
                .find(|s| s.alias.eq_ignore_ascii_case(&wi.stream))
            {
                Some(s) => s.windowed = true,
                None => {
                    return Err(TcqError::Analysis(format!(
                        "WindowIs references '{}', which is not a FROM source",
                        wi.stream
                    )))
                }
            }
        }
        // The spec itself must be well-formed (e.g. classifiable).
        tcq_windows::spec::classify(w)?;
    }
    for s in &sources {
        if s.def.kind.is_stream() && !s.windowed && sources.len() > 1 {
            return Err(TcqError::Analysis(format!(
                "stream '{}' participates in a join without a WindowIs: joins over \
                 unbounded streams require finite windows (§4.1)",
                s.alias
            )));
        }
    }

    // 3. Combined schema.
    let mut combined = Schema::new(vec![]);
    for s in &sources {
        combined = combined.concat(&s.schema);
    }
    let combined_schema = combined.into_ref();

    // 4. Classify WHERE factors.
    let mut single_factors = Vec::new();
    let mut join_pairs = Vec::new();
    let mut cross_factors = Vec::new();
    if let Some(pred) = &stmt.where_clause {
        // The whole predicate must bind (surface type errors early).
        pred.bind(&combined_schema)?;
        for factor in pred.conjuncts() {
            let mut owners: Vec<usize> = Vec::new();
            for (q, name) in factor.columns() {
                let idx = resolve_source(&sources, q, name)?;
                if !owners.contains(&idx) {
                    owners.push(idx);
                }
            }
            match owners.len() {
                0 | 1 => {
                    // Constant factors attach to the first source.
                    single_factors.push((owners.first().copied().unwrap_or(0), factor.clone()));
                }
                2 => {
                    if let Some(jp) = as_join_pair(factor, &sources)? {
                        join_pairs.push(jp);
                    } else {
                        cross_factors.push(factor.clone());
                    }
                }
                _ => cross_factors.push(factor.clone()),
            }
        }
    }
    if sources.len() > 1 && join_pairs.is_empty() {
        return Err(TcqError::Analysis(
            "multi-source query needs at least one equi-join predicate \
             (cartesian products over streams are not supported)"
                .into(),
        ));
    }

    // 5. Projection / aggregates.
    let mut projection = Vec::new();
    let mut aggregates = Vec::new();
    for (i, item) in stmt.items.iter().enumerate() {
        match item {
            SelectItem::Star => {
                for s in &sources {
                    push_source_columns(s, &mut projection);
                }
            }
            SelectItem::QualifiedStar(q) => {
                let idx = sources
                    .iter()
                    .position(|s| s.alias.eq_ignore_ascii_case(q))
                    .ok_or_else(|| {
                        TcqError::Analysis(format!("'{q}.*' references unknown source"))
                    })?;
                push_source_columns(&sources[idx], &mut projection);
            }
            SelectItem::Expr { expr, alias } => {
                expr.data_type(&combined_schema)?; // type-check
                projection.push((expr.clone(), alias.clone()));
            }
            SelectItem::Agg { func, arg, alias } => {
                if let Some(a) = arg {
                    let dt = a.data_type(&combined_schema)?;
                    if matches!(func.as_str(), "SUM" | "AVG") && !dt.is_numeric() {
                        return Err(TcqError::Analysis(format!(
                            "{func} requires a numeric argument, got {dt}"
                        )));
                    }
                }
                let name = alias
                    .clone()
                    .unwrap_or_else(|| format!("{}_{i}", func.to_lowercase()));
                aggregates.push(AggItem {
                    func: func.clone(),
                    arg: arg.clone(),
                    name,
                });
            }
        }
    }
    if !aggregates.is_empty() {
        // SQL rule: non-aggregate items must be the GROUP BY column.
        for (e, _) in &projection {
            match (e, &stmt.group_by) {
                (Expr::Column { qualifier, name }, Some((gq, gn)))
                    if name.eq_ignore_ascii_case(gn)
                        && (qualifier.is_none()
                            || gq.is_none()
                            || qualifier
                                .as_deref()
                                .unwrap()
                                .eq_ignore_ascii_case(gq.as_deref().unwrap())) => {}
                _ => {
                    return Err(TcqError::Analysis(format!(
                        "non-aggregate select item '{e}' must appear in GROUP BY"
                    )))
                }
            }
        }
    }

    // 6. GROUP BY resolution.
    let group_by = match &stmt.group_by {
        Some((q, name)) => {
            let src = resolve_source(&sources, q.as_deref(), name)?;
            let col = sources[src].schema.index_of(q.as_deref(), name)?;
            if aggregates.is_empty() {
                return Err(TcqError::Analysis(
                    "GROUP BY without aggregates is not supported".into(),
                ));
            }
            Some((src, col))
        }
        None => None,
    };

    Ok(AnalyzedQuery {
        sources,
        combined_schema,
        single_factors,
        join_pairs,
        cross_factors,
        projection,
        aggregates,
        group_by,
        window: stmt.window.clone(),
    })
}

fn push_source_columns(s: &BoundSource, projection: &mut Vec<(Expr, Option<String>)>) {
    for f in s.schema.fields() {
        projection.push((Expr::qcol(&s.alias, &f.name), Some(f.name.clone())));
    }
}

/// Which source owns column `(qualifier, name)`? Errors on unknown or
/// (for unqualified names) ambiguous references.
fn resolve_source(sources: &[BoundSource], qualifier: Option<&str>, name: &str) -> Result<usize> {
    match qualifier {
        Some(q) => sources
            .iter()
            .position(|s| s.alias.eq_ignore_ascii_case(q))
            .ok_or_else(|| TcqError::Analysis(format!("unknown source qualifier '{q}'"))),
        None => {
            let mut found = None;
            for (i, s) in sources.iter().enumerate() {
                if s.schema.index_of(None, name).is_ok() {
                    if found.is_some() {
                        return Err(TcqError::Analysis(format!(
                            "column '{name}' is ambiguous across sources"
                        )));
                    }
                    found = Some(i);
                }
            }
            found.ok_or_else(|| TcqError::Analysis(format!("unknown column '{name}'")))
        }
    }
}

/// Recognize `colA = colB` across two different sources.
fn as_join_pair(factor: &Expr, sources: &[BoundSource]) -> Result<Option<JoinPair>> {
    let Expr::Cmp {
        op: CmpOp::Eq,
        lhs,
        rhs,
    } = factor
    else {
        return Ok(None);
    };
    let (
        Expr::Column {
            qualifier: ql,
            name: nl,
        },
        Expr::Column {
            qualifier: qr,
            name: nr,
        },
    ) = (lhs.as_ref(), rhs.as_ref())
    else {
        return Ok(None);
    };
    let si_l = resolve_source(sources, ql.as_deref(), nl)?;
    let si_r = resolve_source(sources, qr.as_deref(), nr)?;
    if si_l == si_r {
        return Ok(None);
    }
    let col_l = sources[si_l].schema.index_of(ql.as_deref(), nl)?;
    let col_r = sources[si_r].schema.index_of(qr.as_deref(), nr)?;
    Ok(Some(JoinPair {
        left: si_l,
        left_col: col_l,
        right: si_r,
        right_col: col_r,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use tcq_common::{DataType, Field, SourceKind};

    fn catalog() -> Catalog {
        let c = Catalog::new();
        let stock = Schema::new(vec![
            Field::new("timestamp", DataType::Int),
            Field::new("stockSymbol", DataType::Str),
            Field::new("closingPrice", DataType::Float),
        ])
        .into_ref();
        c.register("ClosingStockPrices", stock, SourceKind::PushStream)
            .unwrap();
        let trades = Schema::new(vec![
            Field::new("timestamp", DataType::Int),
            Field::new("sym", DataType::Str),
            Field::new("volume", DataType::Int),
        ])
        .into_ref();
        c.register("Trades", trades, SourceKind::PushStream)
            .unwrap();
        let static_info = Schema::new(vec![
            Field::new("sym", DataType::Str),
            Field::new("sector", DataType::Str),
        ])
        .into_ref();
        c.register("CompanyInfo", static_info, SourceKind::Table)
            .unwrap();
        c
    }

    fn analyze_src(src: &str) -> Result<AnalyzedQuery> {
        analyze(&parse(src)?, &catalog())
    }

    #[test]
    fn landmark_query_analyzes() {
        let q = analyze_src(
            "SELECT closingPrice, timestamp FROM ClosingStockPrices \
             WHERE stockSymbol = 'MSFT' and closingPrice > 50.00 \
             for (t = 101; t <= 1000; t++) { WindowIs(ClosingStockPrices, 101, t); }",
        )
        .unwrap();
        assert_eq!(q.sources.len(), 1);
        assert!(q.sources[0].windowed);
        assert_eq!(q.single_factors.len(), 2);
        assert!(q.join_pairs.is_empty());
        assert_eq!(q.projection.len(), 2);
        assert!(!q.is_join());
    }

    #[test]
    fn band_join_classification() {
        let q = analyze_src(
            "Select c2.* FROM ClosingStockPrices as c1, ClosingStockPrices as c2 \
             WHERE c1.stockSymbol = 'MSFT' and c2.stockSymbol != 'MSFT' and \
                   c2.closingPrice > c1.closingPrice and c2.timestamp = c1.timestamp \
             for (t = ST; t < ST + 20; t++) { WindowIs(c1, t-4, t); WindowIs(c2, t-4, t); }",
        )
        .unwrap();
        assert_eq!(q.sources.len(), 2);
        assert_eq!(q.single_factors.len(), 2);
        assert_eq!(q.join_pairs.len(), 1);
        let jp = q.join_pairs[0];
        // c2.timestamp = c1.timestamp: both col 0
        assert_eq!((jp.left_col, jp.right_col), (0, 0));
        assert_eq!(q.cross_factors.len(), 1); // the band inequality
        assert_eq!(q.projection.len(), 3); // c2.*
        assert!(q.projection.iter().all(|(e, _)| matches!(
            e,
            Expr::Column { qualifier: Some(q), .. } if q == "c2"
        )));
    }

    #[test]
    fn join_without_equi_predicate_rejected() {
        let err = analyze_src(
            "SELECT * FROM ClosingStockPrices as c1, Trades as t1 \
             WHERE c1.closingPrice > 10 \
             for (t = 0; t >= 0; t++) { WindowIs(c1, t-4, t); WindowIs(t1, t-4, t); }",
        )
        .unwrap_err();
        assert!(err.to_string().contains("equi-join"));
    }

    #[test]
    fn stream_join_without_window_rejected() {
        let err = analyze_src(
            "SELECT * FROM ClosingStockPrices as c1, Trades as t1 \
             WHERE c1.timestamp = t1.timestamp",
        )
        .unwrap_err();
        assert!(err.to_string().contains("WindowIs"));
    }

    #[test]
    fn join_with_static_table_needs_no_window_on_table() {
        let q = analyze_src(
            "SELECT * FROM Trades tr, CompanyInfo ci \
             WHERE tr.sym = ci.sym \
             for (t = 0; t >= 0; t++) { WindowIs(tr, t-9, t); }",
        )
        .unwrap();
        assert_eq!(q.join_pairs.len(), 1);
        assert!(q.sources[0].windowed);
        assert!(!q.sources[1].windowed);
        assert_eq!(q.sources[1].def.kind, SourceKind::Table);
    }

    #[test]
    fn aggregates_and_group_by() {
        let q = analyze_src(
            "SELECT stockSymbol, COUNT(*), AVG(closingPrice) AS avgp \
             FROM ClosingStockPrices GROUP BY stockSymbol",
        )
        .unwrap();
        assert_eq!(q.aggregates.len(), 2);
        assert_eq!(q.aggregates[1].name, "avgp");
        assert_eq!(q.group_by, Some((0, 1)));
    }

    #[test]
    fn non_grouped_scalar_with_aggregate_rejected() {
        let err = analyze_src(
            "SELECT closingPrice, COUNT(*) FROM ClosingStockPrices GROUP BY stockSymbol",
        )
        .unwrap_err();
        assert!(err.to_string().contains("GROUP BY"));
    }

    #[test]
    fn group_by_without_aggregate_rejected() {
        assert!(
            analyze_src("SELECT stockSymbol FROM ClosingStockPrices GROUP BY stockSymbol").is_err()
        );
    }

    #[test]
    fn sum_over_string_rejected() {
        let err = analyze_src("SELECT SUM(stockSymbol) FROM ClosingStockPrices").unwrap_err();
        assert!(err.to_string().contains("numeric"));
    }

    #[test]
    fn unknown_things_rejected() {
        assert!(analyze_src("SELECT * FROM NoSuchStream").is_err());
        assert!(analyze_src("SELECT nope FROM ClosingStockPrices").is_err());
        assert!(analyze_src("SELECT * FROM ClosingStockPrices WHERE q.closingPrice > 1").is_err());
        assert!(analyze_src(
            "SELECT * FROM ClosingStockPrices for (t=0; t >= 0; t++) { WindowIs(Other, 1, t); }"
        )
        .is_err());
    }

    #[test]
    fn ambiguous_unqualified_column_rejected() {
        // `timestamp` exists in both sources.
        let err = analyze_src(
            "SELECT * FROM ClosingStockPrices c1, Trades t1 \
             WHERE timestamp > 3 and c1.timestamp = t1.timestamp \
             for (t=0; t>=0; t++) { WindowIs(c1, t-4, t); WindowIs(t1, t-4, t); }",
        )
        .unwrap_err();
        assert!(err.to_string().contains("ambiguous"));
    }

    #[test]
    fn duplicate_alias_rejected() {
        assert!(analyze_src(
            "SELECT * FROM ClosingStockPrices c, Trades c \
             WHERE c.timestamp = c.timestamp"
        )
        .is_err());
    }

    #[test]
    fn star_expands_all_sources_in_order() {
        let q = analyze_src(
            "SELECT * FROM Trades tr, CompanyInfo ci WHERE tr.sym = ci.sym \
             for (t=0; t>=0; t++) { WindowIs(tr, t-9, t); }",
        )
        .unwrap();
        assert_eq!(q.projection.len(), 5);
        assert!(matches!(
            &q.projection[0].0,
            Expr::Column { qualifier: Some(q), name } if q == "tr" && name == "timestamp"
        ));
        assert!(matches!(
            &q.projection[4].0,
            Expr::Column { qualifier: Some(q), name } if q == "ci" && name == "sector"
        ));
    }
}
