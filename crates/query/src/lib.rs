//! The TelegraphCQ-rs front-end: query language and semantic analysis.
//!
//! TelegraphCQ reuses PostgreSQL's parser and optimizer; this crate is our
//! from-scratch equivalent. It accepts the paper's query dialect verbatim —
//! a SQL subset (`SELECT`-`FROM`-`WHERE`, aliases, aggregates, `GROUP BY`)
//! followed by the §4.1 for-loop window construct:
//!
//! ```text
//! SELECT closingPrice, timestamp
//! FROM ClosingStockPrices
//! WHERE stockSymbol = 'MSFT' and closingPrice > 50.00
//! for (t = 101; t <= 1000; t++ ) {
//!     WindowIs(ClosingStockPrices, 101, t);
//! }
//! ```
//!
//! Pipeline: [`lex`](lexer::lex) → [`parse`] →
//! [`analyze`](analyze::analyze) (name resolution against the
//! [`tcq_common::Catalog`], conjunct classification, type checks),
//! producing an [`AnalyzedQuery`] the executor's planner consumes.
//!
//! # Example
//!
//! ```
//! use tcq_common::{Catalog, DataType, Field, Schema, SourceKind};
//! use tcq_query::{analyze, parse};
//!
//! let catalog = Catalog::new();
//! catalog
//!     .register(
//!         "ClosingStockPrices",
//!         Schema::new(vec![
//!             Field::new("timestamp", DataType::Int),
//!             Field::new("stockSymbol", DataType::Str),
//!             Field::new("closingPrice", DataType::Float),
//!         ])
//!         .into_ref(),
//!         SourceKind::PushStream,
//!     )
//!     .unwrap();
//!
//! let stmt = parse(
//!     "SELECT closingPrice, timestamp \
//!      FROM ClosingStockPrices \
//!      WHERE stockSymbol = 'MSFT' and closingPrice > 50.00 \
//!      for (t = 101; t <= 1000; t++ ){ \
//!          WindowIs(ClosingStockPrices, 101, t); \
//!      }",
//! )
//! .unwrap();
//! let analyzed = analyze(&stmt, &catalog).unwrap();
//! assert_eq!(analyzed.single_factors.len(), 2);
//! assert!(!analyzed.is_join());
//! ```

#![warn(missing_docs)]

pub mod analyze;
pub mod ast;
pub mod lexer;
pub mod parser;

pub use analyze::{analyze, AnalyzedQuery, BoundSource, JoinPair};
pub use ast::{FromSource, SelectItem, SelectStmt};
pub use parser::parse;
